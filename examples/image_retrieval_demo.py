"""The full section 5 demo: a content-based image retrieval federation.

Recreates the paper's demonstration end to end:

1. a (simulated) web robot collects images, some annotated;
2. the Figure-1 federation runs: segmentation daemon, two colour and
   four texture feature daemons, AutoClass clustering -- all invoked
   through the CORBA-like ORB;
3. clusters become visual words; the internal CONTREP schema is built;
4. an association thesaurus links annotation words to visual words
   (Paivio dual coding);
5. a textual query is *formulated* into visual words and ranked over
   image content;
6. relevance feedback improves the query over two iterations.

Run:  python examples/image_retrieval_demo.py
"""

from repro.core import DigitalLibrary, RetrievalSession
from repro.multimedia import WebRobot


def show(results, label):
    print(f"\n{label}")
    for r in results:
        marker = "*" if r.true_class == "sunset_beach" else " "
        print(f"   {marker} {r.score:8.4f}  [{r.true_class:13s}] {r.url}")


def main() -> None:
    print("=== stage 1: the web robot crawls ===")
    robot = WebRobot(seed=11, annotated_fraction=0.75)
    crawl = robot.crawl(36)
    annotated = sum(1 for c in crawl if c.annotated)
    print(f"collected {len(crawl)} images, {annotated} annotated")

    print("\n=== stage 2: the Figure-1 federation processes them ===")
    library = DigitalLibrary(max_classes=6, seed=5)
    library.ingest(crawl)
    summary = library.run_daemons()
    for key, value in summary.items():
        print(f"    {key:24s} {value}")
    print("registered daemons:", ", ".join(library.orb.names()))

    print("\n=== stage 3: query formulation via the thesaurus ===")
    text_query = "red sunset over the beach"
    clusters = library.formulate(text_query)
    print(f"'{text_query}' -> visual words: {sorted(set(clusters))}")

    print("\n=== stage 4: retrieval session with relevance feedback ===")
    session = RetrievalSession(library, k=8)
    results = session.start(text_query)
    show(results, "round 0 (initial formulation):")

    # The user marks the true sunset-beach images (ground truth stands
    # in for clicks).
    relevant = [r.url for r in results if r.true_class == "sunset_beach"]
    nonrelevant = [r.url for r in results if r.true_class != "sunset_beach"]
    results = session.give_feedback(relevant, nonrelevant)
    show(results, "round 1 (after feedback):")

    relevant = [r.url for r in results if r.true_class == "sunset_beach"]
    nonrelevant = [r.url for r in results if r.true_class != "sunset_beach"]
    results = session.give_feedback(relevant, nonrelevant)
    show(results, "round 2 (after more feedback):")

    print("\nprecision@4 per round:",
          [round(session.precision_at(4, "sunset_beach", i), 2)
           for i in range(len(session.rounds))])

    print("\n=== stage 5: dual-coding combined query ===")
    combined = library.query_combined(text_query, k=5, text_weight=0.5)
    show(combined, "text + content evidence combined:")


if __name__ == "__main__":
    main()
