"""Structured retrieval with the inference network operators.

The Mirror DBMS adopts the InQuery retrieval model because it "allows
flexible modeling of the combination of evidence originating from
different sources" (section 3).  This example exercises that operator
repertoire directly: one document collection, several structured
queries (#sum / #wsum / #and / #or / #not / #max), and a look at how
the combinators change the ranking.

Run:  python examples/inference_network.py
"""

from repro.ir.index import InvertedIndex
from repro.ir.network import InferenceNetwork
from repro.ir.queries import parse_structured_query
from repro.ir.tokenize import analyze

ARTICLES = [
    ("volcanic eruption in iceland disrupts flights across europe",
     "iceland-eruption"),
    ("icelandic volcano spews ash cloud over the north atlantic",
     "ash-cloud"),
    ("european airlines cancel flights amid ash warnings",
     "airline-cancellations"),
    ("tourism in iceland rebounds after the eruption season",
     "tourism-rebound"),
    ("new atlantic shipping routes avoid the storm season",
     "shipping-routes"),
    ("storm warnings issued for the north atlantic this weekend",
     "storm-warnings"),
]

QUERIES = [
    "iceland eruption",
    "#and(iceland eruption)",
    "#or(eruption storm)",
    "#wsum(3 eruption 1 flights)",
    "#and(atlantic #not(storm))",
    "#max(eruption storm)",
]


def main() -> None:
    documents = []
    for text, _ in ARTICLES:
        terms = analyze(text)
        counts = {}
        for term in terms:
            counts[term] = counts.get(term, 0) + 1
        documents.append(counts)
    index = InvertedIndex(documents)
    network = InferenceNetwork(index)

    print(f"indexed {index.document_count} documents, "
          f"{index.posting_count} postings\n")

    for query_text in QUERIES:
        node = parse_structured_query(query_text)
        ranked = network.rank(node, k=3)
        print(f"query: {query_text}")
        print(f"  parsed: {node.render()}")
        for doc_id, score in ranked:
            print(f"    {score:.4f}  {ARTICLES[doc_id][1]}")
        print()


if __name__ == "__main__":
    main()
