"""Extending Moa with a new structure: the paper's open-system claim.

"It is an open complex object system, supporting extensibility of
structures.  Thus, new structures can be added to the system"
(section 2).  CONTREP is the paper's showcase; this example adds a
*new* domain-specific structure -- ``INTERVAL`` (a closed numeric
range) -- from scratch, using exactly the same three registries:

1. a structure type + DDL factory (``register_structure``);
2. a physical mapper laying intervals out as lo/hi BATs
   (``register_mapper``);
3. a logical operation ``contains(interval, x)`` with typecheck,
   interpreter and *compiler* hooks, so it runs set-at-a-time in MIL.

Nothing inside repro.moa is modified.

Run:  python examples/extending_moa.py
"""

from dataclasses import dataclass

from repro.core import MirrorDBMS
from repro.moa.compiler import AtomCol, register_attr_rep
from repro.moa.errors import MoaTypeError
from repro.moa.functions import register_compile_hook, register_function
from repro.moa.mapping import StructureMapper, register_mapper
from repro.moa.types import AtomicType, MoaType, register_structure
from repro.monet.bat import dense_bat


# -- 1. the structure type ----------------------------------------------------


@dataclass(frozen=True, eq=False)
class IntervalType(MoaType):
    """INTERVAL<base>: a closed numeric range [lo, hi]."""

    base: str
    structure = "INTERVAL"

    def render(self) -> str:
        return f"INTERVAL<{self.base}>"


def _interval_factory(args):
    if len(args) != 1 or not isinstance(args[0], str):
        raise MoaTypeError("INTERVAL takes one base-type name")
    return IntervalType(args[0])


register_structure("INTERVAL", _interval_factory)


# -- 2. the physical mapper ---------------------------------------------------


class IntervalMapper(StructureMapper):
    """INTERVAL attribute -> <prefix>.lo and <prefix>.hi BATs."""

    def load(self, pool, prefix, ty, values):
        los = [v[0] for v in values]
        his = [v[1] for v in values]
        pool.register(f"{prefix}.lo", dense_bat("dbl", los), replace=True)
        pool.register(f"{prefix}.hi", dense_bat("dbl", his), replace=True)

    def reconstruct(self, pool, prefix, ty, count):
        los = pool.lookup(f"{prefix}.lo").tail_list()
        his = pool.lookup(f"{prefix}.hi").tail_list()
        return list(zip(los, his))

    def bat_names(self, prefix):
        return [f"{prefix}.lo", f"{prefix}.hi"]


register_mapper(IntervalType, IntervalMapper())


# -- 3. the logical operation -------------------------------------------------

# Compile-time reps: a lazy one remembering where the BATs live, and a
# materialized one that knows how to come back as Python values.  The
# `gather` field, `finalize_rep` and `reconstruct` are the compiler's
# duck-typed extension protocol.


@dataclass
class IntervalCols:
    lo: str
    hi: str

    def reconstruct(self, env, count):
        los = env[self.lo].tail_list()
        his = env[self.hi].tail_list()
        return list(zip(los, his))


@dataclass
class IntervalLazy:
    prefix: str
    gather: str

    def finalize_rep(self, compiler):
        lo = compiler.emit(f'{self.gather}.join(bat("{self.prefix}.lo"))', "lo")
        hi = compiler.emit(f'{self.gather}.join(bat("{self.prefix}.hi"))', "hi")
        return IntervalCols(lo, hi)


register_attr_rep("IntervalType", lambda c, prefix, ty, g: IntervalLazy(prefix, g))


def _tc_contains(arg_types):
    if len(arg_types) != 2 or not isinstance(arg_types[0], IntervalType):
        raise MoaTypeError("contains takes (interval, numeric)")
    return AtomicType("bit")


def _interp_contains(args, _context):
    (lo, hi), x = args
    return lo <= x <= hi


def _compile_contains(compiler, cc, node):
    rep = compiler.compile_elem(node.args[0], cc)
    if not isinstance(rep, IntervalLazy):
        raise MoaTypeError("contains needs an INTERVAL attribute")
    lo = compiler.emit(f'{rep.gather}.join(bat("{rep.prefix}.lo"))', "lo")
    hi = compiler.emit(f'{rep.gather}.join(bat("{rep.prefix}.hi"))', "hi")
    x = compiler._operand(compiler.compile_elem(node.args[1], cc), cc)
    above = compiler.emit(f"[<=]({lo}, {x})")
    below = compiler.emit(f"[>=]({hi}, {x})")
    return AtomCol(compiler.emit(f"[and]({above}, {below})"), "bit")


register_function("contains", _tc_contains, _interp_contains)
register_compile_hook("contains", _compile_contains)


# -- use it -------------------------------------------------------------------


def main() -> None:
    db = MirrorDBMS()
    db.define(
        """
        define Sensors as
        SET<
          TUPLE<
            Atomic<str>: name,
            INTERVAL<float>: valid_range
          >>;
        """
    )
    db.insert(
        "Sensors",
        [
            {"name": "thermo-a", "valid_range": (-40.0, 85.0)},
            {"name": "thermo-b", "valid_range": (0.0, 50.0)},
            {"name": "cryo-1", "valid_range": (-200.0, -100.0)},
        ],
    )
    print("schema:", db.ddl())
    result = db.query(
        "map[tuple(name = THIS.name, "
        "ok = contains(THIS.valid_range, 60.0))](Sensors);"
    )
    print("\nwhich sensors accept 60.0 degrees?")
    for row in result.value:
        print(f"    {row['name']:10s} {'yes' if row['ok'] else 'no'}")

    filtered = db.query(
        "select[contains(THIS.valid_range, 20.0)](Sensors);"
    )
    print("\nsensors valid at 20.0 degrees:",
          [r["name"] for r in filtered.value])

    print("\ngenerated plan for the select:")
    plan = db.executor.prepare(
        "select[contains(THIS.valid_range, 20.0)](Sensors);"
    )
    for line in plan.program.strip().splitlines():
        print("   ", line)


if __name__ == "__main__":
    main()
