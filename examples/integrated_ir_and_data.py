"""Integrated IR and data retrieval: one query over structure + content.

"Because these query expressions can be combined with 'normal'
relational operators (such as select or join), the resulting system is
an efficient integration of information and data retrieval."
(Mirror paper, section 3.)

This example builds a small stock-photography catalogue where images
carry *structured* metadata (photographer, year, price) alongside the
*content* annotation, then answers questions that need both at once --
in a single Moa expression, executed as one flattened MIL plan.

Run:  python examples/integrated_ir_and_data.py
"""

from repro.core import MirrorDBMS

CATALOGUE = [
    {"source": "img/alps", "annotation": "snowy alpine peaks at dawn",
     "photographer": "mori", "year": 1997, "price": 120},
    {"source": "img/beach", "annotation": "golden sunset over the beach",
     "photographer": "silva", "year": 1998, "price": 80},
    {"source": "img/city", "annotation": "city lights skyline at night",
     "photographer": "mori", "year": 1998, "price": 150},
    {"source": "img/dunes", "annotation": "dry desert dunes under the sun",
     "photographer": "okafor", "year": 1996, "price": 60},
    {"source": "img/storm", "annotation": "storm waves crash on the beach",
     "photographer": "silva", "year": 1999, "price": 95},
    {"source": "img/forest", "annotation": "green forest path in the morning",
     "photographer": "okafor", "year": 1999, "price": 70},
]


def main() -> None:
    db = MirrorDBMS()
    db.define(
        """
        define Catalogue as
        SET<
          TUPLE<
            Atomic<URL>: source,
            CONTREP<Text>: annotation,
            Atomic<str>: photographer,
            Atomic<int>: year,
            Atomic<int>: price
          >>;
        define Photographers as
        SET<
          TUPLE<
            Atomic<str>: name,
            Atomic<str>: agency
          >>;
        """
    )
    db.insert("Catalogue", CATALOGUE)
    db.insert(
        "Photographers",
        [
            {"name": "mori", "agency": "north-light"},
            {"name": "silva", "agency": "shoreline"},
            {"name": "okafor", "agency": "shoreline"},
        ],
    )
    stats = db.stats("Catalogue", "annotation")

    # Q1: content ranking restricted by structured predicates -- recent,
    # affordable beach photos, scored by the inference network.
    q1 = """
    map[tuple(source = THIS.source, score = sum(getBL(THIS.annotation,
                                                      query, stats)))](
      select[THIS.year >= 1998 and THIS.price < 100]( Catalogue ));
    """
    r1 = db.query(q1, {"query": ["beach", "sunset"], "stats": stats})
    print("Q1 recent affordable beach photos, ranked:")
    for row in sorted(r1.value, key=lambda r: -r["score"]):
        print(f"    {row['score']:.4f}  {row['source']}")

    # Q2: join content scores with a second collection -- which *agency*
    # offers the best beach material?
    q2 = """
    join[THIS1.by = THIS2.name](
      map[tuple(source = THIS.source,
                by = THIS.photographer,
                score = sum(getBL(THIS.annotation, query, stats)))](
        Catalogue ),
      Photographers);
    """
    r2 = db.query(q2, {"query": ["beach", "sunset", "waves"], "stats": stats})
    by_agency = {}
    for row in r2.value:
        by_agency.setdefault(row["agency"], []).append(row["score"])
    print("\nQ2 total beach relevance per agency (content x join):")
    for agency, scores in sorted(by_agency.items()):
        print(f"    {agency:12s} {sum(scores):.4f}")

    # Q3: pure structured aggregation on the same collection -- the
    # "traditional database" side of the integration.
    total = db.query("sum(map[THIS.price](select[THIS.year = 1999](Catalogue)));")
    print(f"\nQ3 total price of 1999 acquisitions: {total.value}")

    print(f"\n(Q2 flattened to {r2.compiled.statements} MIL statements, "
          "single plan, no application-side glue)")


if __name__ == "__main__":
    main()
