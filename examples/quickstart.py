"""Quickstart: define a schema, load data, run the paper's ranking query.

This walks the Mirror DBMS public API end to end on the paper's
section 3 example -- an annotated image library ranked with the
inference network retrieval model -- and shows the generated MIL plan.

Run:  python examples/quickstart.py
"""

from repro.core import MirrorDBMS


def main() -> None:
    db = MirrorDBMS()

    # 1. The paper's section 3 schema, verbatim.
    db.define(
        """
        define TraditionalImgLib as
        SET<
          TUPLE<
            Atomic<URL>: source,
            CONTREP<Text>: annotation
          >>;
        """
    )

    # 2. Load annotated images.  CONTREP<Text> attributes accept raw
    #    text: tokenization, stopping and Porter stemming happen in the
    #    mapper.
    db.insert(
        "TraditionalImgLib",
        [
            {"source": "http://img/1", "annotation": "a red sunset over the sea"},
            {"source": "http://img/2", "annotation": "green forest with tall trees"},
            {"source": "http://img/3", "annotation": "sunset beach, red sky, waves"},
            {"source": "http://img/4", "annotation": "a city skyline at night"},
        ],
    )
    print(f"loaded {db.count('TraditionalImgLib')} images")
    print("physical BATs:", ", ".join(db.bat_names("TraditionalImgLib")))

    # 3. Collection statistics: the `stats` parameter of the query.
    stats = db.stats("TraditionalImgLib", "annotation")
    print(f"collection: N={stats.document_count}, avgdl={stats.average_document_length:.2f}")

    # 4. The paper's ranking query, verbatim.
    query = """
    map[sum(THIS)] (
      map[getBL(THIS.annotation, query, stats)] ( TraditionalImgLib ));
    """
    result = db.query(query, {"query": ["sunset", "sea"], "stats": stats})

    print("\ngenerated MIL plan:")
    for line in result.plan.strip().splitlines():
        print("   ", line)

    print("\nscores (aligned with load order):")
    sources = [row["source"] for row in db.contents("TraditionalImgLib")]
    ranked = sorted(zip(sources, result.value), key=lambda p: -p[1])
    for source, score in ranked:
        print(f"    {score:.4f}  {source}")


if __name__ == "__main__":
    main()
