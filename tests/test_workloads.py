"""Workload generators (the benchmark harness's data side)."""

import pytest

from repro.workloads import (
    SECTION3_QUERY,
    SECTION5_QUERY,
    VOCABULARY,
    best_of,
    build_internal_db,
    build_text_db,
    interpreter_data,
    synth_annotations,
    visual_word_rows,
)


class TestSynthAnnotations:
    def test_count_and_shape(self):
        rows = synth_annotations(10)
        assert len(rows) == 10
        assert all("source" in r and "annotation" in r for r in rows)

    def test_deterministic(self):
        assert synth_annotations(5, seed=3) == synth_annotations(5, seed=3)

    def test_seed_changes_content(self):
        assert synth_annotations(5, seed=1) != synth_annotations(5, seed=2)

    def test_words_from_vocabulary(self):
        rows = synth_annotations(5)
        for row in rows:
            assert set(row["annotation"].split()) <= set(VOCABULARY)

    def test_words_per_doc(self):
        rows = synth_annotations(3, words_per_doc=4)
        assert all(len(r["annotation"].split()) == 4 for r in rows)

    def test_urls_unique(self):
        rows = synth_annotations(20)
        assert len({r["source"] for r in rows}) == 20


class TestBuildTextDb:
    def test_loads_and_counts(self):
        db, stats, rows = build_text_db(25)
        assert db.count("TraditionalImgLib") == 25
        assert stats.document_count == 25

    def test_section3_query_runs(self):
        db, stats, _ = build_text_db(25)
        scores = db.query(
            SECTION3_QUERY, {"query": ["sunset"], "stats": stats}
        ).value
        assert len(scores) == 25
        assert any(s > 0 for s in scores)

    def test_interpreter_data_aligned(self):
        db, stats, rows = build_text_db(10)
        data = interpreter_data(rows)
        compiled = db.query(
            SECTION3_QUERY, {"query": ["sunset", "sea"], "stats": stats}
        ).value
        interpreted = db.executor.execute_interpreted(
            SECTION3_QUERY, data, {"query": ["sunset", "sea"], "stats": stats}
        )
        for a, b in zip(compiled, interpreted):
            assert a == pytest.approx(b)


class TestVisualWords:
    def test_rows_shape(self):
        rows = visual_word_rows(8, words_per_image=12)
        assert len(rows) == 8
        assert all(len(r["image"]) == 12 for r in rows)

    def test_tokens_look_like_cluster_labels(self):
        rows = visual_word_rows(4, clusters=5)
        for row in rows:
            for token in row["image"]:
                prefix, number = token.rsplit("_", 1)
                assert prefix in ("rgb", "hsv", "gabor", "glcm", "autocorr", "laws")
                assert 0 <= int(number) < 5

    def test_internal_db_query(self):
        db, stats, rows = build_internal_db(12, clusters=6)
        some_token = rows[0]["image"][0]
        scores = db.query(
            SECTION5_QUERY, {"query": [some_token], "stats": stats}
        ).value
        assert scores[0] > 0


class TestBestOf:
    def test_returns_positive_time(self):
        assert best_of(lambda: sum(range(100))) > 0

    def test_calls_at_least_twice(self):
        calls = []
        best_of(lambda: calls.append(1), repetitions=2)
        assert len(calls) == 3  # warmup + 2 reps
