"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.mirror import MirrorDBMS
from repro.moa.structures.contrep import ContentRepresentation
from repro.monet.bbp import BATBufferPool


@pytest.fixture
def pool():
    return BATBufferPool()


ANNOTATED_DOCS = [
    {"source": "http://img/1", "annotation": "a red sunset over the sea"},
    {"source": "http://img/2", "annotation": "green forest with tall trees"},
    {"source": "http://img/3", "annotation": "sunset beach with red sky and sea waves"},
    {"source": "http://img/4", "annotation": "a city skyline at night"},
    {"source": "http://img/5", "annotation": "waves crashing on the beach at sunset"},
    {"source": "http://img/6", "annotation": "a quiet green meadow"},
]

TRADITIONAL_DDL = """
define TraditionalImgLib as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation
  >>;
"""

#: The paper's section 3 ranking query, verbatim modulo whitespace.
SECTION3_QUERY = (
    "map[sum(THIS)]("
    "map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));"
)


@pytest.fixture
def annotated_db():
    """A MirrorDBMS loaded with the paper's section 3 example library."""
    db = MirrorDBMS()
    db.define(TRADITIONAL_DDL)
    db.insert("TraditionalImgLib", ANNOTATED_DOCS)
    return db


@pytest.fixture
def annotated_stats(annotated_db):
    return annotated_db.stats("TraditionalImgLib", "annotation")


@pytest.fixture
def annotated_reps():
    return [
        ContentRepresentation.from_value(d["annotation"], "Text")
        for d in ANNOTATED_DOCS
    ]


@pytest.fixture
def annotated_data(annotated_reps):
    """The same library as Python values for the reference interpreter."""
    return {
        "TraditionalImgLib": [
            {"source": d["source"], "annotation": rep}
            for d, rep in zip(ANNOTATED_DOCS, annotated_reps)
        ]
    }
