"""Algebraic optimizer: rewrite rules fire and preserve semantics."""

import pytest

from repro.moa import ast
from repro.moa.optimizer import optimize, substitute_this
from repro.moa.parser import parse_query


def opt(text):
    return optimize(parse_query(text))


class TestMapFusion:
    def test_map_map_fuses(self):
        node = opt("map[sum(THIS)](map[getBL(THIS.a, query, stats)](Lib))")
        assert isinstance(node, ast.Map)
        assert isinstance(node.over, ast.CollectionRef)
        body = node.body
        assert isinstance(body, ast.FuncCall) and body.name == "sum"
        assert isinstance(body.args[0], ast.FuncCall)
        assert body.args[0].name == "getBL"

    def test_triple_map_fuses(self):
        node = opt("map[THIS + 1](map[THIS * 2](map[THIS.n](Lib)))")
        assert isinstance(node.over, ast.CollectionRef)
        assert ast.render(node.body) == "((THIS.n * 2) + 1)"

    def test_fusion_leaves_join_this_alone(self):
        body = parse_query("map[THIS1.a](X)")  # contrived container
        # substitute_this must only replace index-0 THIS.
        replaced = substitute_this(body.body, ast.Literal(value=1, atom="int"))
        assert isinstance(replaced, ast.AttrAccess)
        assert replaced.base.index == 1


class TestSelectRules:
    def test_select_select_fuses(self):
        node = opt("select[THIS.a > 1](select[THIS.b < 2](Lib))")
        assert isinstance(node, ast.Select)
        assert isinstance(node.over, ast.CollectionRef)
        assert node.pred.op == "and"

    def test_select_pushdown_through_passthrough_map(self):
        node = opt(
            "select[THIS.src = 'x']"
            "(map[tuple(src = THIS.source, score = sum(THIS.beliefs))](Lib))"
        )
        # map and select must have swapped.
        assert isinstance(node, ast.Map)
        assert isinstance(node.over, ast.Select)
        assert ast.render(node.over.pred) == "(THIS.source = 'x')"

    def test_no_pushdown_through_computed_field(self):
        node = opt(
            "select[THIS.score > 1]"
            "(map[tuple(src = THIS.source, score = sum(THIS.beliefs))](Lib))"
        )
        # score is computed; select must stay outside.
        assert isinstance(node, ast.Select)

    def test_no_pushdown_for_non_tuple_map(self):
        node = opt("select[THIS > 1](map[THIS.n](Lib))")
        assert isinstance(node, ast.Select)


class TestConstantFolding:
    def test_arithmetic_folds(self):
        node = opt("map[THIS.n + (2 * 3)](Lib)")
        assert ast.render(node.body) == "(THIS.n + 6)"

    def test_comparison_folds(self):
        node = opt("select[THIS.b and (1 < 2)](Lib)")
        right = node.pred.right
        assert isinstance(right, ast.Literal) and right.value is True

    def test_division_by_zero_not_folded(self):
        node = opt("map[THIS.n + (1 / 0)](Lib)")
        assert isinstance(node.body.right, ast.BinOp)

    def test_fold_cascades(self):
        node = opt("map[(1 + 2) * (3 + 4)](Lib)")
        assert isinstance(node.body, ast.Literal)
        assert node.body.value == 21


class TestFixpoint:
    def test_idempotent(self):
        text = "map[sum(THIS)](map[getBL(THIS.a, query, stats)](Lib))"
        once = optimize(parse_query(text))
        twice = optimize(once)
        assert ast.render(once) == ast.render(twice)

    def test_untouched_query_unchanged(self):
        text = "select[THIS.n > 2](Lib)"
        assert ast.render(opt(text)) == ast.render(parse_query(text))


class TestSemanticsPreserved:
    """Optimized and raw plans agree end-to-end (on a live DB)."""

    CASES = [
        "map[THIS.n + (2 * 3)](select[THIS.n > 0](Rows));",
        "select[THIS.n > 0](select[THIS.n < 4](Rows));",
        "map[THIS + 1](map[THIS.n * 2](Rows));",
        "select[THIS.t = 'a'](map[tuple(t = THIS.tag, n = THIS.n)](Rows));",
    ]

    @pytest.fixture
    def db(self):
        from repro.core.mirror import MirrorDBMS

        db = MirrorDBMS()
        db.define(
            "define Rows as SET<TUPLE<Atomic<int>: n, Atomic<str>: tag>>;"
        )
        db.insert(
            "Rows",
            [
                {"n": 1, "tag": "a"},
                {"n": 2, "tag": "b"},
                {"n": 3, "tag": "a"},
            ],
        )
        return db

    @pytest.mark.parametrize("query", CASES)
    def test_case(self, db, query):
        optimized = db.query(query, optimize=True).value
        raw = db.query(query, optimize=False).value
        assert optimized == raw
