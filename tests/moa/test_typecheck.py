"""Type checker: inference, parameter resolution, error detection."""

import pytest

from repro.moa.ddl import parse_schema
from repro.moa.errors import MoaTypeError
from repro.moa.parser import parse_query
from repro.moa.typecheck import typecheck
from repro.moa.types import AtomicType, SetType, StatsType, TupleType
from repro.moa import ast

SCHEMA = parse_schema(
    """
    define Lib as SET<TUPLE<Atomic<URL>: source, CONTREP<Text>: annotation>>;
    define Nums as SET<TUPLE<Atomic<int>: n, Atomic<float>: x>>;
    define Other as SET<TUPLE<Atomic<URL>: url, Atomic<int>: year>>;
    define Nested as SET<TUPLE<Atomic<str>: k,
        SET<TUPLE<Atomic<int>: v>>: items>>;
    """
)

PARAMS = {
    "query": SetType(AtomicType("str")),
    "stats": StatsType(),
}


def check(text, params=None):
    return typecheck(parse_query(text), SCHEMA, params or PARAMS)


class TestResolution:
    def test_collection_resolves(self):
        node = check("Lib")
        assert isinstance(node, ast.CollectionRef)
        assert node.ty == SCHEMA["Lib"]

    def test_parameter_rewritten_to_varref(self):
        node = check("query")
        assert isinstance(node, ast.VarRef)
        assert node.ty == PARAMS["query"]

    def test_unknown_name(self):
        with pytest.raises(MoaTypeError, match="unknown name"):
            check("Ghost")


class TestStructureOps:
    def test_map_type(self):
        node = check("map[THIS.n](Nums)")
        assert node.ty.render() == "SET<Atomic<int>>"

    def test_map_tuple_body(self):
        node = check("map[tuple(a = THIS.n, b = THIS.x)](Nums)")
        elem = node.ty.element
        assert isinstance(elem, TupleType)
        assert elem.field_names() == ["a", "b"]

    def test_select_preserves_type(self):
        node = check("select[THIS.n > 2](Nums)")
        assert node.ty == SCHEMA["Nums"]

    def test_select_needs_boolean(self):
        with pytest.raises(MoaTypeError, match="boolean"):
            check("select[THIS.n](Nums)")

    def test_join_merges_fields(self):
        node = check("join[THIS1.source = THIS2.url](Lib, Other)")
        fields = node.ty.element.field_names()
        assert fields == ["source", "annotation", "url", "year"]

    def test_join_name_clash(self):
        with pytest.raises(MoaTypeError, match="clash"):
            check("join[THIS1.source = THIS2.source](Lib, Lib)")

    def test_semijoin_keeps_left_type(self):
        node = check("semijoin[THIS1.source = THIS2.url](Lib, Other)")
        assert node.ty == SCHEMA["Lib"]

    def test_unnest(self):
        node = check("unnest[items](Nested)")
        assert node.ty.element.field_names() == ["k", "v"]

    def test_unnest_non_collection(self):
        with pytest.raises(MoaTypeError):
            check("unnest[k](Nested)")

    def test_nest(self):
        node = check("nest[k](Nested)")
        fields = node.ty.element.field_names()
        assert fields == ["k", "group"]

    def test_map_over_scalar_rejected(self):
        with pytest.raises(MoaTypeError, match="non-collection"):
            check("map[THIS](count(Nums))")


class TestFunctions:
    def test_getbl_type(self):
        node = check("map[getBL(THIS.annotation, query, stats)](Lib)")
        assert node.ty.render() == "SET<SET<Atomic<float>>>"

    def test_getbl_needs_contrep(self):
        with pytest.raises(MoaTypeError, match="CONTREP"):
            check("map[getBL(THIS.source, query, stats)](Lib)")

    def test_getbl_needs_stats(self):
        with pytest.raises(MoaTypeError, match="stats"):
            check("map[getBL(THIS.annotation, query, query)](Lib)")

    def test_sum_over_beliefs(self):
        node = check("map[sum(getBL(THIS.annotation, query, stats))](Lib)")
        assert node.ty.render() == "SET<Atomic<float>>"

    def test_sum_int_collection(self):
        node = check("sum(map[THIS.n](Nums))")
        assert node.ty.atom == "int"

    def test_avg_returns_float(self):
        node = check("avg(map[THIS.n](Nums))")
        assert node.ty.atom == "dbl"

    def test_count(self):
        node = check("count(Nums)")
        assert node.ty.atom == "int"

    def test_sum_needs_numeric(self):
        with pytest.raises(MoaTypeError, match="numeric"):
            check("sum(map[THIS.source](Lib))")

    def test_unknown_function(self):
        with pytest.raises(MoaTypeError, match="unknown function"):
            check("map[mystery(THIS.n)](Nums)")


class TestOperators:
    def test_arithmetic_promotion(self):
        node = check("map[THIS.n + THIS.x](Nums)")
        assert node.ty.element.atom == "dbl"

    def test_division_always_float(self):
        node = check("map[THIS.n / 2](Nums)")
        assert node.ty.element.atom == "dbl"

    def test_comparison_gives_bit(self):
        node = check("map[THIS.n > 3](Nums)")
        assert node.ty.element.atom == "bit"

    def test_string_comparison_allowed(self):
        node = check("select[THIS.source = 'x'](Lib)")
        assert node.ty == SCHEMA["Lib"]

    def test_mixed_comparison_rejected(self):
        with pytest.raises(MoaTypeError, match="compare"):
            check("select[THIS.source = 3](Lib)")

    def test_arithmetic_on_strings_rejected(self):
        with pytest.raises(MoaTypeError):
            check("map[THIS.source + 1](Lib)")

    def test_and_needs_booleans(self):
        with pytest.raises(MoaTypeError, match="boolean"):
            check("select[THIS.n and true](Nums)")


class TestThisBinding:
    def test_this_outside_body(self):
        with pytest.raises(MoaTypeError, match="THIS used outside"):
            typecheck(parse_query("THIS"), SCHEMA, PARAMS)

    def test_this12_outside_join(self):
        with pytest.raises(MoaTypeError, match="THIS1"):
            check("map[THIS1.n](Nums)")

    def test_attr_on_atomic_rejected(self):
        with pytest.raises(MoaTypeError, match="non-tuple"):
            check("map[THIS.n.x](Nums)")

    def test_unknown_attribute(self):
        with pytest.raises(MoaTypeError, match="no field"):
            check("map[THIS.ghost](Nums)")

    def test_nested_this_scoping(self):
        # Inner map binds THIS to the nested element.
        node = check("map[map[THIS.v](THIS.items)](Nested)")
        assert node.ty.render() == "SET<SET<Atomic<int>>>"
