"""Logical-to-physical mapping: load / reconstruct round-trips."""

import pytest

from repro.moa.ddl import parse_define
from repro.moa.errors import MoaTypeError
from repro.moa.mapping import (
    attribute_bat_names,
    collection_count,
    load_collection,
    reconstruct_collection,
)
from repro.moa.structures.contrep import ContentRepresentation


def roundtrip(pool, ddl, values):
    name, ty = parse_define(ddl)
    load_collection(pool, name, ty, values)
    return reconstruct_collection(pool, name, ty), name, ty


class TestFlatCollections:
    def test_atomic_set(self, pool):
        values = [3, 1, 4, 1, 5]
        result, _, _ = roundtrip(pool, "define S as SET<Atomic<int>>;", values)
        assert result == values

    def test_tuple_set(self, pool):
        values = [
            {"a": 1, "b": "x"},
            {"a": 2, "b": None},
        ]
        result, _, _ = roundtrip(
            pool, "define T as SET<TUPLE<Atomic<int>: a, Atomic<str>: b>>;", values
        )
        assert result == values

    def test_extent_matches_cardinality(self, pool):
        _, name, _ = roundtrip(
            pool, "define S as SET<Atomic<int>>;", [1, 2, 3]
        )
        assert collection_count(pool, name) == 3

    def test_empty_collection(self, pool):
        result, name, _ = roundtrip(pool, "define S as SET<Atomic<str>>;", [])
        assert result == []
        assert collection_count(pool, name) == 0

    def test_missing_tuple_field_rejected(self, pool):
        name, ty = parse_define("define T as SET<TUPLE<Atomic<int>: a>>;")
        with pytest.raises(MoaTypeError, match="missing field"):
            load_collection(pool, name, ty, [{"b": 1}])

    def test_reload_replaces(self, pool):
        name, ty = parse_define("define S as SET<Atomic<int>>;")
        load_collection(pool, name, ty, [1, 2])
        load_collection(pool, name, ty, [7])
        assert reconstruct_collection(pool, name, ty) == [7]


class TestNestedCollections:
    DDL = (
        "define N as SET<TUPLE<Atomic<str>: k, "
        "SET<TUPLE<Atomic<int>: v, Atomic<float>: w>>: items>>;"
    )

    def test_roundtrip(self, pool):
        values = [
            {"k": "a", "items": [{"v": 1, "w": 0.5}, {"v": 2, "w": 1.5}]},
            {"k": "b", "items": []},
            {"k": "c", "items": [{"v": 9, "w": 0.0}]},
        ]
        result, _, _ = roundtrip(pool, self.DDL, values)
        assert result == values

    def test_atomic_nested_set(self, pool):
        ddl = "define N as SET<TUPLE<Atomic<str>: k, SET<Atomic<int>>: nums>>;"
        values = [{"k": "a", "nums": [1, 2]}, {"k": "b", "nums": []}]
        result, _, _ = roundtrip(pool, ddl, values)
        assert result == values

    def test_none_collection_treated_as_empty(self, pool):
        ddl = "define N as SET<TUPLE<Atomic<str>: k, SET<Atomic<int>>: nums>>;"
        name, ty = parse_define(ddl)
        load_collection(pool, name, ty, [{"k": "a", "nums": None}])
        assert reconstruct_collection(pool, name, ty) == [{"k": "a", "nums": []}]

    def test_list_preserves_order(self, pool):
        ddl = "define L as SET<TUPLE<Atomic<str>: k, LIST<Atomic<int>>: seq>>;"
        values = [{"k": "a", "seq": [3, 1, 2]}]
        result, _, _ = roundtrip(pool, ddl, values)
        assert result[0]["seq"] == [3, 1, 2]


class TestContrepMapping:
    DDL = (
        "define Lib as SET<TUPLE<Atomic<URL>: source, "
        "CONTREP<Text>: annotation>>;"
    )

    def test_text_analyzed(self, pool):
        values = [{"source": "u", "annotation": "The red sunset. Red!"}]
        result, _, _ = roundtrip(pool, self.DDL, values)
        rep = result[0]["annotation"]
        assert isinstance(rep, ContentRepresentation)
        assert rep.terms["red"] == 2
        assert "the" not in rep.terms  # stopped

    def test_token_list_input(self, pool):
        values = [{"source": "u", "annotation": ["rgb_1", "rgb_1", "gabor_2"]}]
        result, _, _ = roundtrip(pool, self.DDL, values)
        assert result[0]["annotation"].terms == {"rgb_1": 2, "gabor_2": 1}

    def test_dict_input(self, pool):
        values = [{"source": "u", "annotation": {"x": 3}}]
        result, _, _ = roundtrip(pool, self.DDL, values)
        assert result[0]["annotation"].terms == {"x": 3}

    def test_empty_annotation(self, pool):
        values = [{"source": "u", "annotation": ""}]
        result, _, _ = roundtrip(pool, self.DDL, values)
        assert result[0]["annotation"].terms == {}
        assert result[0]["annotation"].length == 0

    def test_doclen_is_total_tf(self, pool):
        name, ty = parse_define(self.DDL)
        load_collection(
            pool, name, ty, [{"source": "u", "annotation": "red red sunset"}]
        )
        assert pool.lookup("Lib.annotation.doclen").tail_list() == [3]

    def test_bat_layout(self, pool):
        name, ty = parse_define(self.DDL)
        load_collection(pool, name, ty, [{"source": "u", "annotation": "x y"}])
        for suffix in ("owner", "term", "tf", "doclen"):
            assert pool.exists(f"Lib.annotation.{suffix}")


class TestBatNames:
    def test_flat(self):
        _, ty = parse_define(
            "define T as SET<TUPLE<Atomic<int>: a, Atomic<str>: b>>;"
        )
        names = attribute_bat_names("T", ty)
        assert "T.__extent__" in names
        assert "T.a" in names and "T.b" in names

    def test_contrep(self):
        _, ty = parse_define(
            "define L as SET<TUPLE<Atomic<URL>: u, CONTREP<Text>: c>>;"
        )
        names = attribute_bat_names("L", ty)
        assert "L.c.owner" in names and "L.c.doclen" in names

    def test_nested(self):
        _, ty = parse_define(
            "define N as SET<TUPLE<Atomic<str>: k, SET<Atomic<int>>: xs>>;"
        )
        names = attribute_bat_names("N", ty)
        assert "N.xs.__nest__" in names and "N.xs.__value__" in names
