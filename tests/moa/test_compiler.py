"""Flattening compiler: plan shapes and executed results."""

import pytest

from repro.core.mirror import MirrorDBMS
from repro.moa.errors import MoaCompileError



@pytest.fixture
def db():
    db = MirrorDBMS()
    db.define(
        """
        define Nums as SET<TUPLE<Atomic<int>: n, Atomic<float>: x,
            Atomic<str>: label>>;
        define Other as SET<TUPLE<Atomic<str>: name, Atomic<int>: code>>;
        define Nested as SET<TUPLE<Atomic<str>: k,
            SET<TUPLE<Atomic<int>: v>>: items>>;
        """
    )
    db.insert(
        "Nums",
        [
            {"n": 1, "x": 0.5, "label": "a"},
            {"n": 2, "x": 1.5, "label": "b"},
            {"n": 3, "x": 2.5, "label": "a"},
            {"n": 4, "x": 3.5, "label": "c"},
        ],
    )
    db.insert(
        "Other",
        [
            {"name": "a", "code": 10},
            {"name": "b", "code": 20},
            {"name": "a", "code": 30},
        ],
    )
    db.insert(
        "Nested",
        [
            {"k": "p", "items": [{"v": 1}, {"v": 2}]},
            {"k": "q", "items": []},
            {"k": "r", "items": [{"v": 10}]},
        ],
    )
    return db


class TestMapSelect:
    def test_map_attribute(self, db):
        assert db.query("map[THIS.n](Nums);").value == [1, 2, 3, 4]

    def test_map_arithmetic(self, db):
        assert db.query("map[THIS.n * 2 + 1](Nums);").value == [3, 5, 7, 9]

    def test_map_tuple(self, db):
        rows = db.query("map[tuple(a = THIS.n, b = THIS.label)](Nums);").value
        assert rows[0] == {"a": 1, "b": "a"}

    def test_map_constant(self, db):
        assert db.query("map[42](Nums);").value == [42, 42, 42, 42]

    def test_select_numeric(self, db):
        rows = db.query("select[THIS.n > 2](Nums);").value
        assert [r["n"] for r in rows] == [3, 4]

    def test_select_string(self, db):
        rows = db.query("select[THIS.label = 'a'](Nums);").value
        assert [r["n"] for r in rows] == [1, 3]

    def test_select_conjunction(self, db):
        rows = db.query("select[THIS.n > 1 and THIS.label = 'a'](Nums);").value
        assert [r["n"] for r in rows] == [3]

    def test_select_empty_result(self, db):
        assert db.query("select[THIS.n > 99](Nums);").value == []

    def test_select_then_map(self, db):
        result = db.query("map[THIS.x](select[THIS.n > 2](Nums));").value
        assert result == [2.5, 3.5]

    def test_whole_collection(self, db):
        rows = db.query("Nums;").value
        assert len(rows) == 4 and rows[1]["label"] == "b"


class TestAggregates:
    def test_top_level_sum(self, db):
        assert db.query("sum(map[THIS.n](Nums));").value == 10

    def test_top_level_count(self, db):
        assert db.query("count(Nums);").value == 4

    def test_top_level_avg(self, db):
        assert db.query("avg(map[THIS.x](Nums));").value == pytest.approx(2.0)

    def test_top_level_min_max(self, db):
        assert db.query("min(map[THIS.n](Nums));").value == 1
        assert db.query("max(map[THIS.n](Nums));").value == 4

    def test_nested_sum_per_parent(self, db):
        result = db.query("map[sum(map[THIS.v](THIS.items))](Nested);").value
        assert result == [3, 0, 10]

    def test_nested_count_per_parent(self, db):
        result = db.query("map[count(THIS.items)](Nested);").value
        assert result == [2, 0, 1]

    def test_nested_max_empty_is_nil(self, db):
        result = db.query("map[max(map[THIS.v](THIS.items))](Nested);").value
        assert result == [2, None, 10]


class TestJoins:
    def test_equijoin(self, db):
        rows = db.query("join[THIS1.label = THIS2.name](Nums, Other);").value
        pairs = sorted((r["n"], r["code"]) for r in rows)
        assert pairs == [(1, 10), (1, 30), (2, 20), (3, 10), (3, 30)]

    def test_join_with_residual(self, db):
        rows = db.query(
            "join[THIS1.label = THIS2.name and THIS2.code > 15](Nums, Other);"
        ).value
        pairs = sorted((r["n"], r["code"]) for r in rows)
        assert pairs == [(1, 30), (2, 20), (3, 30)]

    def test_semijoin(self, db):
        rows = db.query("semijoin[THIS1.label = THIS2.name](Nums, Other);").value
        assert [r["n"] for r in rows] == [1, 2, 3]

    def test_join_without_equality_rejected(self, db):
        with pytest.raises(MoaCompileError, match="equality"):
            db.query("join[THIS1.n > THIS2.code](Nums, Other);")


class TestNesting:
    def test_unnest(self, db):
        rows = db.query("unnest[items](Nested);").value
        assert rows == [
            {"k": "p", "v": 1},
            {"k": "p", "v": 2},
            {"k": "r", "v": 10},
        ]

    def test_unnest_then_select(self, db):
        rows = db.query("select[THIS.v > 1](unnest[items](Nested));").value
        assert [r["v"] for r in rows] == [2, 10]

    def test_nest(self, db):
        rows = db.query("nest[label](Nums);").value
        by_key = {r["label"]: r["group"] for r in rows}
        assert sorted(by_key) == ["a", "b", "c"]
        assert [g["n"] for g in by_key["a"]] == [1, 3]

    def test_nest_unnest_roundtrip_cardinality(self, db):
        nested = db.query("nest[label](Nums);").value
        total = sum(len(r["group"]) for r in nested)
        assert total == 4


class TestPlanProperties:
    def test_plan_is_valid_mil(self, db):
        from repro.monet.mil import parse_program

        compiled = db.executor.prepare("select[THIS.n > 2](Nums);")
        parse_program(compiled.program)  # must not raise

    def test_cse_dedups_repeated_subplans(self, annotated_db, annotated_stats):
        query = (
            "map[tuple(s1 = sum(getBL(THIS.annotation, query, stats)), "
            "s2 = sum(getBL(THIS.annotation, query, stats)))]"
            "(TraditionalImgLib);"
        )
        params = {"query": ["sunset"], "stats": annotated_stats}
        with_cse = annotated_db.executor.prepare(query, params, cse=True)
        without = annotated_db.executor.prepare(query, params, cse=False)
        assert with_cse.statements < without.statements

    def test_lazy_columns_skip_unused(self, db):
        lazy = db.executor.prepare("map[THIS.n](Nums);")
        eager = db.executor.prepare("map[THIS.n](Nums);", eager_columns=True)
        assert lazy.statements < eager.statements
        assert "Nums.label" not in lazy.program
        assert "Nums.label" in eager.program

    def test_dead_column_not_loaded_in_select(self, db):
        compiled = db.executor.prepare("map[THIS.x](select[THIS.n > 1](Nums));")
        assert "Nums.label" not in compiled.program

    def test_operator_counts_reported(self, db):
        result = db.query("select[THIS.n > 2](Nums);")
        assert result.operator_counts.get("uselect", 0) >= 1
