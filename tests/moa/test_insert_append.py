"""The Moa write path: O(batch) insert-appends vs the reload path.

``MirrorDBMS.insert`` now appends through the mapper ``append`` hooks
when the whole type tree supports it; these tests pin the equivalence:
whatever the fast path produces must be exactly what the old
reconstruct+reload path produces -- same contents, same physical names,
working queries -- across flat tuples, nested SETs/LISTs, fragmentation
promotion, and the CONTREP fallback.  Plus the ``insert into ... values
(...)`` DDL statement that rides on top.
"""

from __future__ import annotations

import pytest

from repro.core.mirror import MirrorDBMS
from repro.moa.ddl import parse_insert, parse_script, InsertStatement
from repro.moa.errors import MoaParseError, MoaTypeError
from repro.moa.mapping import can_append_collection

NESTED_DDL = (
    "define Lib as SET<TUPLE<Atomic<str>: source, Atomic<int>: size, "
    "SET<Atomic<str>>: tags, LIST<Atomic<int>>: seq>>;"
)


def _rows(start, stop):
    return [
        {
            "source": f"s{i}",
            "size": i,
            "tags": [f"t{i}", "common"],
            "seq": [i, i + 1, i + 2],
        }
        for i in range(start, stop)
    ]


def _reload_reference(threshold, rows_a, rows_b):
    """The pre-append behaviour: load everything in one shot."""
    db = MirrorDBMS(fragment_threshold=threshold)
    db.define(NESTED_DDL)
    db.replace("Lib", rows_a + rows_b)
    return db


@pytest.mark.parametrize("threshold", [None, 4])
def test_insert_append_matches_reload(threshold):
    db = MirrorDBMS(fragment_threshold=threshold)
    db.define(NESTED_DDL)
    db.insert("Lib", _rows(0, 3))
    assert db.insert("Lib", _rows(3, 9)) == 9
    reference = _reload_reference(threshold, _rows(0, 3), _rows(3, 9))
    assert db.contents("Lib") == reference.contents("Lib")
    assert db.count("Lib") == reference.count("Lib")
    assert sorted(db.bat_names("Lib")) == sorted(reference.bat_names("Lib"))
    # Queries over the appended state agree too.
    query = "map[THIS.size](select[THIS.size > 4](Lib));"
    assert sorted(db.query(query).value) == sorted(reference.query(query).value)


def test_append_preserves_extent_flags():
    db = MirrorDBMS()
    db.define(NESTED_DDL)
    db.insert("Lib", _rows(0, 3))
    db.insert("Lib", _rows(3, 6))
    extent = db.pool.lookup("Lib.__extent__")
    assert extent.tkey and extent.tsorted
    assert extent.tail_list() == list(range(6))


def test_append_promotes_to_fragments_across_threshold():
    db = MirrorDBMS(fragment_threshold=5)
    db.define(NESTED_DDL)
    db.insert("Lib", _rows(0, 3))
    assert not db.pool.is_fragmented("Lib.source")
    db.insert("Lib", _rows(3, 9))
    assert db.pool.is_fragmented("Lib.source")
    # The extent stays monolithic by design.
    assert not db.pool.is_fragmented("Lib.__extent__")
    assert db.contents("Lib") == _rows(0, 9)


def test_append_is_snapshot_isolated():
    db = MirrorDBMS()
    db.define(NESTED_DDL)
    db.insert("Lib", _rows(0, 3))
    snapshot = db.pool.read_snapshot()
    db.insert("Lib", _rows(3, 6))
    assert len(snapshot.lookup("Lib.__extent__")) == 3
    assert db.count("Lib") == 6


def test_contrep_falls_back_to_reload():
    pytest.importorskip("repro.moa.structures.contrep")
    db = MirrorDBMS()
    db.define(
        "define Docs as SET<TUPLE<Atomic<str>: id, CONTREP<Text>: body>>;"
    )
    assert not can_append_collection(db.collection_type("Docs"))
    db.insert("Docs", [{"id": "d1", "body": "a b a"}])
    db.insert("Docs", [{"id": "d2", "body": "c a c"}])
    assert db.count("Docs") == 2
    contents = db.contents("Docs")
    assert [c["id"] for c in contents] == ["d1", "d2"]


def test_atomic_element_append():
    db = MirrorDBMS()
    db.define("define Words as SET<Atomic<str>>;")
    db.insert("Words", ["alpha"])
    db.insert("Words", ["beta", None])
    assert db.contents("Words") == ["alpha", "beta", None]


# ----------------------------------------------------------------------
# insert-into DDL statements
# ----------------------------------------------------------------------


def test_parse_insert_literals():
    statement = parse_insert(
        'insert into Nums values (1, "a", 2.5, nil, true, -3, -4.5);'
    )
    assert statement.name == "Nums"
    assert statement.rows == [[1, "a", 2.5, None, True, -3, -4.5]]


def test_parse_insert_multiple_rows():
    statement = parse_insert("insert into T values (1), (2), (3);")
    assert statement.rows == [[1], [2], [3]]


def test_parse_script_mixed_statements():
    statements = parse_script(
        "define A as SET<Atomic<int>>;\ninsert into A values (1), (2);"
    )
    assert len(statements) == 2
    assert isinstance(statements[1], InsertStatement)


@pytest.mark.parametrize(
    "bad",
    [
        "insert into T values;",
        "insert T values (1);",
        "insert into T values (1,);",
        "insert into T values (-);",
        "insert into T values (foo);",
    ],
)
def test_parse_insert_rejects_malformed(bad):
    with pytest.raises(MoaParseError):
        parse_insert(bad)


def test_execute_script_end_to_end():
    db = MirrorDBMS()
    outcomes = db.execute(
        "define Nums as SET<TUPLE<Atomic<int>: v, Atomic<str>: s>>;\n"
        'insert into Nums values (1, "a"), (2, "b");\n'
        "insert into Nums values (3, nil);"
    )
    assert len(outcomes) == 3
    assert db.count("Nums") == 3
    contents = db.contents("Nums")
    assert contents[0] == {"v": 1, "s": "a"}
    assert contents[2] == {"v": 3, "s": None}


def test_execute_arity_mismatch_rejected():
    db = MirrorDBMS()
    db.define("define Nums as SET<TUPLE<Atomic<int>: v, Atomic<str>: s>>;")
    with pytest.raises(MoaTypeError, match="expected 2 literals"):
        db.execute("insert into Nums values (1);")
