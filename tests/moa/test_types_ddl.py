"""Moa type system and DDL parsing."""

import pytest

from repro.moa.ddl import parse_define, parse_schema, render_define
from repro.moa.errors import MoaParseError, MoaTypeError
from repro.moa.structures.contrep import ContrepType
from repro.moa.types import (
    AtomicType,
    ListType,
    SetType,
    StatsType,
    TupleType,
    base_type_atom,
    common_numeric,
    element_type,
    is_collection,
    is_numeric_atomic,
    make_tuple_type,
    register_base_type,
    register_structure,
    structure_names,
)


class TestBaseTypes:
    def test_paper_base_types_mapped(self):
        assert base_type_atom("URL") == "str"
        assert base_type_atom("Text") == "str"
        assert base_type_atom("Image") == "str"
        assert base_type_atom("Vector") == "str"
        assert base_type_atom("int") == "int"
        assert base_type_atom("float") == "dbl"

    def test_unknown_base_type(self):
        with pytest.raises(MoaTypeError):
            base_type_atom("Quaternion")

    def test_register_base_type(self):
        register_base_type("Fingerprint", "str")
        assert base_type_atom("Fingerprint") == "str"

    def test_conflicting_base_type_rejected(self):
        with pytest.raises(MoaTypeError):
            register_base_type("URL", "int")


class TestTypeTree:
    def test_atomic_render(self):
        assert AtomicType("URL").render() == "Atomic<URL>"

    def test_atomic_validates_base(self):
        with pytest.raises(MoaTypeError):
            AtomicType("Nope")

    def test_tuple_fields(self):
        ty = make_tuple_type([("a", AtomicType("int")), ("b", AtomicType("str"))])
        assert ty.field_names() == ["a", "b"]
        assert ty.field_type("b").atom == "str"
        assert ty.has_field("a") and not ty.has_field("z")

    def test_tuple_unknown_field(self):
        ty = make_tuple_type([("a", AtomicType("int"))])
        with pytest.raises(MoaTypeError):
            ty.field_type("z")

    def test_tuple_duplicate_field_rejected(self):
        with pytest.raises(MoaTypeError):
            make_tuple_type([("a", AtomicType("int")), ("a", AtomicType("int"))])

    def test_empty_tuple_rejected(self):
        with pytest.raises(MoaTypeError):
            make_tuple_type([])

    def test_set_render(self):
        assert SetType(AtomicType("int")).render() == "SET<Atomic<int>>"

    def test_equality_structural(self):
        a = SetType(AtomicType("int"))
        b = SetType(AtomicType("int"))
        assert a == b and hash(a) == hash(b)

    def test_collection_predicates(self):
        assert is_collection(SetType(AtomicType("int")))
        assert is_collection(ListType(AtomicType("int")))
        assert not is_collection(AtomicType("int"))

    def test_element_type(self):
        assert element_type(SetType(AtomicType("int"))).atom == "int"
        with pytest.raises(MoaTypeError):
            element_type(AtomicType("int"))

    def test_numeric_predicates(self):
        assert is_numeric_atomic(AtomicType("int"))
        assert not is_numeric_atomic(AtomicType("str"))

    def test_common_numeric_promotion(self):
        assert common_numeric(AtomicType("int"), AtomicType("float")).atom == "dbl"
        assert common_numeric(AtomicType("int"), AtomicType("int")).atom == "int"
        with pytest.raises(MoaTypeError):
            common_numeric(AtomicType("str"), AtomicType("int"))

    def test_stats_type(self):
        assert StatsType().render() == "STATS"


class TestStructureRegistry:
    def test_kernel_structures_registered(self):
        names = structure_names()
        assert {"Atomic", "SET", "LIST", "CONTREP"} <= set(names)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MoaTypeError):
            register_structure("SET", lambda args: None)


class TestDDL:
    def test_paper_section3_schema(self):
        name, ty = parse_define(
            "define TraditionalImgLib as SET< TUPLE< Atomic<URL>: source, "
            "CONTREP<Text>: annotation >>;"
        )
        assert name == "TraditionalImgLib"
        assert isinstance(ty, SetType)
        elem = ty.element
        assert isinstance(elem, TupleType)
        assert elem.field_names() == ["source", "annotation"]
        assert isinstance(elem.field_type("annotation"), ContrepType)

    def test_paper_section5_schema(self):
        name, ty = parse_define(
            """
            define ImageLibrary as
            SET<
              TUPLE<
                Atomic<URL>: source,
                Atomic<Text>: annotation,
                Atomic<Image>: image
              >>;
            """
        )
        assert name == "ImageLibrary"
        assert ty.element.field_names() == ["source", "annotation", "image"]

    def test_nested_set_schema(self):
        _, ty = parse_define(
            "define X as SET<TUPLE<Atomic<URL>: u, "
            "SET<TUPLE<Atomic<Image>: segment, Atomic<Vector>: RGB>>: segments>>;"
        )
        segments = ty.element.field_type("segments")
        assert isinstance(segments, SetType)
        assert segments.element.field_names() == ["segment", "RGB"]

    def test_list_structure(self):
        _, ty = parse_define("define L as LIST<Atomic<int>>;")
        assert isinstance(ty, ListType)

    def test_multiple_defines(self):
        schema = parse_schema(
            "define A as SET<Atomic<int>>; define B as SET<Atomic<str>>;"
        )
        assert sorted(schema) == ["A", "B"]

    def test_duplicate_define_rejected(self):
        with pytest.raises(MoaTypeError):
            parse_schema("define A as SET<Atomic<int>>; define A as SET<Atomic<int>>;")

    def test_missing_semicolon(self):
        with pytest.raises(MoaParseError):
            parse_define("define A as SET<Atomic<int>>")

    def test_unknown_structure(self):
        with pytest.raises(MoaTypeError, match="unknown structure"):
            parse_define("define A as BAG<Atomic<int>>;")

    def test_tuple_needs_field_names(self):
        with pytest.raises(MoaParseError):
            parse_define("define A as SET<TUPLE<Atomic<int>>>;")

    def test_render_roundtrip(self):
        text = (
            "define TraditionalImgLib as SET<TUPLE<Atomic<URL>: source, "
            "CONTREP<Text>: annotation>>;"
        )
        name, ty = parse_define(text)
        rendered = render_define(name, ty)
        name2, ty2 = parse_define(rendered)
        assert name2 == name and ty2 == ty

    def test_comments_allowed(self):
        name, _ = parse_define("# schema\ndefine A as SET<Atomic<int>>; # done")
        assert name == "A"
