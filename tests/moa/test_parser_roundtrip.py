"""Property: render(parse(q)) is a fixpoint for random query ASTs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moa import ast
from repro.moa.parser import parse_query

_idents = st.sampled_from(["Lib", "Other", "query", "x", "score"])
_attrs = st.sampled_from(["a", "b", "source", "score"])


def _scalar(depth):
    leaves = st.one_of(
        st.builds(lambda: ast.This(index=0)),
        st.builds(
            lambda a: ast.AttrAccess(base=ast.This(index=0), attr=a), _attrs
        ),
        st.builds(
            lambda v: ast.Literal(value=v, atom="int"),
            st.integers(min_value=0, max_value=99),
        ),
        st.builds(
            lambda v: ast.Literal(value=round(v, 3), atom="dbl"),
            st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
        ),
    )
    if depth <= 0:
        return leaves
    return st.one_of(
        leaves,
        st.builds(
            lambda op, lhs, rhs: ast.BinOp(op=op, left=lhs, right=rhs),
            st.sampled_from(["+", "-", "*"]),
            _scalar(depth - 1),
            _scalar(depth - 1),
        ),
        st.builds(
            lambda a: ast.FuncCall(name="abs", args=[a]), _scalar(depth - 1)
        ),
    )


def _predicate(depth):
    comparison = st.builds(
        lambda op, lhs, rhs: ast.BinOp(op=op, left=lhs, right=rhs),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        _scalar(depth),
        _scalar(depth),
    )
    if depth <= 0:
        return comparison
    return st.one_of(
        comparison,
        st.builds(
            lambda op, lhs, rhs: ast.BinOp(op=op, left=lhs, right=rhs),
            st.sampled_from(["and", "or"]),
            _predicate(depth - 1),
            _predicate(depth - 1),
        ),
    )


def _collection(depth):
    base = st.builds(lambda n: ast.CollectionRef(name=n), _idents)
    if depth <= 0:
        return base
    inner = _collection(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda b, o: ast.Map(body=b, over=o), _scalar(1), inner),
        st.builds(
            lambda p, o: ast.Select(pred=p, over=o), _predicate(1), inner
        ),
        st.builds(
            lambda fields, o: ast.Map(
                body=ast.TupleCons(
                    fields=[(f"f{i}", e) for i, e in enumerate(fields)]
                ),
                over=o,
            ),
            st.lists(_scalar(0), min_size=1, max_size=3),
            inner,
        ),
        st.builds(lambda o: ast.FuncCall(name="count", args=[o]), inner),
    )


@settings(max_examples=120, deadline=None)
@given(_collection(3))
def test_render_parse_fixpoint(tree):
    rendered = ast.render(tree)
    reparsed = parse_query(rendered)
    assert ast.render(reparsed) == rendered
