"""Differential testing: compiled MIL plans must agree with the
tuple-at-a-time reference interpreter (the semantics oracle).

Includes hypothesis-driven random data: same schema, random rows,
a fixed battery of queries, results compared exactly.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mirror import MirrorDBMS
from tests.conftest import (
    ANNOTATED_DOCS,
    SECTION3_QUERY,
    TRADITIONAL_DDL,
)

SCHEMA_DDL = """
define Rows as SET<TUPLE<Atomic<int>: n, Atomic<float>: x, Atomic<str>: tag>>;
define Codes as SET<TUPLE<Atomic<str>: name, Atomic<int>: code>>;
"""

QUERIES = [
    "Rows;",
    "map[THIS.n](Rows);",
    "map[THIS.n * 2 - 1](Rows);",
    "map[tuple(a = THIS.n, b = THIS.x / 2)](Rows);",
    "select[THIS.n > 0](Rows);",
    "select[THIS.tag = 'a'](Rows);",
    "select[THIS.n > 0 and THIS.tag = 'b'](Rows);",
    "map[THIS.x](select[THIS.n >= 2](Rows));",
    "sum(map[THIS.n](Rows));",
    "count(Rows);",
    "join[THIS1.tag = THIS2.name](Rows, Codes);",
    "semijoin[THIS1.tag = THIS2.name](Rows, Codes);",
    "nest[tag](Rows);",
]

_row = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=-5, max_value=5),
        "x": st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
        "tag": st.sampled_from(["a", "b", "c"]),
    }
)
_code = st.fixed_dictionaries(
    {
        "name": st.sampled_from(["a", "b", "d"]),
        "code": st.integers(min_value=0, max_value=9),
    }
)


def _normalize(value):
    """Canonical form for comparison: sort collections of tuples where
    order is semantically a set (join results)."""
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, float):
        return round(value, 9)
    return value


def _build(rows, codes):
    db = MirrorDBMS()
    db.define(SCHEMA_DDL)
    db.insert("Rows", rows)
    db.insert("Codes", codes)
    data = {"Rows": rows, "Codes": codes}
    return db, data


@settings(max_examples=25, deadline=None)
@given(
    st.lists(_row, max_size=12),
    st.lists(_code, max_size=6),
    st.sampled_from(QUERIES),
)
def test_compiled_equals_interpreted(rows, codes, query):
    db, data = _build(rows, codes)
    compiled = db.query(query).value
    interpreted = db.executor.execute_interpreted(query, data)
    if query.startswith(("join", "semijoin")):
        def key(row):
            return sorted(row.items())

        assert sorted(_normalize(compiled), key=key) == sorted(
            _normalize(interpreted), key=key
        )
    else:
        assert _normalize(compiled) == _normalize(interpreted)


@settings(max_examples=15, deadline=None)
@given(st.lists(_row, max_size=12), st.lists(_code, max_size=6))
def test_optimized_equals_unoptimized(rows, codes):
    db, _ = _build(rows, codes)
    query = "map[THIS.x](select[THIS.n > 0](Rows));"
    optimized = db.query(query, optimize=True).value
    plain = db.query(query, optimize=False, eager_columns=True, cse=False).value
    assert _normalize(optimized) == _normalize(plain)


class TestPaperQueryDifferential:
    """The section 3 ranking query, compiled vs interpreted, on the
    shared fixture library and on randomized term sets."""

    def test_fixture_library(self, annotated_db, annotated_stats, annotated_data):
        params = {"query": ["sunset", "sea"], "stats": annotated_stats}
        compiled = annotated_db.query(SECTION3_QUERY, params).value
        interpreted = annotated_db.executor.execute_interpreted(
            SECTION3_QUERY, annotated_data, params
        )
        assert len(compiled) == len(interpreted)
        for a, b in zip(compiled, interpreted):
            assert a == pytest.approx(b, abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                ["sunset", "sea", "beach", "forest", "city", "green", "wave",
                 "unknownterm"]
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_random_queries(self, query_terms):
        db = MirrorDBMS()
        db.define(TRADITIONAL_DDL)
        db.insert("TraditionalImgLib", ANNOTATED_DOCS)
        stats = db.stats("TraditionalImgLib", "annotation")
        from repro.moa.structures.contrep import ContentRepresentation

        data = {
            "TraditionalImgLib": [
                {
                    "source": d["source"],
                    "annotation": ContentRepresentation.from_value(
                        d["annotation"], "Text"
                    ),
                }
                for d in ANNOTATED_DOCS
            ]
        }
        params = {"query": query_terms, "stats": stats}
        compiled = db.query(SECTION3_QUERY, params).value
        interpreted = db.executor.execute_interpreted(
            SECTION3_QUERY, data, params
        )
        for a, b in zip(compiled, interpreted):
            assert a == pytest.approx(b, abs=1e-12)

    def test_eager_mode_agrees(self, annotated_db, annotated_stats):
        params = {"query": ["sunset"], "stats": annotated_stats}
        lazy = annotated_db.query(SECTION3_QUERY, params).value
        eager = annotated_db.query(
            SECTION3_QUERY, params, optimize=False, eager_columns=True, cse=False
        ).value
        assert lazy == pytest.approx(eager)
