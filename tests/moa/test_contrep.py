"""CONTREP: the extension structure end to end."""

import pytest

from repro.moa.errors import MoaCompileError, MoaTypeError
from repro.moa.structures.contrep import ContentRepresentation, ContrepType

from tests.conftest import SECTION3_QUERY


class TestContentRepresentation:
    def test_from_text_analyzes(self):
        rep = ContentRepresentation.from_value("The red red sunset", "Text")
        assert rep.terms == {"red": 2, "sunset": 1}
        assert rep.length == 3

    def test_from_tokens(self):
        rep = ContentRepresentation.from_tokens(["a", "b", "a"])
        assert rep.terms == {"a": 2, "b": 1}

    def test_from_dict(self):
        rep = ContentRepresentation.from_value({"x": 3, "y": 0}, "Image")
        assert rep.terms == {"x": 3}  # zero frequencies dropped

    def test_non_text_media_splits_whitespace(self):
        rep = ContentRepresentation.from_value("rgb_1 rgb_1 gabor_2", "Image")
        assert rep.terms == {"rgb_1": 2, "gabor_2": 1}

    def test_none_is_empty(self):
        rep = ContentRepresentation.from_value(None, "Text")
        assert rep.terms == {} and rep.length == 0

    def test_explicit_length_kept(self):
        rep = ContentRepresentation({"x": 1}, length=10)
        assert rep.length == 10

    def test_equality(self):
        a = ContentRepresentation({"x": 1})
        b = ContentRepresentation({"x": 1})
        assert a == b

    def test_invalid_input_rejected(self):
        with pytest.raises(MoaTypeError):
            ContentRepresentation.from_value(3.14, "Text")


class TestContrepType:
    def test_render(self):
        assert ContrepType("Text").render() == "CONTREP<Text>"

    def test_ddl_integration(self):
        from repro.moa.ddl import parse_define

        _, ty = parse_define("define X as SET<TUPLE<CONTREP<Image>: c>>;")
        field = ty.element.field_type("c")
        assert isinstance(field, ContrepType) and field.media == "Image"

    def test_factory_validates(self):
        from repro.moa.types import structure_factory

        with pytest.raises(MoaTypeError):
            structure_factory("CONTREP")([])


class TestGetBLExecution:
    def test_scores_match_hand_computation(self, annotated_db, annotated_stats):
        from repro.ir.beliefs import belief

        params = {"query": ["sunset"], "stats": annotated_stats}
        scores = annotated_db.query(SECTION3_QUERY, params).value
        # Doc 0: "a red sunset over the sea" -> sunset tf=1, len=4 terms.
        reps = annotated_db.contents("TraditionalImgLib")
        rep0 = reps[0]["annotation"]
        expected = belief(
            rep0.terms["sunset"], rep0.length, annotated_stats, "sunset"
        )
        assert scores[0] == pytest.approx(expected)

    def test_unmatched_docs_score_zero(self, annotated_db, annotated_stats):
        params = {"query": ["sunset"], "stats": annotated_stats}
        scores = annotated_db.query(SECTION3_QUERY, params).value
        # Doc 3 ("a city skyline at night") has no 'sunset'.
        assert scores[3] == 0.0

    def test_unknown_term_scores_all_zero(self, annotated_db, annotated_stats):
        params = {"query": ["xylophone"], "stats": annotated_stats}
        scores = annotated_db.query(SECTION3_QUERY, params).value
        assert scores == [0.0] * len(scores)

    def test_repeated_query_term_doubles_contribution(
        self, annotated_db, annotated_stats
    ):
        single = annotated_db.query(
            SECTION3_QUERY, {"query": ["sunset"], "stats": annotated_stats}
        ).value
        double = annotated_db.query(
            SECTION3_QUERY,
            {"query": ["sunset", "sunset"], "stats": annotated_stats},
        ).value
        for s, d in zip(single, double):
            assert d == pytest.approx(2 * s)

    def test_getbl_after_select(self, annotated_db, annotated_stats):
        query = (
            "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)]("
            "select[THIS.source = 'http://img/3'](TraditionalImgLib)));"
        )
        params = {"query": ["sunset"], "stats": annotated_stats}
        scores = annotated_db.query(query, params).value
        assert len(scores) == 1 and scores[0] > 0

    def test_getbl_needs_parameter_query(self, annotated_db, annotated_stats):
        query = (
            "map[sum(getBL(THIS.annotation, TraditionalImgLib, stats))]"
            "(TraditionalImgLib);"
        )
        with pytest.raises((MoaCompileError, MoaTypeError)):
            annotated_db.query(query, {"stats": annotated_stats})

    def test_contrep_roundtrips_through_query(self, annotated_db):
        rows = annotated_db.query("TraditionalImgLib;").value
        rep = rows[0]["annotation"]
        assert isinstance(rep, ContentRepresentation)
        assert rep.terms.get("sunset") == 1

    def test_belief_values_in_range(self, annotated_db, annotated_stats):
        query = (
            "map[getBL(THIS.annotation, query, stats)](TraditionalImgLib);"
        )
        params = {"query": ["sunset", "sea"], "stats": annotated_stats}
        belief_lists = annotated_db.query(query, params).value
        for beliefs in belief_lists:
            for b in beliefs:
                assert 0.4 <= b <= 1.0
