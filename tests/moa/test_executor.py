"""Executor: parameter binding, prepared queries, result shapes."""

import pytest

from repro.core.mirror import MirrorDBMS
from repro.ir.stats import CollectionStats
from repro.moa.errors import MoaTypeError
from repro.moa.executor import infer_param_type
from repro.moa.types import SetType, StatsType


class TestParamInference:
    def test_string_list(self):
        ty = infer_param_type(["a", "b"])
        assert isinstance(ty, SetType) and ty.element.atom == "str"

    def test_int_list(self):
        assert infer_param_type([1, 2]).element.atom == "int"

    def test_float_list(self):
        assert infer_param_type([1.5, 2]).element.atom == "dbl"

    def test_bool_list(self):
        assert infer_param_type([True]).element.atom == "bit"

    def test_stats(self):
        stats = CollectionStats.from_documents([])
        assert isinstance(infer_param_type(stats), StatsType)

    def test_mixed_rejected(self):
        with pytest.raises(MoaTypeError):
            infer_param_type(["a", 1])

    def test_scalar_rejected(self):
        with pytest.raises(MoaTypeError):
            infer_param_type(42)


@pytest.fixture
def db():
    db = MirrorDBMS()
    db.define("define Rows as SET<TUPLE<Atomic<int>: n, Atomic<str>: tag>>;")
    db.insert(
        "Rows",
        [{"n": 1, "tag": "a"}, {"n": 2, "tag": "b"}, {"n": 3, "tag": "a"}],
    )
    return db


class TestPreparedQueries:
    def test_prepare_then_run_repeatedly(self, db):
        compiled = db.executor.prepare("select[THIS.n > 1](Rows);")
        first = db.executor.run_compiled(compiled)
        second = db.executor.run_compiled(compiled)
        assert first.value == second.value
        assert len(first.value) == 2

    def test_prepared_with_params(self, db):
        db.define(
            "define Docs as SET<TUPLE<Atomic<URL>: u, CONTREP<Text>: c>>;"
        )
        db.insert("Docs", [{"u": "x", "c": "red sunset"}])
        stats = db.stats("Docs", "c")
        params = {"query": ["sunset"], "stats": stats}
        compiled = db.executor.prepare(
            "map[sum(getBL(THIS.c, query, stats))](Docs);", params
        )
        result = db.executor.run_compiled(compiled, params)
        assert result.value[0] > 0

    def test_rebinding_different_terms(self, db):
        db.define(
            "define Docs as SET<TUPLE<Atomic<URL>: u, CONTREP<Text>: c>>;"
        )
        db.insert(
            "Docs",
            [{"u": "x", "c": "red sunset"}, {"u": "y", "c": "green tree"}],
        )
        stats = db.stats("Docs", "c")
        query = "map[sum(getBL(THIS.c, query, stats))](Docs);"
        compiled = db.executor.prepare(
            query, {"query": ["sunset"], "stats": stats}
        )
        r1 = db.executor.run_compiled(
            compiled, {"query": ["sunset"], "stats": stats}
        )
        r2 = db.executor.run_compiled(
            compiled, {"query": ["tree"], "stats": stats}
        )
        assert r1.value[0] > 0 and r1.value[1] == 0
        assert r2.value[0] == 0 and r2.value[1] > 0


class TestResultShapes:
    def test_scalar_result(self, db):
        assert db.query("count(Rows);").value == 3

    def test_atomic_collection(self, db):
        assert db.query("map[THIS.n](Rows);").value == [1, 2, 3]

    def test_tuple_collection(self, db):
        rows = db.query("Rows;").value
        assert rows == [
            {"n": 1, "tag": "a"},
            {"n": 2, "tag": "b"},
            {"n": 3, "tag": "a"},
        ]

    def test_nested_collection(self, db):
        rows = db.query("map[getBLish(THIS)](Rows);" if False else "nest[tag](Rows);").value
        grouped = {r["tag"]: r["group"] for r in rows}
        assert [g["n"] for g in grouped["a"]] == [1, 3]

    def test_constant_map_materialized(self, db):
        assert db.query("map[7](Rows);").value == [7, 7, 7]

    def test_empty_collection_query(self, db):
        db.replace("Rows", [])
        assert db.query("Rows;").value == []
        assert db.query("map[THIS.n](Rows);").value == []
        assert db.query("count(Rows);").value == 0

    def test_empty_select_result_shapes(self, db):
        assert db.query("select[THIS.n > 99](Rows);").value == []
        assert (
            db.query("map[THIS.tag](select[THIS.n > 99](Rows));").value == []
        )

    def test_operator_counts_present(self, db):
        result = db.query("select[THIS.n > 1](Rows);")
        assert sum(result.operator_counts.values()) > 0


class TestQueryParamAsCollection:
    def test_param_used_as_collection(self, db):
        result = db.query("count(terms);", {"terms": ["a", "b", "c"]})
        assert result.value == 3

    def test_param_mapped(self, db):
        result = db.query("map[THIS](nums);", {"nums": [5, 6]})
        assert result.value == [5, 6]
