"""Moa query expression parser."""

import pytest

from repro.moa import ast
from repro.moa.errors import MoaParseError
from repro.moa.parser import parse_query


class TestStructureOps:
    def test_paper_section3_query(self):
        node = parse_query(
            "map[sum(THIS)]("
            "map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));"
        )
        assert isinstance(node, ast.Map)
        assert isinstance(node.body, ast.FuncCall) and node.body.name == "sum"
        inner = node.over
        assert isinstance(inner, ast.Map)
        getbl = inner.body
        assert isinstance(getbl, ast.FuncCall) and getbl.name == "getBL"
        assert isinstance(getbl.args[0], ast.AttrAccess)
        assert getbl.args[0].attr == "annotation"
        assert isinstance(inner.over, ast.CollectionRef)
        assert inner.over.name == "TraditionalImgLib"

    def test_select(self):
        node = parse_query("select[THIS.x > 3](Lib)")
        assert isinstance(node, ast.Select)
        assert isinstance(node.pred, ast.BinOp) and node.pred.op == ">"

    def test_join(self):
        node = parse_query("join[THIS1.a = THIS2.b](X, Y)")
        assert isinstance(node, ast.Join)
        assert isinstance(node.pred.left, ast.AttrAccess)
        assert node.pred.left.base.index == 1
        assert node.pred.right.base.index == 2

    def test_semijoin(self):
        node = parse_query("semijoin[THIS1.a = THIS2.a](X, Y)")
        assert isinstance(node, ast.Semijoin)

    def test_unnest(self):
        node = parse_query("unnest[segments](Lib)")
        assert isinstance(node, ast.Unnest) and node.attr == "segments"

    def test_nest(self):
        node = parse_query("nest[source](Lib)")
        assert isinstance(node, ast.Nest) and node.key == "source"

    def test_tuple_constructor(self):
        node = parse_query("map[tuple(a = THIS.x, b = 1)](Lib)")
        cons = node.body
        assert isinstance(cons, ast.TupleCons)
        assert [name for name, _ in cons.fields] == ["a", "b"]


class TestExpressions:
    def test_this_variants(self):
        assert parse_query("map[THIS](X)").body.index == 0
        join = parse_query("join[THIS1.a = THIS2.b](X, Y)")
        assert join.pred.left.base.index == 1

    def test_literals(self):
        node = parse_query("map[tuple(a = 1, b = 2.5, c = 'x', d = true)](L)")
        values = {n: e for n, e in node.body.fields}
        assert values["a"].atom == "int"
        assert values["b"].atom == "dbl"
        assert values["c"].atom == "str"
        assert values["d"].atom == "bit"

    def test_operator_precedence(self):
        node = parse_query("select[THIS.a + 2 * 3 = 7](L)")
        pred = node.pred
        assert pred.op == "="
        assert pred.left.op == "+"
        assert pred.left.right.op == "*"

    def test_logical_operators(self):
        node = parse_query("select[THIS.a = 1 and THIS.b = 2 or THIS.c = 3](L)")
        assert node.pred.op == "or"
        assert node.pred.left.op == "and"

    def test_not(self):
        node = parse_query("select[not (THIS.a = 1)](L)")
        assert node.pred.name == "not"

    def test_attribute_chain(self):
        node = parse_query("map[THIS.a.b](L)")
        access = node.body
        assert access.attr == "b" and access.base.attr == "a"

    def test_arithmetic_in_map(self):
        node = parse_query("map[THIS.x * 2 + 1](L)")
        assert node.body.op == "+"

    def test_parenthesized(self):
        node = parse_query("map[(THIS.x + 1) * 2](L)")
        assert node.body.op == "*"

    def test_unary_minus(self):
        node = parse_query("map[-THIS.x](L)")
        assert node.body.name == "neg"

    def test_trailing_semicolon_optional(self):
        assert parse_query("X") is not None
        assert parse_query("X;") is not None


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(MoaParseError, match="trailing"):
            parse_query("X Y")

    def test_unbalanced_bracket(self):
        with pytest.raises(MoaParseError):
            parse_query("map[sum(THIS)(X)")

    def test_join_needs_two_operands(self):
        with pytest.raises(MoaParseError):
            parse_query("join[THIS1.a = THIS2.b](X)")

    def test_map_takes_one_operand(self):
        with pytest.raises(MoaParseError):
            parse_query("map[THIS](X, Y)")

    def test_empty_query(self):
        with pytest.raises(MoaParseError):
            parse_query("")

    def test_render_roundtrip(self):
        text = (
            "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)]"
            "(TraditionalImgLib))"
        )
        node = parse_query(text)
        rendered = ast.render(node)
        reparsed = parse_query(rendered)
        assert ast.render(reparsed) == rendered
