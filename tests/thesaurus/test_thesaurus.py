"""Co-occurrence counting and the EMIM association thesaurus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thesaurus.assoc import AssociationThesaurus
from repro.thesaurus.cooccurrence import CooccurrenceCounts

#: (annotation words, visual words) documents: 'sunset' co-occurs with
#: rgb_1 consistently, 'forest' with rgb_2.
DOCS = [
    (["sunset", "beach"], ["rgb_1", "gabor_0"]),
    (["sunset", "sea"], ["rgb_1", "gabor_1"]),
    (["forest", "green"], ["rgb_2", "gabor_1"]),
    (["forest", "trees"], ["rgb_2", "gabor_0"]),
    (["city"], ["rgb_3"]),
]


@pytest.fixture
def counts():
    return CooccurrenceCounts.from_documents(DOCS)


@pytest.fixture
def thesaurus(counts):
    return AssociationThesaurus(counts)


class TestCooccurrence:
    def test_document_count(self, counts):
        assert counts.document_count == 5

    def test_marginals(self, counts):
        assert counts.left_df["sunset"] == 2
        assert counts.right_df["rgb_1"] == 2

    def test_joint(self, counts):
        assert counts.joint_count("sunset", "rgb_1") == 2
        assert counts.joint_count("sunset", "rgb_2") == 0

    def test_presence_based(self):
        counts = CooccurrenceCounts.from_documents(
            [(["w", "w", "w"], ["c", "c"])]
        )
        assert counts.left_df["w"] == 1
        assert counts.joint_count("w", "c") == 1

    def test_vocabularies_sorted(self, counts):
        assert counts.left_vocabulary() == sorted(counts.left_vocabulary())

    def test_pairs_for_left(self, counts):
        pairs = counts.pairs_for_left("sunset")
        assert pairs[0] == ("rgb_1", 2)

    def test_incremental_add(self):
        counts = CooccurrenceCounts()
        counts.add_document(["a"], ["x"])
        counts.add_document(["a"], ["y"])
        assert counts.document_count == 2
        assert counts.left_df["a"] == 2


class TestEmim:
    def test_associated_pair_scores_higher(self, thesaurus):
        strong = thesaurus.emim("sunset", "rgb_1")
        weak = thesaurus.emim("sunset", "rgb_2")
        assert strong > weak

    def test_score_non_negative(self, thesaurus):
        for word in ("sunset", "forest", "city"):
            for cluster in ("rgb_1", "rgb_2", "rgb_3"):
                assert thesaurus.emim(word, cluster) >= 0.0

    def test_unknown_terms_score_low(self, thesaurus):
        assert thesaurus.emim("xyzzy", "rgb_1") <= thesaurus.emim(
            "sunset", "rgb_1"
        )

    def test_empty_collection(self):
        thesaurus = AssociationThesaurus(CooccurrenceCounts())
        assert thesaurus.emim("a", "b") == 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3),
                st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=3),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_emim_always_finite_nonnegative(self, documents):
        thesaurus = AssociationThesaurus(
            CooccurrenceCounts.from_documents(documents)
        )
        for word in ("a", "b", "c"):
            for cluster in ("x", "y", "z"):
                score = thesaurus.emim(word, cluster)
                assert score >= 0.0


class TestAssociationLookup:
    def test_associate_ranks_by_score(self, thesaurus):
        top = thesaurus.associate("sunset", k=2)
        assert top[0].cluster == "rgb_1"

    def test_associate_k_limits(self, thesaurus):
        assert len(thesaurus.associate("sunset", k=1)) == 1

    def test_associate_unknown_word_empty(self, thesaurus):
        assert thesaurus.associate("xyzzy") == []

    def test_expand_returns_clusters(self, thesaurus):
        clusters = thesaurus.expand(["sunset"], per_word=2)
        assert "rgb_1" in clusters

    def test_expand_duplicates_weight(self, thesaurus):
        # Two words both associated with rgb_2 -> appears twice.
        clusters = thesaurus.expand(["forest", "trees"], per_word=2)
        assert clusters.count("rgb_2") == 2

    def test_expand_empty_query(self, thesaurus):
        assert thesaurus.expand([]) == []

    def test_entries_sorted_by_score(self, thesaurus):
        entries = thesaurus.entries()
        scores = [e.score for e in entries]
        assert scores == sorted(scores, reverse=True)


class TestFeedbackAdaptation:
    def test_reinforce_strengthens(self, thesaurus):
        before = thesaurus.association_score("sunset", "gabor_0")
        thesaurus.reinforce("sunset", "gabor_0", 2.0)
        assert thesaurus.association_score("sunset", "gabor_0") == pytest.approx(
            2 * before
        )

    def test_weaken(self, thesaurus):
        before = thesaurus.association_score("sunset", "rgb_1")
        thesaurus.reinforce("sunset", "rgb_1", 0.5)
        assert thesaurus.association_score("sunset", "rgb_1") < before

    def test_reinforcement_compounds(self, thesaurus):
        thesaurus.reinforce("sunset", "rgb_1", 2.0)
        thesaurus.reinforce("sunset", "rgb_1", 3.0)
        assert thesaurus.adjustment("sunset", "rgb_1") == pytest.approx(6.0)

    def test_negative_factor_rejected(self, thesaurus):
        with pytest.raises(ValueError):
            thesaurus.reinforce("sunset", "rgb_1", -1.0)

    def test_reinforcement_changes_ranking(self, thesaurus):
        # Weaken the top association until another overtakes it.
        thesaurus.reinforce("sunset", "rgb_1", 0.01)
        top = thesaurus.associate("sunset", k=1)
        assert top[0].cluster != "rgb_1"

    def test_adjustment_does_not_leak_across_pairs(self, thesaurus):
        thesaurus.reinforce("sunset", "rgb_1", 5.0)
        assert thesaurus.adjustment("forest", "rgb_1") == 1.0
