"""ORB simulation, media server, data dictionary, daemons."""

import numpy as np
import pytest

from repro.daemons.daemon import (
    ClusteringDaemon,
    FeatureDaemon,
    SegmentationDaemon,
    ThesaurusDaemon,
)
from repro.daemons.dictionary import (
    DaemonRegistration,
    DataDictionary,
    DictionaryError,
)
from repro.daemons.mediaserver import MediaNotFound, MediaServer
from repro.daemons.orb import Orb, OrbError
from repro.multimedia.synth import generate_scene


class Echo:
    """Test servant."""

    def __init__(self):
        self.data = []

    def ping(self):
        return "pong"

    def push(self, items):
        self.data.append(items)
        return len(items)


class TestOrb:
    def test_register_and_resolve(self):
        orb = Orb()
        orb.register("echo", Echo())
        proxy = orb.resolve("echo")
        assert proxy.ping() == "pong"

    def test_duplicate_name_rejected(self):
        orb = Orb()
        orb.register("echo", Echo())
        with pytest.raises(OrbError):
            orb.register("echo", Echo())

    def test_empty_name_rejected(self):
        with pytest.raises(OrbError):
            Orb().register("", Echo())

    def test_resolve_unknown(self):
        with pytest.raises(OrbError, match="cannot resolve"):
            Orb().resolve("ghost")

    def test_unregister(self):
        orb = Orb()
        orb.register("echo", Echo())
        orb.unregister("echo")
        assert orb.names() == []
        with pytest.raises(OrbError):
            orb.unregister("echo")

    def test_unknown_method(self):
        orb = Orb()
        proxy = orb.register("echo", Echo())
        with pytest.raises(OrbError, match="no method"):
            proxy.teleport()

    def test_marshalling_isolates_mutable_state(self):
        orb = Orb()
        servant = Echo()
        proxy = orb.register("echo", servant)
        payload = [1, 2, 3]
        proxy.push(payload)
        payload.append(99)  # caller-side mutation must not reach servant
        assert servant.data[0] == [1, 2, 3]

    def test_result_is_copy(self):
        class Holder:
            def __init__(self):
                self.items = [1, 2]

            def get(self):
                return self.items

        orb = Orb()
        servant = Holder()
        proxy = orb.register("holder", servant)
        result = proxy.get()
        result.append(99)
        assert servant.items == [1, 2]

    def test_call_accounting(self):
        orb = Orb()
        proxy = orb.register("echo", Echo())
        proxy.ping()
        proxy.ping()
        assert orb.call_count() == 2
        assert orb.call_count("echo") == 2
        assert orb.call_count("other") == 0
        assert orb.traffic_bytes() > 0
        orb.reset_accounting()
        assert orb.call_count() == 0

    def test_proxy_private_attribute_error(self):
        orb = Orb()
        proxy = orb.register("echo", Echo())
        with pytest.raises(AttributeError):
            proxy._secret


class TestMediaServer:
    def test_put_get(self):
        server = MediaServer()
        server.put("http://x/1", b"bytes")
        assert server.get("http://x/1") == b"bytes"

    def test_missing_url(self):
        with pytest.raises(MediaNotFound):
            MediaServer().get("http://ghost")

    def test_empty_url_rejected(self):
        with pytest.raises(ValueError):
            MediaServer().put("", b"x")

    def test_overwrite(self):
        server = MediaServer()
        server.put("u", b"a")
        server.put("u", b"b")
        assert server.get("u") == b"b"

    def test_counters(self):
        server = MediaServer()
        server.put("u", b"a")
        server.get("u")
        assert server.put_count == 1 and server.get_count == 1

    def test_image_roundtrip(self):
        server = MediaServer()
        image = generate_scene("ocean", rng=np.random.default_rng(0))
        server.put_image("u", image)
        assert server.get_image("u") == image

    def test_urls_and_len(self):
        server = MediaServer()
        server.put("b", b"1")
        server.put("a", b"2")
        assert server.urls() == ["a", "b"]
        assert len(server) == 2
        assert server.exists("a") and not server.exists("c")


class TestDataDictionary:
    def test_define_and_schema(self):
        dictionary = DataDictionary()
        name = dictionary.define("define X as SET<Atomic<int>>;")
        assert name == "X"
        assert dictionary.has_schema("X")
        assert dictionary.schema("X").render() == "SET<Atomic<int>>"

    def test_unknown_schema(self):
        with pytest.raises(DictionaryError):
            DataDictionary().schema("ghost")

    def test_ddl_roundtrip(self):
        dictionary = DataDictionary()
        dictionary.define("define X as SET<Atomic<int>>;")
        dictionary.define("define Y as SET<Atomic<str>>;")
        text = dictionary.ddl()
        fresh = DataDictionary()
        for line in text.splitlines():
            fresh.define(line)
        assert fresh.schemas().keys() == dictionary.schemas().keys()

    def test_daemon_registration(self):
        dictionary = DataDictionary()
        registration = DaemonRegistration("seg", "segmentation", "segments", "seg")
        dictionary.register_daemon(registration)
        assert dictionary.daemon("seg").kind == "segmentation"
        with pytest.raises(DictionaryError):
            dictionary.register_daemon(registration)

    def test_daemons_filter_by_kind(self):
        dictionary = DataDictionary()
        dictionary.register_daemon(
            DaemonRegistration("a", "feature", "rgb", "a")
        )
        dictionary.register_daemon(
            DaemonRegistration("b", "segmentation", "boxes", "b")
        )
        assert [d.name for d in dictionary.daemons("feature")] == ["a"]
        assert len(dictionary.daemons()) == 2


class TestDaemons:
    def test_attach_registers_everywhere(self):
        orb = Orb()
        dictionary = DataDictionary()
        daemon = ThesaurusDaemon()
        proxy = daemon.attach(orb, dictionary)
        assert "thesaurus" in orb.names()
        assert dictionary.daemon("thesaurus").kind == "thesaurus"
        assert proxy.status()["name"] == "thesaurus"

    def test_segmentation_via_media_server(self):
        server = MediaServer()
        image = generate_scene("forest", rng=np.random.default_rng(0))
        server.put_image("u", image)
        daemon = SegmentationDaemon(media=server, rows=2, cols=2)
        boxes = daemon.segment_url("u")
        assert len(boxes) == 4

    def test_segmentation_without_media_fails(self):
        with pytest.raises(RuntimeError):
            SegmentationDaemon().segment_url("u")

    def test_segmentation_method_validated(self):
        with pytest.raises(ValueError):
            SegmentationDaemon(method="magic")

    def test_feature_daemon_unknown_extractor(self):
        with pytest.raises(KeyError):
            FeatureDaemon("sift")

    def test_feature_extraction_on_segments(self):
        server = MediaServer()
        image = generate_scene("desert", rng=np.random.default_rng(0))
        server.put_image("u", image)
        daemon = FeatureDaemon("rgb", media=server)
        matrix = daemon.extract_url("u", [(0, 0, 32, 32), (32, 32, 64, 64)])
        assert matrix.shape == (2, 64)

    def test_clustering_daemon_autoclass(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [rng.normal(0, 1, (20, 3)), rng.normal(8, 1, (20, 3))]
        )
        model = ClusteringDaemon(max_classes=4, seed=0).cluster(data)
        assert model.n_classes >= 2

    def test_clustering_daemon_kmeans(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, (30, 2))
        model = ClusteringDaemon(algorithm="kmeans", max_classes=3).cluster(data)
        assert model.n_classes == 3

    def test_clustering_bad_algorithm(self):
        with pytest.raises(ValueError):
            ClusteringDaemon(algorithm="magic")

    def test_thesaurus_daemon_lifecycle(self):
        daemon = ThesaurusDaemon()
        with pytest.raises(RuntimeError):
            daemon.formulate(["sunset"])
        daemon.build([(["sunset"], ["rgb_1"]), (["forest"], ["rgb_2"])])
        clusters = daemon.formulate(["sunset"])
        assert "rgb_1" in clusters
        daemon.reinforce("sunset", "rgb_1", 2.0)

    def test_processed_counters(self):
        daemon = FeatureDaemon("rgb")
        image = generate_scene("ocean", rng=np.random.default_rng(0))
        daemon.extract(image)
        daemon.extract(image)
        assert daemon.processed == 2


class TestOrbConcurrency:
    """The ORB's registry and call accounting under concurrent use
    (the query service registers/unregisters daemons while sessions
    invoke them)."""

    def test_concurrent_invocations_account_every_call(self):
        import threading

        orb = Orb()
        orb.register("echo", Echo())
        n_threads, n_calls = 8, 50
        errors = []

        def worker():
            try:
                for _ in range(n_calls):
                    assert orb.invoke("echo", "ping", (), {}) == "pong"
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:3]
        assert orb.call_count("echo") == n_threads * n_calls

    def test_concurrent_register_unregister_resolve(self):
        import threading

        orb = Orb()
        orb.register("stable", Echo())
        stop = threading.Event()
        errors = []

        def churn(k: int):
            name = f"flicker{k}"
            while not stop.is_set():
                try:
                    orb.register(name, Echo())
                    orb.unregister(name)
                except OrbError:
                    pass
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    stop.set()

        def caller():
            while not stop.is_set():
                try:
                    orb.invoke("stable", "ping", (), {})
                    orb.names()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    stop.set()

        threads = [
            threading.Thread(target=churn, args=(k,)) for k in range(2)
        ] + [threading.Thread(target=caller) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert not errors, errors[:3]
        assert "stable" in orb.names()
