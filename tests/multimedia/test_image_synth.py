"""Image type, PPM I/O, scene generation, web robot."""

import numpy as np
import pytest

from repro.multimedia.image import Image
from repro.multimedia.synth import (
    SCENE_CLASSES,
    annotate_scene,
    class_names,
    generate_scene,
)
from repro.multimedia.webrobot import WebRobot


class TestImage:
    def _img(self):
        rng = np.random.default_rng(0)
        return Image(rng.integers(0, 255, size=(16, 24, 3), dtype=np.uint8))

    def test_shape(self):
        img = self._img()
        assert img.height == 16 and img.width == 24
        assert img.shape == (16, 24)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Image(np.zeros((4, 4)))

    def test_float_input_clipped(self):
        img = Image(np.full((2, 2, 3), 300.0))
        assert img.pixels.max() == 255

    def test_crop(self):
        img = self._img()
        crop = img.crop(2, 3, 10, 13)
        assert crop.shape == (8, 10)
        assert np.array_equal(crop.pixels, img.pixels[2:10, 3:13])

    def test_crop_bounds_checked(self):
        with pytest.raises(ValueError):
            self._img().crop(0, 0, 99, 99)

    def test_grayscale_range(self):
        gray = self._img().grayscale()
        assert gray.shape == (16, 24)
        assert gray.min() >= 0 and gray.max() <= 255

    def test_mean_color(self):
        img = Image(np.full((4, 4, 3), 100, dtype=np.uint8))
        assert np.allclose(img.mean_color(), [100, 100, 100])

    def test_ppm_roundtrip(self):
        img = self._img()
        assert Image.from_ppm(img.to_ppm()) == img

    def test_ppm_with_comment(self):
        img = Image(np.zeros((2, 2, 3), dtype=np.uint8))
        data = img.to_ppm()
        commented = data.replace(b"P6\n", b"P6\n# a comment\n", 1)
        assert Image.from_ppm(commented) == img

    def test_ppm_bad_magic(self):
        with pytest.raises(ValueError):
            Image.from_ppm(b"P3\n1 1\n255\n...")

    def test_ppm_truncated(self):
        img = self._img()
        with pytest.raises(ValueError, match="truncated"):
            Image.from_ppm(img.to_ppm()[:-10])


class TestSceneGeneration:
    def test_all_classes_render(self):
        for name in class_names():
            img = generate_scene(name, rng=np.random.default_rng(1))
            assert img.shape == (64, 64)

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            generate_scene("volcano")

    def test_deterministic_with_seed(self):
        a = generate_scene("forest", rng=np.random.default_rng(5))
        b = generate_scene("forest", rng=np.random.default_rng(5))
        assert a == b

    def test_custom_size(self):
        img = generate_scene("ocean", rng=np.random.default_rng(1), size=(32, 48))
        assert img.shape == (32, 48)

    def test_classes_are_visually_distinct(self):
        rng = np.random.default_rng(2)
        sunset = generate_scene("sunset_beach", rng=rng)
        night = generate_scene("city_night", rng=rng)
        # Night scenes are much darker.
        assert night.grayscale().mean() < sunset.grayscale().mean() - 40

    def test_annotation_uses_class_vocabulary(self):
        text = annotate_scene("forest", np.random.default_rng(3))
        words = set(text.split())
        assert words & set(SCENE_CLASSES["forest"].vocabulary)


class TestWebRobot:
    def test_crawl_count(self):
        items = WebRobot(seed=1).crawl(10)
        assert len(items) == 10

    def test_urls_unique(self):
        items = WebRobot(seed=1).crawl(12)
        assert len({i.url for i in items}) == 12

    def test_classes_balanced_round_robin(self):
        robot = WebRobot(seed=1, classes=["forest", "ocean"])
        items = robot.crawl(6)
        assert [i.true_class for i in items] == [
            "forest", "ocean", "forest", "ocean", "forest", "ocean",
        ]

    def test_deterministic(self):
        a = WebRobot(seed=9).crawl(5)
        b = WebRobot(seed=9).crawl(5)
        assert all(x.image == y.image for x, y in zip(a, b))
        assert [x.annotation for x in a] == [y.annotation for y in b]

    def test_annotated_fraction_zero(self):
        items = WebRobot(seed=1, annotated_fraction=0.0).crawl(8)
        assert all(i.annotation is None for i in items)
        assert not any(i.annotated for i in items)

    def test_annotated_fraction_one(self):
        items = WebRobot(seed=1, annotated_fraction=1.0).crawl(8)
        assert all(i.annotated for i in items)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            WebRobot(annotated_fraction=1.5)

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            WebRobot(classes=["atlantis"])

    def test_stream_matches_crawl(self):
        robot = WebRobot(seed=4)
        assert [i.url for i in robot.stream(3)] == [
            i.url for i in robot.crawl(3)
        ]
