"""Segmentation and the six feature extractors."""

import numpy as np
import pytest

from repro.multimedia.features import FEATURE_EXTRACTORS
from repro.multimedia.features.color import hsv_histogram, rgb_histogram, rgb_to_hsv
from repro.multimedia.features.texture import (
    autocorrelation_features,
    gabor_features,
    gabor_kernel,
    glcm_features,
    glcm_matrix,
    laws_features,
)
from repro.multimedia.image import Image
from repro.multimedia.segmentation import grid_segment, region_merge_segment
from repro.multimedia.synth import generate_scene


@pytest.fixture
def scene():
    return generate_scene("sunset_beach", rng=np.random.default_rng(0))


class TestGridSegmentation:
    def test_cell_count(self, scene):
        assert len(grid_segment(scene, 2, 2)) == 4
        assert len(grid_segment(scene, 3, 4)) == 12

    def test_covers_whole_image(self, scene):
        segments = grid_segment(scene, 2, 2)
        assert sum(s.area for s in segments) == 64 * 64

    def test_bboxes_disjoint(self, scene):
        segments = grid_segment(scene, 2, 2)
        boxes = [s.bbox for s in segments]
        assert len(set(boxes)) == len(boxes)

    def test_single_cell(self, scene):
        segments = grid_segment(scene, 1, 1)
        assert len(segments) == 1
        assert segments[0].bbox == (0, 0, 64, 64)

    def test_invalid_grid(self, scene):
        with pytest.raises(ValueError):
            grid_segment(scene, 0, 2)

    def test_segment_pixels_match_bbox(self, scene):
        segment = grid_segment(scene, 2, 2)[0]
        top, left, bottom, right = segment.bbox
        assert segment.image.shape == (bottom - top, right - left)


class TestRegionMerge:
    def test_produces_segments(self, scene):
        segments = region_merge_segment(scene)
        assert len(segments) >= 2

    def test_uniform_image_one_region(self):
        img = Image(np.full((32, 32, 3), 128, dtype=np.uint8))
        segments = region_merge_segment(img)
        assert len(segments) == 1
        assert segments[0].bbox == (0, 0, 32, 32)

    def test_two_tone_image_two_regions(self):
        pixels = np.zeros((32, 32, 3), dtype=np.uint8)
        pixels[:, 16:] = 255
        segments = region_merge_segment(Image(pixels))
        assert len(segments) == 2

    def test_deterministic(self, scene):
        a = [s.bbox for s in region_merge_segment(scene)]
        b = [s.bbox for s in region_merge_segment(scene)]
        assert a == b


class TestColorFeatures:
    def test_rgb_histogram_sums_to_one(self, scene):
        hist = rgb_histogram(scene)
        assert hist.sum() == pytest.approx(1.0)
        assert len(hist) == 64

    def test_rgb_histogram_uniform_image(self):
        img = Image(np.zeros((8, 8, 3), dtype=np.uint8))
        hist = rgb_histogram(img, bins=2)
        assert hist[0] == 1.0

    def test_rgb_bins_validated(self, scene):
        with pytest.raises(ValueError):
            rgb_histogram(scene, bins=0)

    def test_hsv_histogram_sums_to_one(self, scene):
        hist = hsv_histogram(scene)
        assert hist.sum() == pytest.approx(1.0)
        assert len(hist) == 8 * 3 * 3

    def test_rgb_to_hsv_known_values(self):
        pixels = np.array(
            [[255, 0, 0], [0, 255, 0], [0, 0, 255], [255, 255, 255]],
            dtype=np.uint8,
        )
        hsv = rgb_to_hsv(pixels)
        assert hsv[0, 0] == pytest.approx(0.0)        # red hue
        assert hsv[1, 0] == pytest.approx(1 / 3)      # green hue
        assert hsv[2, 0] == pytest.approx(2 / 3)      # blue hue
        assert hsv[3, 1] == pytest.approx(0.0)        # white: no saturation
        assert np.all(hsv[:, 2] == 1.0)               # all full value

    def test_color_separates_scene_classes(self):
        rng = np.random.default_rng(1)
        sunset = rgb_histogram(generate_scene("sunset_beach", rng=rng))
        forest = rgb_histogram(generate_scene("forest", rng=rng))
        assert np.abs(sunset - forest).sum() > 0.5


class TestTextureFeatures:
    def test_gabor_kernel_zero_mean(self):
        kernel = gabor_kernel(0.2, 0.0)
        assert abs(kernel.mean()) < 1e-12

    def test_gabor_dimensionality(self, scene):
        features = gabor_features(scene)
        assert len(features) == 12  # 3 freq x 4 orientations

    def test_gabor_distinguishes_orientation(self):
        # Horizontal vs vertical gratings must differ in feature space.
        ys, xs = np.mgrid[0:32, 0:32]
        horizontal = Image(
            np.repeat(
                (127 + 120 * np.sin(ys * 1.2))[:, :, None], 3, axis=2
            )
        )
        vertical = Image(
            np.repeat(
                (127 + 120 * np.sin(xs * 1.2))[:, :, None], 3, axis=2
            )
        )
        fh = gabor_features(horizontal)
        fv = gabor_features(vertical)
        assert np.abs(fh - fv).sum() > 0.1

    def test_glcm_matrix_normalized(self, scene):
        matrix = glcm_matrix(scene.grayscale(), 8, (0, 1))
        assert matrix.sum() == pytest.approx(1.0)
        assert np.allclose(matrix, matrix.T)

    def test_glcm_feature_count(self, scene):
        assert len(glcm_features(scene)) == 20  # 5 stats x 4 offsets

    def test_glcm_uniform_image_max_energy(self):
        img = Image(np.full((16, 16, 3), 90, dtype=np.uint8))
        features = glcm_features(img, offsets=((0, 1),))
        contrast, energy = features[0], features[1]
        assert contrast == pytest.approx(0.0)
        assert energy == pytest.approx(1.0)

    def test_autocorrelation_range(self, scene):
        features = autocorrelation_features(scene)
        assert np.all(features <= 1.0 + 1e-9)
        assert np.all(features >= -1.0 - 1e-9)

    def test_autocorrelation_flat_image(self):
        img = Image(np.full((16, 16, 3), 50, dtype=np.uint8))
        assert np.allclose(autocorrelation_features(img), 0.0)

    def test_laws_feature_count(self, scene):
        assert len(laws_features(scene)) == 9

    def test_laws_unit_norm(self, scene):
        features = laws_features(scene)
        assert np.linalg.norm(features) == pytest.approx(1.0)

    def test_registry_complete(self):
        assert sorted(FEATURE_EXTRACTORS) == [
            "autocorr", "gabor", "glcm", "hsv", "laws", "rgb",
        ]

    def test_all_extractors_produce_finite_vectors(self, scene):
        for name, extractor in FEATURE_EXTRACTORS.items():
            vector = extractor(scene)
            assert np.all(np.isfinite(vector)), name
            assert vector.ndim == 1 and len(vector) > 0, name
