"""DigitalLibrary pipeline, relevance feedback, retrieval sessions."""

import pytest

from repro.core.feedback import RelevanceFeedback
from repro.core.library import DigitalLibrary
from repro.core.session import RetrievalSession
from repro.multimedia.webrobot import WebRobot


@pytest.fixture(scope="module")
def library():
    """A small but fully processed library (module-scoped: the daemon
    pipeline is the expensive part)."""
    robot = WebRobot(seed=7, annotated_fraction=0.8)
    lib = DigitalLibrary(max_classes=6, seed=3)
    lib.ingest(robot.crawl(24))
    lib.summary = lib.run_daemons()
    return lib


class TestPipeline:
    def test_summary_counts(self, library):
        assert library.summary["images"] == 24
        assert library.summary["segments"] == 96  # 2x2 grid
        assert library.summary["feature_spaces"] == 6
        assert library.summary["visual_words"] > 6
        assert library.summary["thesaurus_associations"] > 0

    def test_all_calls_went_through_orb(self, library):
        assert library.summary["orb_calls"] > 24  # at least one per image

    def test_media_server_holds_all_images(self, library):
        assert len(library.media) == 24

    def test_schemas_registered(self, library):
        assert "ImageLibrary" in library.mirror.collections()
        assert "ImageLibraryInternal" in library.mirror.collections()
        assert library.dictionary.has_schema("ImageLibraryInternal")

    def test_internal_schema_is_contrep(self, library):
        ty = library.mirror.collection_type("ImageLibraryInternal")
        assert ty.element.field_type("image").render() == "CONTREP<Image>"

    def test_every_image_has_visual_words(self, library):
        for tokens in library.image_tokens:
            assert len(tokens) == 24  # 4 segments x 6 spaces

    def test_tokens_for_url(self, library):
        url = library.items[0].url
        assert library.tokens_for(url) == library.image_tokens[0]
        with pytest.raises(KeyError):
            library.tokens_for("http://ghost")

    def test_run_daemons_requires_ingest(self):
        with pytest.raises(RuntimeError):
            DigitalLibrary().run_daemons()


class TestQuerying:
    def test_text_query_finds_class(self, library):
        results = library.query_text("sunset beach waves", k=6)
        assert results
        top_classes = [r.true_class for r in results[:2]]
        assert "sunset_beach" in top_classes

    def test_formulate_produces_clusters(self, library):
        clusters = library.formulate("sunset beach")
        assert clusters
        assert all("_" in c for c in clusters)

    def test_content_query_groups_class(self, library):
        results = library.query_content("sunset beach", k=4)
        assert results
        hits = sum(1 for r in results if r.true_class == "sunset_beach")
        assert hits >= 2

    def test_content_query_unknown_words(self, library):
        assert library.query_content("xyzzy plugh", k=5) == []

    def test_combined_query(self, library):
        results = library.query_combined("green forest", k=4)
        assert results
        assert results[0].true_class == "forest"

    def test_scores_sorted_descending(self, library):
        results = library.query_text("sunset", k=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)


class TestFeedback:
    def test_update_query_adds_relevant_tokens(self, library):
        feedback = RelevanceFeedback(library)
        relevant = [
            i.url for i in library.items if i.true_class == "forest"
        ][:2]
        update = feedback.update_query([], relevant, [])
        assert update.added
        assert set(update.added) <= set(
            t for url in relevant for t in library.tokens_for(url)
        )

    def test_update_query_drops_negative_tokens(self, library):
        feedback = RelevanceFeedback(library)
        relevant = [library.items[0].url]
        nonrelevant = [library.items[1].url]
        bad_token = library.tokens_for(nonrelevant[0])[0]
        query = [bad_token]
        update = feedback.update_query(query, relevant, nonrelevant)
        if bad_token not in set(library.tokens_for(relevant[0])):
            assert bad_token in update.removed

    def test_adapt_thesaurus_records_changes(self, library):
        feedback = RelevanceFeedback(library)
        url = library.items[0].url
        update = feedback.adapt_thesaurus("sunset", [url], [])
        assert update.reinforced

    def test_session_loop(self, library):
        session = RetrievalSession(library, k=6, adapt_thesaurus=False)
        initial = session.start("sunset beach")
        assert session.rounds[0].results == initial
        relevant = [
            r.url for r in initial if r.true_class == "sunset_beach"
        ]
        nonrelevant = [
            r.url for r in initial if r.true_class != "sunset_beach"
        ]
        session.give_feedback(relevant, nonrelevant)
        assert len(session.rounds) == 2
        # Precision must not collapse after positive feedback.
        before = session.precision_at(4, "sunset_beach", 0)
        after = session.precision_at(4, "sunset_beach", 1)
        assert after >= before - 0.25

    def test_feedback_before_start_rejected(self, library):
        session = RetrievalSession(library)
        with pytest.raises(RuntimeError):
            session.give_feedback([], [])
