"""The section 5.2 intermediate schema, materialized by the pipeline."""

import pytest

from repro.core.library import DigitalLibrary, intermediate_ddl
from repro.moa.ddl import parse_define
from repro.multimedia.vectors import decode_vector
from repro.multimedia.webrobot import WebRobot


@pytest.fixture(scope="module")
def library():
    robot = WebRobot(seed=17, annotated_fraction=1.0)
    lib = DigitalLibrary(
        feature_spaces=("rgb", "gabor"), max_classes=4, seed=1
    )
    lib.ingest(robot.crawl(8))
    lib.run_daemons(store_intermediate=True)
    return lib


class TestIntermediateDdl:
    def test_parses_with_paper_columns(self):
        name, ty = parse_define(
            " ".join(intermediate_ddl(["RGB", "Gabor"]).split())
        )
        assert name == "ImageLibraryIntermediate"
        segments = ty.element.field_type("image_segments")
        assert segments.element.field_names() == ["segment", "RGB", "Gabor"]


class TestMaterialization:
    def test_collection_registered(self, library):
        assert "ImageLibraryIntermediate" in library.mirror.collections()
        assert library.mirror.count("ImageLibraryIntermediate") == 8

    def test_segments_nested_per_image(self, library):
        rows = library.mirror.contents("ImageLibraryIntermediate")
        assert all(len(r["image_segments"]) == 4 for r in rows)  # 2x2 grid

    def test_vectors_decode_to_feature_dimensions(self, library):
        rows = library.mirror.contents("ImageLibraryIntermediate")
        segment = rows[0]["image_segments"][0]
        rgb = decode_vector(segment["rgb"])
        gabor = decode_vector(segment["gabor"])
        assert len(rgb) == 64   # 4^3 RGB histogram
        assert len(gabor) == 12  # 3 freq x 4 orientations

    def test_unnest_over_intermediate(self, library):
        rows = library.mirror.query(
            "unnest[image_segments](ImageLibraryIntermediate);"
        ).value
        assert len(rows) == 8 * 4
        assert {"segment", "rgb", "gabor", "source"} <= set(rows[0])

    def test_segment_count_query(self, library):
        counts = library.mirror.query(
            "map[count(THIS.image_segments)](ImageLibraryIntermediate);"
        ).value
        assert counts == [4] * 8

    def test_internal_schema_still_built(self, library):
        assert library.mirror.count("ImageLibraryInternal") == 8

    def test_not_stored_by_default(self):
        robot = WebRobot(seed=18, annotated_fraction=1.0)
        lib = DigitalLibrary(feature_spaces=("rgb",), max_classes=3, seed=1)
        lib.ingest(robot.crawl(4))
        lib.run_daemons()
        assert "ImageLibraryIntermediate" not in lib.mirror.collections()
