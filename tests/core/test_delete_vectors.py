"""MirrorDBMS.delete and the Atomic<Vector> encoding helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mirror import MirrorDBMS
from repro.multimedia.vectors import (
    decode_matrix,
    decode_vector,
    encode_matrix,
    encode_vector,
)


@pytest.fixture
def db():
    db = MirrorDBMS()
    db.define("define Rows as SET<TUPLE<Atomic<int>: n, Atomic<str>: tag>>;")
    db.insert(
        "Rows",
        [
            {"n": 1, "tag": "a"},
            {"n": 2, "tag": "b"},
            {"n": 3, "tag": "a"},
            {"n": 4, "tag": "c"},
        ],
    )
    return db


class TestDelete:
    def test_delete_by_predicate(self, db):
        removed = db.delete("Rows", "THIS.tag = 'a'")
        assert removed == 2
        assert [r["n"] for r in db.contents("Rows")] == [2, 4]

    def test_delete_numeric_predicate(self, db):
        removed = db.delete("Rows", "THIS.n > 2")
        assert removed == 2
        assert db.count("Rows") == 2

    def test_delete_nothing(self, db):
        assert db.delete("Rows", "THIS.n > 99") == 0
        assert db.count("Rows") == 4

    def test_delete_everything(self, db):
        assert db.delete("Rows", "THIS.n >= 1") == 4
        assert db.contents("Rows") == []

    def test_delete_compound_predicate(self, db):
        removed = db.delete("Rows", "THIS.tag = 'a' and THIS.n < 2")
        assert removed == 1
        assert [r["n"] for r in db.contents("Rows")] == [2, 3, 4]

    def test_delete_with_contrep_collection(self):
        db = MirrorDBMS()
        db.define(
            "define Docs as SET<TUPLE<Atomic<URL>: u, CONTREP<Text>: c>>;"
        )
        db.insert(
            "Docs",
            [{"u": "keep", "c": "red sunset"}, {"u": "drop", "c": "blue"}],
        )
        db.delete("Docs", "THIS.u = 'drop'")
        rows = db.contents("Docs")
        assert len(rows) == 1
        assert rows[0]["c"].terms == {"red": 1, "sunset": 1}
        # Stats recomputed over survivors only.
        assert db.stats("Docs", "c").document_count == 1


class TestVectorEncoding:
    def test_roundtrip(self):
        vector = np.array([0.1, -2.5, 3.0])
        assert np.array_equal(decode_vector(encode_vector(vector)), vector)

    def test_empty(self):
        assert len(decode_vector("")) == 0
        assert len(decode_vector(None)) == 0
        assert encode_vector([]) == ""

    def test_matrix_roundtrip(self):
        matrix = np.array([[1.0, 2.0], [3.5, -4.5]])
        assert np.array_equal(decode_matrix(encode_matrix(matrix)), matrix)

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            decode_matrix(["1.0 2.0", "3.0"])

    @given(
        st.lists(
            st.floats(
                allow_nan=False, allow_infinity=False, width=64,
                min_value=-1e100, max_value=1e100,
            ),
            max_size=16,
        )
    )
    def test_roundtrip_exact_for_float64(self, values):
        vector = np.asarray(values, dtype=np.float64)
        decoded = decode_vector(encode_vector(vector))
        assert np.array_equal(decoded, vector)

    def test_through_atomic_vector_attribute(self):
        db = MirrorDBMS()
        db.define(
            "define Segs as SET<TUPLE<Atomic<Image>: seg, "
            "Atomic<Vector>: RGB>>;"
        )
        matrix = np.array([[0.25, 0.75], [0.5, 0.5]])
        db.insert(
            "Segs",
            [
                {"seg": f"s{i}", "RGB": text}
                for i, text in enumerate(encode_matrix(matrix))
            ],
        )
        rows = db.query("Segs;").value
        restored = decode_matrix([r["RGB"] for r in rows])
        assert np.array_equal(restored, matrix)
