"""MirrorDBMS facade: DDL, loads, queries, stats, persistence."""

import pytest

from repro.core.mirror import MirrorDBMS
from repro.moa.errors import MoaTypeError

from tests.conftest import ANNOTATED_DOCS, SECTION3_QUERY


class TestDDL:
    def test_define_returns_names(self):
        db = MirrorDBMS()
        names = db.define(
            "define A as SET<Atomic<int>>; define B as SET<Atomic<str>>;"
        )
        assert names == ["A", "B"]
        assert db.collections() == ["A", "B"]

    def test_collection_type(self):
        db = MirrorDBMS()
        db.define("define A as SET<Atomic<int>>;")
        assert db.collection_type("A").render() == "SET<Atomic<int>>"

    def test_unknown_collection(self):
        with pytest.raises(MoaTypeError):
            MirrorDBMS().collection_type("ghost")

    def test_ddl_rendering(self, annotated_db):
        assert "TraditionalImgLib" in annotated_db.ddl()
        assert "CONTREP<Text>" in annotated_db.ddl()


class TestData:
    def test_insert_and_count(self, annotated_db):
        assert annotated_db.count("TraditionalImgLib") == len(ANNOTATED_DOCS)

    def test_insert_appends(self, annotated_db):
        annotated_db.insert(
            "TraditionalImgLib",
            [{"source": "http://img/99", "annotation": "extra doc"}],
        )
        assert annotated_db.count("TraditionalImgLib") == len(ANNOTATED_DOCS) + 1

    def test_replace(self, annotated_db):
        annotated_db.replace(
            "TraditionalImgLib",
            [{"source": "only", "annotation": "one"}],
        )
        assert annotated_db.count("TraditionalImgLib") == 1

    def test_contents_roundtrip(self, annotated_db):
        rows = annotated_db.contents("TraditionalImgLib")
        assert rows[0]["source"] == "http://img/1"

    def test_bat_names(self, annotated_db):
        names = annotated_db.bat_names("TraditionalImgLib")
        assert "TraditionalImgLib.annotation.owner" in names

    def test_insert_unknown_collection(self):
        # Mutations speak the unified vocabulary: an unknown target is
        # an UnknownMutationTarget (a MutationError), while plain reads
        # like collection_type keep raising MoaTypeError.
        from repro.monet.errors import UnknownMutationTarget

        with pytest.raises(UnknownMutationTarget):
            MirrorDBMS().insert("ghost", [])


class TestStats:
    def test_stats_shape(self, annotated_db):
        stats = annotated_db.stats("TraditionalImgLib", "annotation")
        assert stats.document_count == len(ANNOTATED_DOCS)
        assert stats.df("sunset") == 3  # docs 1, 3, 5

    def test_stats_follow_updates(self, annotated_db):
        annotated_db.insert(
            "TraditionalImgLib",
            [{"source": "new", "annotation": "sunset sunset"}],
        )
        stats = annotated_db.stats("TraditionalImgLib", "annotation")
        assert stats.df("sunset") == 4


class TestQueries:
    def test_paper_query(self, annotated_db, annotated_stats):
        result = annotated_db.query(
            SECTION3_QUERY, {"query": ["sunset", "sea"], "stats": annotated_stats}
        )
        assert len(result.value) == len(ANNOTATED_DOCS)
        assert result.value[0] > result.value[1]  # doc 1 matches, doc 2 not

    def test_query_plan_exposed(self, annotated_db, annotated_stats):
        result = annotated_db.query(
            SECTION3_QUERY, {"query": ["sunset"], "stats": annotated_stats}
        )
        assert "getBL" not in result.plan  # flattened away
        assert "{sum}" in result.plan  # pump aggregation present
        assert result.operator_counts

    def test_query_interpreted_matches(self, annotated_db, annotated_stats):
        params = {"query": ["beach"], "stats": annotated_stats}
        compiled = annotated_db.query(SECTION3_QUERY, params).value
        interpreted = annotated_db.query_interpreted(SECTION3_QUERY, params)
        for a, b in zip(compiled, interpreted):
            assert a == pytest.approx(b)

    def test_bad_param_binding(self, annotated_db):
        with pytest.raises(MoaTypeError):
            annotated_db.query(SECTION3_QUERY, {"query": object(), "stats": None})


class TestPersistence:
    def test_save_load_roundtrip(self, annotated_db, annotated_stats, tmp_path):
        annotated_db.save(tmp_path / "db")
        restored = MirrorDBMS.load(tmp_path / "db")
        assert restored.collections() == annotated_db.collections()
        assert restored.count("TraditionalImgLib") == len(ANNOTATED_DOCS)
        params = {"query": ["sunset"], "stats": annotated_stats}
        original = annotated_db.query(SECTION3_QUERY, params).value
        reloaded = restored.query(SECTION3_QUERY, params).value
        assert original == pytest.approx(reloaded)

    def test_schema_file_written(self, annotated_db, tmp_path):
        annotated_db.save(tmp_path / "db")
        text = (tmp_path / "db" / "schema.ddl").read_text()
        assert "define TraditionalImgLib" in text
