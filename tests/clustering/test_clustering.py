"""k-means, the AutoClass substitute, and cluster vocabularies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.assignments import (
    ClusterVocabulary,
    document_tokens,
    vocabulary_size,
)
from repro.clustering.autoclass import AutoClass
from repro.clustering.kmeans import KMeans


def _blobs(seed=0, per_blob=30, centers=((0, 0), (10, 10), (-10, 10))):
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(loc=center, scale=0.8, size=(per_blob, 2))
        for center in centers
    ]
    labels = np.repeat(np.arange(len(centers)), per_blob)
    return np.vstack(parts), labels


def _purity(pred, truth):
    total = 0
    for cluster in np.unique(pred):
        members = truth[pred == cluster]
        total += np.bincount(members).max()
    return total / len(truth)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        data, truth = _blobs()
        result = KMeans(3, seed=1).fit(data)
        assert _purity(result.labels, truth) == 1.0

    def test_k_greater_than_n_clamped(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = KMeans(10, seed=0).fit(data)
        assert len(result.centers) == 2

    def test_predict_consistent_with_fit(self):
        data, _ = _blobs()
        result = KMeans(3, seed=1).fit(data)
        assert np.array_equal(result.predict(data), result.labels)

    def test_inertia_decreases_with_more_clusters(self):
        data, _ = _blobs()
        one = KMeans(1, seed=0).fit(data).inertia
        three = KMeans(3, seed=0).fit(data).inertia
        assert three < one

    def test_deterministic_with_seed(self):
        data, _ = _blobs()
        a = KMeans(3, seed=5).fit(data)
        b = KMeans(3, seed=5).fit(data)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_invalid_data_shape(self):
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(5))

    def test_n_classes_property(self):
        data, _ = _blobs()
        assert KMeans(3, seed=0).fit(data).n_classes == 3

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_labels_in_range(self, k):
        data, _ = _blobs(seed=2)
        result = KMeans(k, seed=0).fit(data)
        assert result.labels.min() >= 0
        assert result.labels.max() < k


class TestAutoClass:
    def test_recovers_separated_blobs(self):
        data, truth = _blobs()
        model = AutoClass(2, 5, seed=1).fit(data)
        assert _purity(model.predict(data), truth) >= 0.95

    def test_model_selection_finds_three(self):
        data, _ = _blobs(per_blob=50)
        model = AutoClass(2, 6, seed=1).fit(data)
        assert model.n_classes == 3

    def test_fixed_k(self):
        data, _ = _blobs()
        model = AutoClass(seed=0).fit_fixed(data, 4)
        assert model.n_classes == 4

    def test_weights_sum_to_one(self):
        data, _ = _blobs()
        model = AutoClass(2, 4, seed=0).fit(data)
        assert model.weights.sum() == pytest.approx(1.0)

    def test_log_likelihood_improves_with_iterations(self):
        data, _ = _blobs()
        short = AutoClass(max_iterations=1, seed=0).fit_fixed(data, 3)
        long_ = AutoClass(max_iterations=50, seed=0).fit_fixed(data, 3)
        assert long_.log_likelihood >= short.log_likelihood - 1e-6

    def test_responsibilities_normalized(self):
        data, _ = _blobs()
        model = AutoClass(2, 4, seed=0).fit(data)
        resp = np.exp(model.log_responsibilities(data))
        assert np.allclose(resp.sum(axis=1), 1.0)

    def test_score_is_finite(self):
        data, _ = _blobs()
        model = AutoClass(2, 4, seed=0).fit(data)
        assert np.isfinite(model.score(data))

    def test_variance_floor_prevents_collapse(self):
        # Duplicate points would give zero variance without the floor.
        data = np.vstack([np.zeros((20, 2)), np.ones((20, 2))])
        model = AutoClass(2, 3, seed=0).fit(data)
        assert np.all(model.variances >= 1e-4 - 1e-12)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            AutoClass().fit(np.zeros((0, 2)))

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            AutoClass(5, 2)

    def test_deterministic(self):
        data, _ = _blobs()
        a = AutoClass(2, 4, seed=7).fit(data)
        b = AutoClass(2, 4, seed=7).fit(data)
        assert np.array_equal(a.predict(data), b.predict(data))


class TestClusterVocabulary:
    def test_tokens_format(self):
        data, _ = _blobs()
        model = KMeans(3, seed=0).fit(data)
        vocabulary = ClusterVocabulary("gabor", model)
        tokens = vocabulary.tokens(data[:5])
        assert all(t.startswith("gabor_") for t in tokens)

    def test_token_label(self):
        data, _ = _blobs()
        model = KMeans(2, seed=0).fit(data)
        assert ClusterVocabulary("rgb", model).token(3) == "rgb_3"

    def test_document_tokens_combines_spaces(self):
        data, _ = _blobs()
        m1 = KMeans(2, seed=0).fit(data)
        m2 = KMeans(3, seed=0).fit(data)
        vocabularies = [
            ClusterVocabulary("rgb", m1),
            ClusterVocabulary("gabor", m2),
        ]
        tokens = document_tokens(
            vocabularies, {"rgb": data[:2], "gabor": data[:3]}
        )
        assert len(tokens) == 5
        assert any(t.startswith("rgb_") for t in tokens)
        assert any(t.startswith("gabor_") for t in tokens)

    def test_document_tokens_missing_space_skipped(self):
        data, _ = _blobs()
        model = KMeans(2, seed=0).fit(data)
        vocabularies = [ClusterVocabulary("rgb", model)]
        assert document_tokens(vocabularies, {}) == []

    def test_vocabulary_size(self):
        data, _ = _blobs()
        vocabularies = [
            ClusterVocabulary("a", KMeans(2, seed=0).fit(data)),
            ClusterVocabulary("b", KMeans(3, seed=0).fit(data)),
        ]
        assert vocabulary_size(vocabularies) == 5
