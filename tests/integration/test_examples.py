"""Every example script must run cleanly (they are documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"


def test_quickstart_shows_plan_and_scores():
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=120,
    )
    assert "MIL plan" in completed.stdout
    assert "http://img/1" in completed.stdout


def test_demo_reports_precision():
    script = next(p for p in EXAMPLES if p.stem == "image_retrieval_demo")
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300,
    )
    assert "precision@4 per round" in completed.stdout
