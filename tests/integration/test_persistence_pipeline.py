"""Persistence across the full pipeline: a processed library's
metadata database survives save/load and answers the same queries."""

import pytest

from repro.core.library import CONTENT_QUERY, DigitalLibrary
from repro.core.mirror import MirrorDBMS
from repro.multimedia.webrobot import WebRobot


@pytest.fixture(scope="module")
def processed(tmp_path_factory):
    robot = WebRobot(seed=41, annotated_fraction=1.0)
    library = DigitalLibrary(
        feature_spaces=("rgb", "gabor"), max_classes=4, seed=1
    )
    library.ingest(robot.crawl(10))
    library.run_daemons(store_intermediate=True)
    directory = tmp_path_factory.mktemp("mirrordb")
    library.mirror.save(directory)
    return library, directory


class TestReload:
    def test_collections_survive(self, processed):
        library, directory = processed
        restored = MirrorDBMS.load(directory)
        assert set(restored.collections()) == set(library.mirror.collections())
        assert restored.count("ImageLibraryInternal") == 10
        assert restored.count("ImageLibraryIntermediate") == 10

    def test_content_query_identical_after_reload(self, processed):
        library, directory = processed
        restored = MirrorDBMS.load(directory)
        clusters = library.formulate("sunset beach")
        if not clusters:
            pytest.skip("thesaurus produced no clusters for this seed")
        stats_before = library.mirror.stats("ImageLibraryInternal", "image")
        stats_after = restored.stats("ImageLibraryInternal", "image")
        params_before = {"query": clusters, "stats": stats_before}
        params_after = {"query": clusters, "stats": stats_after}
        before = library.mirror.query(CONTENT_QUERY, params_before).value
        after = restored.query(CONTENT_QUERY, params_after).value
        assert len(before) == len(after)
        for a, b in zip(before, after):
            assert a["source"] == b["source"]
            assert a["score"] == pytest.approx(b["score"])

    def test_stats_identical_after_reload(self, processed):
        library, directory = processed
        restored = MirrorDBMS.load(directory)
        before = library.mirror.stats("ImageLibraryInternal", "annotation")
        after = restored.stats("ImageLibraryInternal", "annotation")
        assert before.document_frequency == after.document_frequency
        assert before.average_document_length == pytest.approx(
            after.average_document_length
        )

    def test_intermediate_vectors_survive(self, processed):
        library, directory = processed
        restored = MirrorDBMS.load(directory)
        from repro.multimedia.vectors import decode_vector

        rows = restored.contents("ImageLibraryIntermediate")
        vector = decode_vector(rows[0]["image_segments"][0]["rgb"])
        assert len(vector) == 64

    def test_reloaded_db_accepts_updates(self, processed):
        _, directory = processed
        restored = MirrorDBMS.load(directory)
        restored.insert(
            "ImageLibraryInternal",
            [{"source": "new", "annotation": "fresh sunset", "image": ["rgb_0"]}],
        )
        assert restored.count("ImageLibraryInternal") == 11
        removed = restored.delete("ImageLibraryInternal", "THIS.source = 'new'")
        assert removed == 1
