"""The paper's artifacts, verbatim: schemas, queries, architecture.

Every schema and query string below is copied from the paper (sections
3 and 5.2) modulo whitespace; these tests are the reproduction's
ground truth.
"""


from repro.core.library import IMAGE_LIBRARY_DDL, IMAGE_LIBRARY_INTERNAL_DDL, DigitalLibrary
from repro.core.mirror import MirrorDBMS
from repro.multimedia.webrobot import WebRobot

#: Section 3, verbatim.
SECTION3_DDL = """
define TraditionalImgLib as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation
  >>;
"""

SECTION3_QUERY = """
map[sum(THIS)] (
  map[getBL(THIS.annotation,
            query, stats)] ( TraditionalImgLib ));
"""

#: Section 5.2 intermediate schema (image_segments), verbatim in shape.
INTERMEDIATE_DDL = """
define ImageLibraryIntermediate as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation,
    SET<
      TUPLE<
        Atomic<Image>: segment,
        Atomic<Vector>: RGB,
        Atomic<Vector>: Gabor
      >
    >: image_segments
  >>;
"""

SECTION5_QUERY = """
map[sum(THIS)] (
  map[getBL(THIS.image,
            query, stats)] ( ImageLibraryInternal ));
"""


class TestSection3:
    def test_schema_parses(self):
        db = MirrorDBMS()
        assert db.define(SECTION3_DDL) == ["TraditionalImgLib"]

    def test_ranking_query_runs(self, annotated_db, annotated_stats):
        result = annotated_db.query(
            SECTION3_QUERY,
            {"query": ["sunset", "sea"], "stats": annotated_stats},
        )
        scores = result.value
        assert len(scores) == annotated_db.count("TraditionalImgLib")
        # Doc 1 mentions both sunset and sea; doc 4 mentions neither.
        assert scores[0] > 0 and scores[3] == 0.0

    def test_query_composes_with_select(self, annotated_db, annotated_stats):
        # "these query expressions can be combined with 'normal'
        # relational operators (such as select or join)" -- section 3.
        combined = (
            "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)]("
            "select[THIS.source != 'http://img/1'](TraditionalImgLib)));"
        )
        scores = annotated_db.query(
            combined, {"query": ["sunset"], "stats": annotated_stats}
        ).value
        assert len(scores) == annotated_db.count("TraditionalImgLib") - 1

    def test_query_composes_with_join(self, annotated_stats, annotated_db):
        annotated_db.define(
            "define Ratings as SET<TUPLE<Atomic<URL>: url, "
            "Atomic<int>: stars>>;"
        )
        annotated_db.insert(
            "Ratings",
            [
                {"url": "http://img/1", "stars": 5},
                {"url": "http://img/3", "stars": 2},
            ],
        )
        query = (
            "join[THIS1.src = THIS2.url]("
            "map[tuple(src = THIS.source, "
            "score = sum(getBL(THIS.annotation, query, stats)))]"
            "(TraditionalImgLib), Ratings);"
        )
        rows = annotated_db.query(
            query, {"query": ["sunset"], "stats": annotated_stats}
        ).value
        assert {r["url"] for r in rows} == {"http://img/1", "http://img/3"}
        assert all("score" in r and "stars" in r for r in rows)


class TestSection5Schemas:
    def test_external_schema(self):
        db = MirrorDBMS()
        assert db.define(IMAGE_LIBRARY_DDL) == ["ImageLibrary"]
        ty = db.collection_type("ImageLibrary")
        assert ty.element.field_names() == ["source", "annotation", "image"]

    def test_intermediate_schema_with_nested_segments(self):
        db = MirrorDBMS()
        db.define(INTERMEDIATE_DDL)
        ty = db.collection_type("ImageLibraryIntermediate")
        segments = ty.element.field_type("image_segments")
        assert segments.element.field_names() == ["segment", "RGB", "Gabor"]

    def test_intermediate_schema_loads_and_unnests(self):
        db = MirrorDBMS()
        db.define(INTERMEDIATE_DDL)
        db.insert(
            "ImageLibraryIntermediate",
            [
                {
                    "source": "u1",
                    "annotation": "a sunset",
                    "image_segments": [
                        {"segment": "u1#0", "RGB": "0.1 0.9", "Gabor": "0.4"},
                        {"segment": "u1#1", "RGB": "0.8 0.2", "Gabor": "0.6"},
                    ],
                },
            ],
        )
        rows = db.query("unnest[image_segments](ImageLibraryIntermediate);").value
        assert len(rows) == 2
        assert rows[0]["segment"] == "u1#0"

    def test_internal_schema(self):
        db = MirrorDBMS()
        assert db.define(IMAGE_LIBRARY_INTERNAL_DDL) == ["ImageLibraryInternal"]
        ty = db.collection_type("ImageLibraryInternal")
        assert ty.element.field_type("image").render() == "CONTREP<Image>"


class TestSection5Query:
    def test_content_ranking_with_cluster_words(self):
        db = MirrorDBMS()
        db.define(IMAGE_LIBRARY_INTERNAL_DDL)
        db.insert(
            "ImageLibraryInternal",
            [
                {
                    "source": "u1",
                    "annotation": "red sunset",
                    "image": ["rgb_1", "rgb_1", "gabor_21"],
                },
                {
                    "source": "u2",
                    "annotation": "green forest",
                    "image": ["rgb_2", "gabor_3"],
                },
            ],
        )
        stats = db.stats("ImageLibraryInternal", "image")
        scores = db.query(
            SECTION5_QUERY, {"query": ["gabor_21", "rgb_1"], "stats": stats}
        ).value
        assert scores[0] > scores[1] == 0.0


class TestFigure1:
    """The distributed architecture: every box of Figure 1 is present
    and exercised through the ORB."""

    def test_federation_components(self):
        robot = WebRobot(seed=1, annotated_fraction=1.0)
        library = DigitalLibrary(max_classes=4, seed=0)
        library.ingest(robot.crawl(12))
        summary = library.run_daemons()
        # Daemons of every kind registered in the data dictionary.
        kinds = {d.kind for d in library.dictionary.daemons()}
        assert kinds == {"segmentation", "feature", "clustering", "thesaurus"}
        # The media server held the raw media...
        assert len(library.media) == 12
        # ... and was actually consulted by the daemons.
        assert library.media.get_count > 0
        # All daemon work went through ORB invocations.
        assert summary["orb_calls"] > 0
        names = library.orb.names()
        assert "segmenter" in names and "thesaurus" in names
        # Metadata database holds the content representations.
        assert library.mirror.count("ImageLibraryInternal") == 12

    def test_query_formulation_through_daemon(self):
        robot = WebRobot(seed=2, annotated_fraction=1.0)
        library = DigitalLibrary(max_classes=4, seed=0)
        library.ingest(robot.crawl(12))
        library.run_daemons()
        before = library.orb.call_count("thesaurus")
        library.formulate("sunset beach")
        assert library.orb.call_count("thesaurus") == before + 1
