"""Porter stemmer and the text analysis pipeline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.porter import stem
from repro.ir.tokenize import analyze, analyze_terms, tokenize


class TestPorterClassics:
    """Examples from Porter's paper and the reference vocabulary."""

    CASES = [
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        ("happy", "happi"),
        ("sky", "sky"),
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("hesitanci", "hesit"),
        ("digitizer", "digit"),
        ("conformabli", "conform"),
        ("radicalli", "radic"),
        ("differentli", "differ"),
        ("vileli", "vile"),
        ("analogousli", "analog"),
        ("vietnamization", "vietnam"),
        ("predication", "predic"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formaliti", "formal"),
        ("sensitiviti", "sensit"),
        ("sensibiliti", "sensibl"),
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electriciti", "electr"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("homologou", "homolog"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angulariti", "angular"),
        ("homologous", "homolog"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controll", "control"),
        ("roll", "roll"),
    ]

    @pytest.mark.parametrize("word,expected", CASES)
    def test_case(self, word, expected):
        assert stem(word) == expected

    def test_short_words_untouched(self):
        assert stem("a") == "a"
        assert stem("is") == "is"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_never_longer_and_never_empty(self, word):
        result = stem(word)
        assert 0 < len(result) <= len(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=12))
    def test_idempotent_on_own_output_prefix_stability(self, word):
        # Stemming the stem may shrink further, but must stay non-empty
        # and deterministic.
        once = stem(word)
        assert stem(word) == once


class TestTokenize:
    def test_lowercase_split(self):
        assert tokenize("Red SUNSET, over. the Sea!") == [
            "red", "sunset", "over", "the", "sea",
        ]

    def test_keeps_cluster_labels(self):
        assert tokenize("gabor_21 rgb_3") == ["gabor_21", "rgb_3"]

    def test_empty(self):
        assert tokenize("") == []

    def test_numbers_kept(self):
        assert tokenize("route 66") == ["route", "66"]


class TestAnalyze:
    def test_stopwords_removed(self):
        assert analyze("the sunset over the sea") == ["sunset", "sea"]

    def test_stemming_applied(self):
        assert analyze("waves crashing") == ["wave", "crash"]

    def test_cluster_labels_not_stemmed(self):
        assert analyze("gabor_21 clusters") == ["gabor_21", "cluster"]

    def test_custom_stopwords(self):
        assert analyze("red sunset", stopwords={"red"}) == ["sunset"]

    def test_stemming_can_be_disabled(self):
        assert analyze("waves", stemming=False) == ["waves"]

    def test_analyze_terms(self):
        assert analyze_terms(["Waves", "the"]) == ["wave"]

    def test_stopword_after_stemming_dropped(self):
        # "doing" stems to "do" which is a stopword... check pipeline
        # keeps non-stopword stems.
        result = analyze("running does")
        assert "run" in result
