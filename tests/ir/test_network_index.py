"""Inference network, inverted index, operators, query parsing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import operators
from repro.ir.index import InvertedIndex
from repro.ir.network import (
    InferenceNetwork,
    QueryNode,
    and_node,
    max_node,
    not_node,
    or_node,
    sum_node,
    term,
    wsum,
)
from repro.ir.queries import QueryParseError, parse_structured_query

DOCS = [
    {"sunset": 2, "sea": 1},
    {"forest": 1, "green": 2},
    {"sunset": 1, "beach": 2, "sea": 1},
    {"city": 1, "night": 1},
]


@pytest.fixture
def index():
    return InvertedIndex(DOCS)


@pytest.fixture
def network(index):
    return InferenceNetwork(index)


class TestOperators:
    def test_sum_is_mean(self):
        assert operators.combine_sum([0.4, 0.8]) == pytest.approx(0.6)

    def test_sum_empty(self):
        assert operators.combine_sum([]) == 0.0

    def test_wsum(self):
        assert operators.combine_wsum([1.0, 0.0], [3, 1]) == pytest.approx(0.75)

    def test_wsum_mismatched(self):
        with pytest.raises(ValueError):
            operators.combine_wsum([1.0], [1, 2])

    def test_and_is_product(self):
        assert operators.combine_and([0.5, 0.5]) == pytest.approx(0.25)

    def test_or_noisy(self):
        assert operators.combine_or([0.5, 0.5]) == pytest.approx(0.75)

    def test_not(self):
        assert operators.combine_not(0.3) == pytest.approx(0.7)

    def test_max(self):
        assert operators.combine_max([0.2, 0.9, 0.5]) == 0.9

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=8))
    def test_all_operators_stay_in_unit_interval(self, beliefs):
        for combine in (
            operators.combine_sum,
            operators.combine_and,
            operators.combine_or,
            operators.combine_max,
        ):
            assert 0.0 <= combine(beliefs) <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=5))
    def test_array_versions_match_scalar(self, beliefs):
        arrays = [np.array([b]) for b in beliefs]
        assert operators.array_sum(arrays)[0] == pytest.approx(
            operators.combine_sum(beliefs)
        )
        assert operators.array_and(arrays)[0] == pytest.approx(
            operators.combine_and(beliefs)
        )
        assert operators.array_or(arrays)[0] == pytest.approx(
            operators.combine_or(beliefs)
        )
        assert operators.array_max(arrays)[0] == pytest.approx(
            operators.combine_max(beliefs)
        )


class TestInvertedIndex:
    def test_counts(self, index):
        assert index.document_count == 4
        assert index.posting_count == sum(len(d) for d in DOCS)

    def test_postings(self, index):
        assert index.postings("sunset") == [(0, 2), (2, 1)]
        assert index.postings("unknown") == []

    def test_document_length(self, index):
        assert index.document_length(0) == 3

    def test_term_beliefs_default_for_absent(self, index):
        beliefs = index.term_beliefs("sunset")
        assert beliefs[1] == pytest.approx(0.4)
        assert beliefs[0] > 0.4

    def test_score_sum_matches_manual(self, index):
        scores = index.score_sum(["sunset", "sea"])
        assert scores[0] > scores[2] > 0
        assert scores[1] == 0.0 and scores[3] == 0.0

    def test_bats_roundtrip(self, index, pool):
        index.register(pool, "X")
        rebuilt = InvertedIndex.from_pool(pool, "X")
        assert rebuilt.document_count == index.document_count
        assert rebuilt.postings("sunset") == index.postings("sunset")


class TestQueryNodes:
    def test_term_requires_text(self):
        with pytest.raises(ValueError):
            QueryNode("term")

    def test_not_arity(self):
        with pytest.raises(ValueError):
            QueryNode("not", children=[term("a"), term("b")])

    def test_wsum_needs_weights(self):
        with pytest.raises(ValueError):
            QueryNode("wsum", children=[term("a")], weights=[])

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            QueryNode("xor", children=[term("a")])

    def test_terms_collects_leaves(self):
        node = sum_node(term("a"), and_node(term("b"), term("a")))
        assert node.terms() == ["a", "b", "a"]

    def test_render(self):
        node = wsum([(2, term("x")), (1, or_node(term("y"), term("z")))])
        assert node.render() == "#wsum(2 x 1 #or(y z))"


class TestNetworkEvaluation:
    def test_term_evaluation(self, network):
        scores = network.evaluate(term("sunset"))
        assert scores[0] > scores[1]

    def test_and_rewards_both_terms(self, network):
        scores = network.evaluate(and_node(term("sunset"), term("sea")))
        # doc 0 and 2 contain both; doc 1 and 3 contain neither.
        assert scores[0] > scores[1]
        assert scores[2] > scores[3]

    def test_or_evaluation(self, network):
        scores = network.evaluate(or_node(term("forest"), term("city")))
        assert scores[1] > scores[0]
        assert scores[3] > scores[0]

    def test_not_inverts(self, network):
        base = network.evaluate(term("sunset"))
        inverted = network.evaluate(not_node(term("sunset")))
        assert np.allclose(base + inverted, 1.0)

    def test_max_evaluation(self, network):
        scores = network.evaluate(max_node(term("sunset"), term("forest")))
        assert scores[1] > 0.4

    def test_rank_order_and_ties(self, network):
        ranked = network.rank(term("sunset"))
        assert ranked[0][0] == 0  # highest tf
        assert len(ranked) == 4
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_rank_top_k(self, network):
        assert len(network.rank(term("sunset"), k=2)) == 2

    def test_all_scores_unit_interval(self, network):
        node = parse_structured_query("#wsum(2 sunset 1 #or(sea beach))")
        scores = network.evaluate(node)
        assert np.all((scores >= 0) & (scores <= 1))


class TestStructuredQueryParser:
    def test_implicit_sum(self):
        node = parse_structured_query("sunset beach")
        assert node.kind == "sum"
        assert node.terms() == ["sunset", "beach"]

    def test_single_term(self):
        node = parse_structured_query("sunset")
        assert node.kind == "term"

    def test_terms_analyzed(self):
        node = parse_structured_query("Sunsets Waves")
        assert node.terms() == ["sunset", "wave"]

    def test_nested_operators(self):
        node = parse_structured_query("#and(red #or(car truck))")
        assert node.kind == "and"
        assert node.children[1].kind == "or"

    def test_wsum_weights(self):
        node = parse_structured_query("#wsum(2 sunset 1 sea)")
        assert node.weights == [2.0, 1.0]

    def test_not(self):
        node = parse_structured_query("#not(rain)")
        assert node.kind == "not"

    def test_empty_rejected(self):
        with pytest.raises(QueryParseError):
            parse_structured_query("   ")

    def test_unbalanced_rejected(self):
        with pytest.raises(QueryParseError):
            parse_structured_query("#and(a b")

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryParseError):
            parse_structured_query("#xor(a b)")

    def test_wsum_needs_numeric_weights(self):
        with pytest.raises(QueryParseError):
            parse_structured_query("#wsum(a b)")
