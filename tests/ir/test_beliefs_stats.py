"""Belief functions and collection statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.beliefs import (
    BeliefParameters,
    belief,
    belief_list,
    beliefs_array,
    default_belief,
    normalized_idf,
    normalized_tf,
)
from repro.ir.stats import CollectionStats

DOCS = [
    {"sunset": 1, "sea": 2, "red": 1},
    {"forest": 3, "green": 1},
    {"sunset": 2, "beach": 1},
]


@pytest.fixture
def stats():
    return CollectionStats.from_documents(DOCS)


class TestStats:
    def test_document_count(self, stats):
        assert stats.document_count == 3

    def test_df(self, stats):
        assert stats.df("sunset") == 2
        assert stats.df("forest") == 1
        assert stats.df("unknown") == 0

    def test_cf(self, stats):
        assert stats.cf("sunset") == 3
        assert stats.cf("sea") == 2

    def test_avgdl(self, stats):
        lengths = [4, 4, 3]
        assert stats.average_document_length == pytest.approx(
            sum(lengths) / 3
        )

    def test_vocabulary_sorted(self, stats):
        vocab = stats.vocabulary()
        assert vocab == sorted(vocab)
        assert "sunset" in vocab

    def test_idf_monotone_in_rarity(self, stats):
        assert stats.idf("forest") > stats.idf("sunset") > 0

    def test_idf_unknown_term(self, stats):
        assert stats.idf("unknown") == 0.0

    def test_empty_collection(self):
        empty = CollectionStats.from_documents([])
        assert empty.document_count == 0
        assert empty.average_document_length == 0.0

    def test_df_bat(self, stats):
        bat = stats.df_bat()
        assert dict(bat.to_pairs())["sunset"] == 2

    def test_mil_bindings(self, stats):
        bindings = stats.mil_bindings("stats")
        assert bindings["stats_N"] == 3
        assert bindings["stats_avgdl"] == pytest.approx(11 / 3)
        assert "stats_df" in bindings

    def test_mil_bindings_avgdl_floor(self):
        empty = CollectionStats.from_documents([])
        assert empty.mil_bindings("s")["s_avgdl"] == 1.0

    def test_from_pool_roundtrip(self, stats, pool):
        from repro.ir.index import InvertedIndex

        InvertedIndex(DOCS).register(pool, "Lib.c")
        rebuilt = CollectionStats.from_pool(pool, "Lib.c")
        assert rebuilt.document_count == stats.document_count
        assert rebuilt.document_frequency == stats.document_frequency
        assert rebuilt.average_document_length == pytest.approx(
            stats.average_document_length
        )


class TestBeliefFormula:
    def test_default_belief(self):
        assert default_belief() == 0.4

    def test_params_validated(self):
        with pytest.raises(ValueError):
            BeliefParameters(default_belief=1.5)

    def test_ntf_zero_for_no_occurrence(self):
        assert normalized_tf(0, 10, 5) == 0.0

    def test_ntf_saturates_below_one(self):
        assert 0 < normalized_tf(100, 10, 10) < 1.0

    def test_ntf_monotone_in_tf(self):
        a = normalized_tf(1, 10, 10)
        b = normalized_tf(5, 10, 10)
        assert b > a

    def test_ntf_penalizes_long_docs(self):
        short = normalized_tf(2, 5, 10)
        long_ = normalized_tf(2, 50, 10)
        assert short > long_

    def test_nidf_range(self):
        assert 0 < normalized_idf(100, 1) <= 1.0
        assert normalized_idf(100, 100) < normalized_idf(100, 1)

    def test_nidf_degenerate(self):
        assert normalized_idf(0, 5) == 0.0
        assert normalized_idf(10, 0) == 0.0

    def test_belief_bounds(self, stats):
        value = belief(2, 4, stats, "sunset")
        assert 0.4 < value < 1.0

    def test_belief_of_absent_term_is_default_plus_zero(self, stats):
        assert belief(0, 4, stats, "sunset") == pytest.approx(0.4)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=100),
    )
    def test_belief_always_in_unit_interval(self, tf, dl):
        stats = CollectionStats.from_documents(DOCS)
        value = belief(tf, dl, stats, "sunset")
        assert 0.0 <= value <= 1.0


class TestVectorizedAgreement:
    """beliefs_array must agree exactly with the scalar formula -- this
    is the contract between the compiled MIL path and the reference."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),
                st.integers(min_value=1, max_value=50),
                st.integers(min_value=1, max_value=10),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_matches_scalar(self, rows):
        tfs = np.array([r[0] for r in rows], dtype=np.float64)
        dls = np.array([r[1] for r in rows], dtype=np.float64)
        dfs = np.array([r[2] for r in rows], dtype=np.float64)
        n_docs, avgdl = 50, 7.5
        vector = beliefs_array(tfs, dls, dfs, n_docs, avgdl)
        for i, (tf, dl, df) in enumerate(rows):
            ntf = normalized_tf(tf, dl, avgdl)
            nidf = normalized_idf(n_docs, df)
            expected = 0.4 + 0.6 * ntf * nidf
            assert vector[i] == pytest.approx(expected, abs=1e-12)

    def test_zero_df_guarded(self):
        out = beliefs_array(
            np.array([1.0]), np.array([5.0]), np.array([0.0]), 10, 5.0
        )
        assert out[0] == pytest.approx(0.4)


class TestBeliefList:
    def test_only_matched_terms(self, stats):
        bl = belief_list(DOCS[0], 4, ["sunset", "forest"], stats)
        assert len(bl) == 1  # forest not in doc 0

    def test_duplicate_query_terms(self, stats):
        bl = belief_list(DOCS[0], 4, ["sunset", "sunset"], stats)
        assert len(bl) == 2
        assert bl[0] == bl[1]

    def test_empty_query(self, stats):
        assert belief_list(DOCS[0], 4, [], stats) == []

    def test_values_exceed_default(self, stats):
        bl = belief_list(DOCS[0], 4, ["sunset", "sea", "red"], stats)
        assert all(b > 0.4 for b in bl)
