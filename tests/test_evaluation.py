"""Retrieval-effectiveness metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation import (
    average_precision,
    interpolated_precision_curve,
    mean_average_precision,
    mean_reciprocal_rank,
    precision_at,
    recall_at,
    reciprocal_rank,
)

RANKED = ["a", "b", "c", "d", "e"]


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at(RANKED, {"a", "c"}, 2) == 0.5
        assert precision_at(RANKED, {"a", "c"}, 3) == pytest.approx(2 / 3)

    def test_precision_k_beyond_list(self):
        assert precision_at(["a"], {"a"}, 10) == 1.0

    def test_precision_zero_k(self):
        assert precision_at(RANKED, {"a"}, 0) == 0.0

    def test_precision_empty_list(self):
        assert precision_at([], {"a"}, 5) == 0.0

    def test_recall_at_k(self):
        assert recall_at(RANKED, {"a", "e"}, 1) == 0.5
        assert recall_at(RANKED, {"a", "e"}, 5) == 1.0

    def test_recall_no_relevant(self):
        assert recall_at(RANKED, set(), 3) == 0.0


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b", "x"], {"a", "b"}) == 1.0

    def test_worst_ranking(self):
        ap = average_precision(["x", "y", "a"], {"a"})
        assert ap == pytest.approx(1 / 3)

    def test_missing_relevant_penalized(self):
        ap = average_precision(["a"], {"a", "never-retrieved"})
        assert ap == pytest.approx(0.5)

    def test_no_relevant(self):
        assert average_precision(RANKED, set()) == 0.0

    def test_map(self):
        runs = [["a", "x"], ["y", "b"]]
        rels = [{"a"}, {"b"}]
        assert mean_average_precision(runs, rels) == pytest.approx(0.75)

    def test_map_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_average_precision([["a"]], [])

    def test_map_empty(self):
        assert mean_average_precision([], []) == 0.0

    @given(
        st.lists(st.sampled_from("abcdefgh"), unique=True, min_size=1, max_size=8),
        st.sets(st.sampled_from("abcdefgh"), max_size=8),
    )
    def test_ap_in_unit_interval(self, ranked, relevant):
        assert 0.0 <= average_precision(ranked, relevant) <= 1.0


class TestReciprocalRank:
    def test_first_hit(self):
        assert reciprocal_rank(RANKED, {"a"}) == 1.0
        assert reciprocal_rank(RANKED, {"c"}) == pytest.approx(1 / 3)

    def test_no_hit(self):
        assert reciprocal_rank(RANKED, {"z"}) == 0.0

    def test_mrr(self):
        assert mean_reciprocal_rank(
            [["a"], ["x", "b"]], [{"a"}, {"b"}]
        ) == pytest.approx(0.75)


class TestCurve:
    def test_eleven_points_monotone_nonincreasing(self):
        curve = interpolated_precision_curve(
            ["a", "x", "b", "y", "c"], {"a", "b", "c"}
        )
        assert len(curve) == 11
        assert all(x >= y - 1e-12 for x, y in zip(curve, curve[1:]))

    def test_perfect_run_is_all_ones(self):
        curve = interpolated_precision_curve(["a", "b"], {"a", "b"})
        assert curve == [1.0] * 11

    def test_empty_relevant(self):
        assert interpolated_precision_curve(RANKED, set()) == [0.0] * 11

    @given(
        st.lists(st.sampled_from("abcdef"), unique=True, min_size=1, max_size=6),
        st.sets(st.sampled_from("abcdef"), min_size=1, max_size=6),
    )
    def test_curve_values_in_unit_interval(self, ranked, relevant):
        curve = interpolated_precision_curve(ranked, relevant)
        assert all(0.0 <= v <= 1.0 for v in curve)
