"""Wire-protocol unit tests: framing, columnar encoding, NIL mapping."""

from __future__ import annotations

import io
import math

import numpy as np
import pytest

from repro.monet.bat import BAT, Column, VoidColumn, dense_bat
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    BATResult,
    ProtocolError,
    decode_result,
    encode_result,
    error_response,
    ok_response,
    pack_message,
    read_message,
)

INT_NIL = np.iinfo(np.int64).min


def roundtrip(blob: bytes):
    stream = io.BytesIO(blob)
    return read_message(stream.read)


class TestFraming:
    def test_header_only_roundtrip(self):
        header, frames = roundtrip(pack_message({"op": "ping", "id": 7}))
        assert header == {"op": "ping", "id": 7}
        assert frames == []

    def test_frames_roundtrip(self):
        blob = pack_message({"op": "x"}, [b"abc", b""])
        header, frames = roundtrip(blob)
        assert header["frames"] == 2
        assert frames == [b"abc", b""]

    def test_eof_between_messages(self):
        with pytest.raises(EOFError):
            roundtrip(b"")

    def test_eof_mid_frame(self):
        blob = pack_message({"op": "x"}, [b"abcdef"])
        with pytest.raises(EOFError):
            roundtrip(blob[:-3])

    def test_bad_json_header(self):
        import struct

        raw = b"not json"
        with pytest.raises(ProtocolError):
            roundtrip(struct.pack("!I", len(raw)) + raw)

    def test_oversized_frame_announcement(self):
        import struct

        with pytest.raises(ProtocolError):
            roundtrip(struct.pack("!I", MAX_FRAME_BYTES + 1))

    def test_bad_frame_count(self):
        blob = pack_message({"op": "x", "frames": 99})
        with pytest.raises(ProtocolError):
            roundtrip(blob)


class TestResultEncoding:
    def assert_roundtrip(self, bat: BAT, binary: bool) -> BATResult:
        result, frames = encode_result(bat, binary)
        # Simulate the wire: pack and re-read.
        header, wire_frames = roundtrip(ok_response(result, frames))
        assert header["ok"] is True
        decoded = decode_result(header["result"], wire_frames)
        assert isinstance(decoded, BATResult)
        assert len(decoded) == len(bat)
        return decoded

    @pytest.mark.parametrize("binary", [True, False])
    def test_int_bat_with_nils(self, binary):
        bat = dense_bat("int", [5, None, -3])
        decoded = self.assert_roundtrip(bat, binary)
        assert decoded.tail == [5, None, -3]
        assert decoded.head == [0, 1, 2]  # void head densifies
        assert decoded.ttype == "int"

    @pytest.mark.parametrize("binary", [True, False])
    def test_dbl_bat_with_nan_nil(self, binary):
        bat = dense_bat("dbl", [1.5, None, 2.25])
        decoded = self.assert_roundtrip(bat, binary)
        assert decoded.tail[0] == 1.5
        assert decoded.tail[1] is None  # NaN NIL maps to null both modes
        assert decoded.tail[2] == 2.25

    @pytest.mark.parametrize("binary", [True, False])
    def test_str_bat(self, binary):
        bat = dense_bat("str", ["ape", None, "cat"])
        decoded = self.assert_roundtrip(bat, binary)
        assert decoded.tail == ["ape", None, "cat"]

    def test_binary_mode_ships_numeric_frames(self):
        bat = BAT(
            Column("oid", np.array([4, 5, 6], dtype=np.int64)),
            Column("dbl", np.array([1.0, 2.0, 3.0])),
        )
        result, frames = encode_result(bat, True)
        assert len(frames) == 2
        assert result["head"]["frame"] == 0
        assert result["tail"]["dtype"] == "<f8"
        assert np.frombuffer(frames[1], "<f8").tolist() == [1.0, 2.0, 3.0]

    def test_json_mode_ships_no_frames(self):
        bat = dense_bat("int", [1, 2])
        _, frames = encode_result(bat, False)
        assert frames == []

    def test_void_column_ships_seqbase_only(self):
        bat = BAT(
            VoidColumn(10, 3), Column("int", np.array([7, 8, 9], dtype=np.int64))
        )
        decoded = self.assert_roundtrip(bat, True)
        assert decoded.head == [10, 11, 12]

    def test_flags_travel(self):
        bat = dense_bat("int", [1, 2, 3])
        decoded = self.assert_roundtrip(bat, True)
        assert decoded.flags["hkey"] is True

    def test_scalar_roundtrip(self):
        result, frames = encode_result(42, True)
        assert decode_result(result, frames) == 42
        result, frames = encode_result(None, True)
        assert decode_result(result, frames) is None

    def test_numpy_scalar_unwraps(self):
        result, _ = encode_result(np.int64(9), True)
        assert result == {"kind": "scalar", "value": 9}
        assert isinstance(result["value"], int)

    def test_nested_value(self):
        value = [{"a": np.float64(1.5)}, [1, 2]]
        result, frames = encode_result(value, True)
        assert decode_result(result, frames) == [{"a": 1.5}, [1, 2]]

    def test_error_response_shape(self):
        header, _ = roundtrip(error_response("rate", "slow down", 3))
        assert header["ok"] is False
        assert header["error"]["code"] == "rate"
        assert header["id"] == 3

    def test_binary_sentinel_symmetry(self):
        """Binary and JSON modes must decode to the same values."""
        bat = dense_bat("int", [INT_NIL + 1, None, 0])
        a = self.assert_roundtrip(bat, True)
        b = self.assert_roundtrip(bat, False)
        assert a.tail == b.tail

    def test_nan_never_leaks_from_binary_dbl(self):
        bat = dense_bat("dbl", [None, 1.0])
        decoded = self.assert_roundtrip(bat, True)
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in decoded.tail
        )
