"""Unit tests for the token bucket, admission controller and query
guard (no sockets involved)."""

from __future__ import annotations

import asyncio

import pytest

from repro.monet.bbp import BATBufferPool
from repro.monet.bat import dense_bat
from repro.service.admission import (
    AdmissionController,
    AdmissionReject,
    TokenBucket,
)
from repro.service.guard import GuardLimits, GuardRejection, QueryGuard


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire(), bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_burst_caps_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(60)
        assert bucket.available == 2.0

    def test_disabled(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_acquire() for _ in range(1000))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)


class TestAdmissionController:
    def run(self, coro):
        return asyncio.run(coro)

    def test_inflight_bound(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=2, max_queue=0)
            await ctl.acquire()
            await ctl.acquire()
            with pytest.raises(AdmissionReject) as info:
                await ctl.acquire()
            assert info.value.code == "busy"
            assert ctl.inflight == 2
            ctl.release()
            await ctl.acquire()  # slot freed
            assert ctl.rejected_busy == 1

        self.run(scenario())

    def test_queue_grants_fifo(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queue=2, queue_timeout=5)
            await ctl.acquire()
            order = []

            async def waiter(tag):
                await ctl.acquire()
                order.append(tag)

            tasks = [asyncio.create_task(waiter(i)) for i in range(2)]
            await asyncio.sleep(0)  # let both enqueue
            assert ctl.queued == 2
            ctl.release()
            await asyncio.sleep(0)
            ctl.release()
            await asyncio.gather(*tasks)
            assert order == [0, 1]

        self.run(scenario())

    def test_queue_timeout_rejects_with_deadline(self):
        async def scenario():
            ctl = AdmissionController(
                max_inflight=1, max_queue=2, queue_timeout=0.02
            )
            await ctl.acquire()
            with pytest.raises(AdmissionReject) as info:
                await ctl.acquire()
            assert info.value.code == "deadline"
            assert ctl.rejected_deadline == 1
            # The slot is still held by the first query; releasing it
            # leaves a clean controller (no leaked waiters).
            ctl.release()
            assert ctl.inflight == 0
            assert ctl.queued == 0

        self.run(scenario())

    def test_peak_tracking(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=4)
            for _ in range(3):
                await ctl.acquire()
            for _ in range(3):
                ctl.release()
            assert ctl.peak_inflight == 3
            assert ctl.inflight == 0

        self.run(scenario())


@pytest.fixture
def pool():
    p = BATBufferPool()
    p.register("nums", dense_bat("int", list(range(50))))
    return p


class TestQueryGuard:
    def test_accepts_wellformed(self, pool):
        QueryGuard().check_mil('bat("nums").select(1, 5);', pool)

    def test_malformed_mil(self, pool):
        with pytest.raises(GuardRejection) as info:
            QueryGuard().check_mil("x := ;;; nope(", pool)
        assert info.value.code == "malformed"

    def test_unknown_operator(self, pool):
        with pytest.raises(GuardRejection) as info:
            QueryGuard().check_mil('frobnicate(bat("nums"));', pool)
        assert info.value.code == "malformed"
        assert "frobnicate" in str(info.value)

    def test_op_budget(self, pool):
        guard = QueryGuard(GuardLimits(max_ops=3))
        with pytest.raises(GuardRejection) as info:
            guard.check_mil('bat("nums").sort.reverse.mirror;', pool)
        assert info.value.code == "guard"

    def test_input_bun_budget(self, pool):
        guard = QueryGuard(GuardLimits(max_input_buns=60))
        guard.check_mil('bat("nums");', pool)  # 50 <= 60
        with pytest.raises(GuardRejection) as info:
            # Two references: 100 estimated BUNs.
            guard.check_mil('kunion(bat("nums"), bat("nums"));', pool)
        assert info.value.code == "guard"

    def test_source_size_budget(self, pool):
        guard = QueryGuard(GuardLimits(max_source_bytes=10))
        with pytest.raises(GuardRejection) as info:
            guard.check_mil('bat("nums").sort;', pool)
        assert info.value.code == "guard"

    def test_unknown_names_count_zero(self, pool):
        guard = QueryGuard(GuardLimits(max_input_buns=1))
        # Not in the pool: the estimate is 0, the runtime's problem.
        guard.check_mil('bat("ghost");', pool)

    def test_malformed_moa(self):
        with pytest.raises(GuardRejection) as info:
            QueryGuard().check_moa("map[(((;")
        assert info.value.code == "malformed"

    def test_moa_extent_budget(self, pool):
        pool.register("Lib.__extent__", dense_bat("oid", list(range(40))))
        guard = QueryGuard(GuardLimits(max_input_buns=30))
        schema = {"Lib": object()}
        with pytest.raises(GuardRejection) as info:
            guard.check_moa("count(Lib);", pool, schema)
        assert info.value.code == "guard"
        # A generous budget admits the same query.
        QueryGuard(GuardLimits(max_input_buns=100)).check_moa(
            "count(Lib);", pool, schema
        )

    def test_disabled_limits(self, pool):
        guard = QueryGuard(
            GuardLimits(max_ops=None, max_source_bytes=None, max_input_buns=None)
        )
        guard.check_mil("x := " + ".sort".join(['bat("nums")'] * 1) + ";", pool)
