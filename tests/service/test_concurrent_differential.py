"""Concurrent-session differential suite.

N sessions run the MIL fuzzer's seeded random pipelines *concurrently*
against one shared, fragment-registered pool; every session's full
variable environment must be BUN-identical to a serial run of the same
script over a private monolithic pool.  This is the thread-safety
acceptance test for the service refactor: the shared BBP (with its
locked coalesced-view cache), the shared MIL interpreter machinery and
the session temp namespaces must not let concurrent executions observe
each other.

The pipeline corpus and comparison helpers are reused from
``tests/monet/test_mil_fuzz.py`` (loaded by path; the test tree is not
a package), so this suite inherits the fuzzer's nasty inputs: NIL-heavy
columns, all-equal keys, empty BATs, fragmented joins.  Both executor
backends run: threads always, the process pool when available.
"""

from __future__ import annotations

import importlib.util
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.mirror import MirrorDBMS
from repro.monet.bat import BAT
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import FragmentationPolicy, FragmentedBAT, fragment_bat
from repro.monet.mil import run_program
from repro.service.session import Session

_FUZZ_PATH = Path(__file__).parent.parent / "monet" / "test_mil_fuzz.py"
_spec = importlib.util.spec_from_file_location("mil_fuzz_corpus", _FUZZ_PATH)
fuzz = importlib.util.module_from_spec(_spec)
sys.modules["mil_fuzz_corpus"] = fuzz
_spec.loader.exec_module(fuzz)

N_SESSIONS = 8
ROUNDS = 2


def _backends():
    from repro.monet import fragments as fr

    backends = ["thread"]
    if fr.get_backend("process").available():
        backends.append("process")
    return backends


def _corpus(base_seed: int):
    """(data, scripts): one shared dataset and one seeded pipeline per
    session, each ending in a session-private persists so the temp
    namespaces are exercised under contention too."""
    rng = np.random.default_rng(base_seed)
    data = fuzz._make_data(rng)
    scripts = []
    for i in range(N_SESSIONS):
        script_rng = np.random.default_rng(base_seed + 1 + i)
        script = fuzz._gen_pipeline(script_rng)
        scripts.append(script + '\npersists("mine", x1);\nbat("mine");')
    return data, scripts


def _serial_results(data: dict, scripts):
    """Ground truth: each script over its own monolithic pool."""
    results = []
    for script in scripts:
        pool = BATBufferPool()
        for name, bat in data.items():
            pool.register(name, bat)
        results.append(run_program(script, pool))
    return results


def _assert_env_equal(got_env, expected_env, context: str):
    for name, expected in expected_env.items():
        got = got_env[name]
        if isinstance(expected, BAT):
            if isinstance(got, FragmentedBAT):
                got = got.to_bat()
            fuzz._assert_bats_equal(got, expected, f"{context} var {name}")
        else:
            assert fuzz._same_value(got, expected), (
                f"{context} var {name}: {got!r} vs {expected!r}"
            )


@pytest.mark.parametrize("backend", _backends())
def test_concurrent_sessions_match_serial(backend, monkeypatch):
    from repro.monet import fragments as fr

    if backend == "process":
        monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    policy = FragmentationPolicy(
        target_size=16, strategy="range", workers=2, backend=backend
    )
    data, scripts = _corpus(77_000)
    expected = _serial_results(data, scripts)

    db = MirrorDBMS(fragment_policy=policy)
    for name, bat in data.items():
        db.pool.register_fragmented(name, fragment_bat(bat, policy))

    for round_no in range(ROUNDS):
        sessions = [
            Session(f"s{round_no}-{i}", db) for i in range(N_SESSIONS)
        ]
        outputs: list = [None] * N_SESSIONS
        errors: list = []
        barrier = threading.Barrier(N_SESSIONS)

        def run(i: int):
            try:
                barrier.wait(timeout=30)
                outputs[i] = sessions[i].mil.run(scripts[i])
            except Exception as exc:  # pragma: no cover
                errors.append((i, exc))

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(N_SESSIONS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:3]

        for i, (got, exp) in enumerate(zip(outputs, expected)):
            context = f"[{backend}] round {round_no} session {i}\n{scripts[i]}"
            _assert_env_equal(got.env, exp.env, context)
            assert got.printed == exp.printed, context
            if isinstance(exp.value, BAT):
                value = got.value
                if isinstance(value, FragmentedBAT):
                    value = value.to_bat()
                fuzz._assert_bats_equal(value, exp.value, f"{context} final")
            else:
                assert fuzz._same_value(got.value, exp.value), context

        # Each session persisted "mine" privately: all N coexist in the
        # shared pool under mangled names, and cleanup drops only ours.
        for i, session in enumerate(sessions):
            assert db.pool.exists(f"@{session.session_id}:mine")
        for session in sessions:
            session.close()
        assert not [
            n for n in db.pool._all_names() if n.startswith(f"@s{round_no}-")
        ]

    # The shared base registrations never got clobbered.
    for name, bat in data.items():
        assert len(db.pool.lookup(name)) == len(bat)


@pytest.mark.parametrize("backend", _backends())
def test_concurrent_identical_script_single_bat(backend, monkeypatch):
    """All sessions race the *same* script -- maximum contention on the
    shared coalesced-view cache and on one base BAT."""
    from repro.monet import fragments as fr

    if backend == "process":
        monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    policy = FragmentationPolicy(
        target_size=16, strategy="roundrobin", workers=2, backend=backend
    )
    rng = np.random.default_rng(88_001)
    data = fuzz._make_data(rng)
    script = fuzz._gen_pipeline(np.random.default_rng(88_002))

    mono = BATBufferPool()
    for name, bat in data.items():
        mono.register(name, bat)
    expected = run_program(script, mono)

    db = MirrorDBMS(fragment_policy=policy)
    for name, bat in data.items():
        db.pool.register_fragmented(name, fragment_bat(bat, policy))
    sessions = [Session(f"t{i}", db) for i in range(N_SESSIONS)]
    outputs: list = [None] * N_SESSIONS
    errors: list = []
    barrier = threading.Barrier(N_SESSIONS)

    def run(i: int):
        try:
            barrier.wait(timeout=30)
            outputs[i] = sessions[i].mil.run(script)
        except Exception as exc:  # pragma: no cover
            errors.append((i, exc))

    threads = [threading.Thread(target=run, args=(i,)) for i in range(N_SESSIONS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:3]
    for i, got in enumerate(outputs):
        _assert_env_equal(
            got.env, expected.env, f"[{backend}] racer {i}\n{script}"
        )
