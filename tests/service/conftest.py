"""Fixtures for the query-service suite: a small shared database and a
running service on an ephemeral port."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mirror import MirrorDBMS
from repro.monet.bat import BAT, Column
from repro.service import ServiceConfig, ServiceThread


def make_db() -> MirrorDBMS:
    db = MirrorDBMS()
    db.define("define Nums as SET<Atomic<int>>;")
    db.insert("Nums", [3, 1, 2, None, 7, 5])
    # A bigger flat BAT for heavier MIL work (sorts with real cost).
    values = np.random.default_rng(7).integers(0, 1_000_000, 400_000)
    db.pool.register(
        "big",
        BAT(
            Column("oid", np.arange(len(values), dtype=np.int64)),
            Column("int", values.astype(np.int64)),
        ),
    )
    return db


@pytest.fixture
def db() -> MirrorDBMS:
    return make_db()


@pytest.fixture
def service(db):
    """A running service with permissive defaults; yields the
    ServiceThread (``service.address`` is the TCP endpoint)."""
    config = ServiceConfig(max_inflight=4, max_queue=8, queue_timeout=5.0)
    with ServiceThread(db, config) as svc:
        yield svc
