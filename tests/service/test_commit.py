"""Commit-to-shared: promoting session temps into the shared catalog.

A session builds state privately (mangled ``@<sid>:<name>`` entries)
and publishes it with ``Session.commit`` -- atomically under the DBMS
write lock, optionally renamed, with an explicit ``replace`` flag
guarding overwrites.  Also covered here: the namespace ``append`` hook
(private temps only -- shared BATs take the pool write path) and the
``commit`` wire op plus the epoch tag on MIL responses.
"""

from __future__ import annotations

import pytest

from repro.monet.bat import dense_bat
from repro.monet.errors import BBPError
from repro.service.client import ServiceClient, ServiceError
from repro.service.session import Session, SessionNamespace


# ----------------------------------------------------------------------
# Session.commit
# ----------------------------------------------------------------------


def test_commit_promotes_temp_to_shared(db):
    a = Session("sA", db)
    b = Session("sB", db)
    a.mil.run('persists("mine", bat("Nums.__value__").sort);')
    assert not b.namespace.exists("mine")
    assert a.commit("mine") == "mine"
    # Promoted: visible to every session, gone from the temp namespace.
    assert b.namespace.exists("mine")
    assert db.pool.exists("mine")
    assert not db.pool.exists("@sA:mine")
    assert a.close() == 0  # nothing left to clean up


def test_commit_under_new_name(db):
    session = Session("sA", db)
    session.namespace.register("scratch", dense_bat("int", [4, 5]))
    assert session.commit("scratch", "published") == "published"
    assert db.pool.lookup("published").tail_list() == [4, 5]
    assert not db.pool.exists("scratch")


def test_commit_requires_replace_for_existing_target(db):
    session = Session("sA", db)
    session.namespace.register("t", dense_bat("int", [1]))
    with pytest.raises(BBPError):
        session.commit("t", "Nums.__value__")
    # The temp survives a failed commit.
    assert session.namespace.exists("t")
    session.commit("t", "Nums.__value__", replace=True)
    assert db.pool.lookup("Nums.__value__").tail_list() == [1]


def test_commit_rejects_reserved_target(db):
    session = Session("sA", db)
    session.namespace.register("t", dense_bat("int", [1]))
    with pytest.raises(BBPError, match="reserved"):
        session.commit("t", "@sB:stolen")


def test_commit_rejects_non_private_source(db):
    session = Session("sA", db)
    with pytest.raises(BBPError):
        session.commit("Nums.__value__")
    with pytest.raises(BBPError):
        session.commit("never-registered")


def test_commit_preserves_fragmentation(db):
    from repro.monet.fragments import FragmentationPolicy, fragment_bat

    session = Session("sA", db)
    policy = FragmentationPolicy(target_size=2, strategy="range")
    session.namespace.register_fragmented(
        "t", fragment_bat(dense_bat("int", [1, 2, 3, 4, 5]), policy)
    )
    session.commit("t")
    assert db.pool.is_fragmented("t")
    assert db.pool.lookup("t").tail_list() == [1, 2, 3, 4, 5]


# ----------------------------------------------------------------------
# Namespace append privacy
# ----------------------------------------------------------------------


def test_namespace_append_private_only(db):
    ns = SessionNamespace(db.pool, "sA")
    ns.register("t", dense_bat("int", [1]))
    ns.append("t", tails=[2, 3])
    assert ns.lookup("t").tail_list() == [1, 2, 3]
    # Shared BATs are not appendable from a session namespace.
    with pytest.raises(BBPError, match="shared"):
        ns.append("Nums.__value__", tails=[99])
    with pytest.raises(BBPError):
        ns.append("no-such", tails=[1])
    assert len(db.pool.lookup("Nums.__value__")) == 6


# ----------------------------------------------------------------------
# The wire: commit op and epoch tags
# ----------------------------------------------------------------------


def test_commit_over_the_wire(service, db):
    with ServiceClient(*service.address) as alice, ServiceClient(
        *service.address
    ) as bob:
        alice.mil('persists("shared_out", bat("Nums.__value__").tsort);')
        assert alice.commit("shared_out") == "shared_out"
        result = bob.mil('bat("shared_out");')
        assert sorted(v for v in result.tail if v is not None) == [1, 2, 3, 5, 7]
        assert db.pool.exists("shared_out")


def test_commit_over_the_wire_renamed_and_replace(service, db):
    with ServiceClient(*service.address) as client:
        client.mil('persists("x", bat("Nums.__value__").select(1, 3));')
        assert client.commit("x", "picked") == "picked"
        client.mil('persists("x", bat("Nums.__value__").select(5, 9));')
        with pytest.raises(ServiceError):
            client.commit("x", "picked")
        assert client.commit("x", "picked", replace=True) == "picked"
    assert sorted(db.pool.lookup("picked").tail_list()) == [5, 7]


def test_mil_response_carries_epoch(service, db):
    with ServiceClient(*service.address) as client:
        first = client.mil('bat("Nums.__value__");')
        assert first.epoch is not None
        db.pool.append("Nums.__value__", tails=[11])
        second = client.mil('bat("Nums.__value__");')
        assert second.epoch > first.epoch
        assert second.tail[-1] == 11
