"""The unified mutation API: transactions from ``MirrorDBMS.begin()``
to the wire.

In-process: one :class:`~repro.core.mirror.Transaction` pins one
catalog epoch for every statement between ``begin`` and
``commit``/``abort``, stages insert/update/delete with one signature
shape, re-evaluates where-predicates against the live state at commit,
and leaves nothing behind on abort.  Over the wire: the ``begin``/
``commit``/``abort``/``update``/``delete`` ops of protocol v2, staged
vs auto-commit behaviour, the ``mutation`` error code, and sync/async
client parity.  The DDL arm covers ``delete from`` / ``update ... set``
through ``MirrorDBMS.execute``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.mirror import MirrorDBMS, MutationResult
from repro.monet.errors import (
    InvalidMutationBatch,
    MutationError,
    TransactionError,
)
from repro.service import AsyncServiceClient, ServiceClient, ServiceError


def _people_db() -> MirrorDBMS:
    db = MirrorDBMS()
    db.execute(
        """
        define People as SET<TUPLE<Atomic<str>: name, Atomic<int>: age>>;
        insert into People values ("ann", 34), ("bob", 27), ("cyd", 34);
        """
    )
    return db


# ----------------------------------------------------------------------
# In-process: epoch pinning, commit, abort
# ----------------------------------------------------------------------


class TestTransaction:
    def test_begin_pins_one_epoch_across_statements(self):
        db = MirrorDBMS()
        db.define("define Nums as SET<Atomic<int>>;")
        db.insert("Nums", [3, 1, 2])
        txn = db.begin()
        assert txn.count("Nums") == 3
        # A concurrent writer lands between the transaction's reads...
        db.insert("Nums", [9, 9])
        # ...and every statement keeps reading the begin-time epoch.
        assert txn.count("Nums") == 3
        result = txn.query("count(Nums);")
        assert result.value == 3
        assert result.epoch == txn.epoch
        assert db.count("Nums") == 5
        txn.abort()

    def test_commit_publishes_all_staged_mutations_atomically(self):
        db = _people_db()
        txn = db.begin()
        txn.insert("People", [{"name": "dee", "age": 41}])
        txn.update("People", {"age": 35}, where={"name": "ann"})
        txn.delete("People", where={"name": "bob"})
        # Nothing is visible before commit -- not even to the
        # transaction's own reads (begin-time snapshot isolation).
        assert txn.count("People") == 3
        assert db.count("People") == 3
        summary = txn.commit()
        assert isinstance(summary, MutationResult)
        assert [r.kind for r in summary.applied] == [
            "insert",
            "update",
            "delete",
        ]
        assert db.count("People") == 3  # +1 insert, -1 delete
        rows = {(row["name"], row["age"]) for row in db.contents("People")}
        assert rows == {("ann", 35), ("cyd", 34), ("dee", 41)}

    def test_abort_leaves_no_visible_state(self):
        db = _people_db()
        txn = db.begin()
        txn.insert("People", [{"name": "eve", "age": 50}])
        txn.delete("People")  # all rows
        result = txn.abort()
        assert result.count == 2  # both staged ops dropped
        assert {(r["name"], r["age"]) for r in db.contents("People")} == {
            ("ann", 34),
            ("bob", 27),
            ("cyd", 34),
        }
        with pytest.raises(TransactionError):
            txn.insert("People", [{"name": "fay", "age": 1}])
        with pytest.raises(TransactionError):
            txn.commit()

    def test_context_manager_commits_on_clean_exit(self):
        db = _people_db()
        with db.begin() as txn:
            txn.delete("People", where={"age": 34})
        assert db.count("People") == 1

    def test_context_manager_aborts_on_exception(self):
        db = _people_db()
        with pytest.raises(RuntimeError, match="boom"):
            with db.begin() as txn:
                txn.delete("People")
                raise RuntimeError("boom")
        assert db.count("People") == 3

    def test_commit_reevaluates_where_against_live_state(self):
        # The stage-time preview counts against the pinned snapshot;
        # commit re-matches against what is actually live, so a row
        # arriving between stage and commit is still caught.
        db = MirrorDBMS()
        db.define("define Nums as SET<Atomic<int>>;")
        db.insert("Nums", [1, 2])
        txn = db.begin()
        preview = txn.delete("Nums", where=42)
        assert preview.count == 0
        db.insert("Nums", [42])
        summary = txn.commit()
        assert summary.applied[0].count == 1
        assert sorted(db.contents("Nums")) == [1, 2]

    def test_where_shapes(self):
        db = _people_db()
        assert db.delete("People", where={"age": 34, "name": "cyd"}) == 1
        bob = lambda row: row["name"] == "bob"
        assert db.update("People", {"age": 28}, where=bob) == 1
        assert {(r["name"], r["age"]) for r in db.contents("People")} == {
            ("ann", 34),
            ("bob", 28),
        }
        assert db.delete("People") == 2  # None: all rows

    def test_nil_literal_matches_nothing(self):
        # The kernel comparison rule: NIL = NIL is false, so a NIL
        # where-literal selects no rows rather than the NIL rows.
        db = MirrorDBMS()
        db.define("define Nums as SET<Atomic<int>>;")
        db.insert("Nums", [1, None, 2])
        assert db.delete("Nums", where=None_literal()) == 0
        assert db.count("Nums") == 3

    def test_unknown_field_rejected_at_stage_time(self):
        db = _people_db()
        txn = db.begin()
        with pytest.raises(InvalidMutationBatch):
            txn.update("People", {"salary": 1}, where={"name": "ann"})
        with pytest.raises(InvalidMutationBatch):
            txn.delete("People", where={"salary": 1})
        txn.abort()

    def test_legacy_predicate_delete_still_works(self):
        db = MirrorDBMS()
        db.define("define Nums as SET<Atomic<int>>;")
        db.insert("Nums", [1, 5, 9])
        assert db.delete("Nums", "THIS > 4") == 2
        assert db.contents("Nums") == [1]


def None_literal():
    """A bare NIL where-literal (spelled as a helper so the dict-vs-
    literal dispatch in ``_where_positions`` sees an explicit value)."""
    return {"value": None}


# ----------------------------------------------------------------------
# DDL: delete from / update ... set through execute()
# ----------------------------------------------------------------------


class TestMutationDDL:
    def test_delete_and_update_statements(self):
        db = _people_db()
        outcomes = db.execute(
            """
            update People set age = 40 where name = "ann";
            delete from People where age = 34;
            """
        )
        assert len(outcomes) == 2
        assert {(r["name"], r["age"]) for r in db.contents("People")} == {
            ("ann", 40),
            ("bob", 27),
        }

    def test_delete_without_where_clears_collection(self):
        db = _people_db()
        db.execute("delete from People;")
        assert db.count("People") == 0

    def test_atomic_set_value_assignment(self):
        db = MirrorDBMS()
        db.execute(
            """
            define Nums as SET<Atomic<int>>;
            insert into Nums values (1), (2), (1);
            update Nums set value = 7 where value = 1;
            """
        )
        assert sorted(db.contents("Nums")) == [2, 7, 7]


# ----------------------------------------------------------------------
# Over the wire: begin/commit/abort/update/delete ops
# ----------------------------------------------------------------------


class TestWireTransactions:
    def test_epoch_pinned_across_wire_statements(self, service):
        with ServiceClient(*service.address) as writer, ServiceClient(
            *service.address
        ) as reader:
            epoch = reader.begin()
            assert isinstance(epoch, int)
            assert reader.moa("count(Nums);") == 6
            writer.insert("Nums", [100, 200])
            # The reader's transaction keeps its begin-time epoch.
            assert reader.moa("count(Nums);") == 6
            reader.abort()
            assert reader.moa("count(Nums);") == 8

    def test_staged_mutations_commit_together(self, service):
        with ServiceClient(*service.address) as c:
            c.begin()
            assert c.insert("Nums", [50]) == 1  # staged row count
            removed = c.delete("Nums", where=3)
            assert removed["staged"] and removed["op"] == "delete"
            assert c.count("Nums") == 6  # nothing visible yet
            result = c.commit()
            assert result["kind"] == "committed"
            assert [op["op"] for op in result["applied"]] == [
                "insert",
                "delete",
            ]
            assert c.count("Nums") == 6  # +1 insert, -1 delete

    def test_abort_drops_staged_wire_mutations(self, service):
        with ServiceClient(*service.address) as c:
            c.begin()
            c.insert("Nums", [70])
            c.delete("Nums")
            aborted = c.abort()
            assert aborted["kind"] == "aborted" and aborted["count"] == 2
            assert c.count("Nums") == 6

    def test_autocommit_update_delete_outside_transaction(self, service):
        with ServiceClient(*service.address) as c:
            patched = c.update("Nums", 9, where=1)
            assert patched["op"] == "update" and not patched["staged"]
            assert patched["count"] == 1
            removed = c.delete("Nums", where=9)
            assert removed["count"] == 1 and "epoch" in removed
            assert c.count("Nums") == 5

    def test_mutation_error_code(self, service):
        with ServiceClient(*service.address) as c:
            with pytest.raises(ServiceError) as info:
                c.delete("NoSuchCollection")
            assert info.value.code == "mutation"
            with pytest.raises(ServiceError) as info:
                c.commit()  # no open transaction
            assert info.value.code == "mutation"
            # The connection survives the rejections.
            assert c.count("Nums") == 6

    def test_double_begin_rejected(self, service):
        with ServiceClient(*service.address) as c:
            c.begin()
            with pytest.raises(ServiceError) as info:
                c.begin()
            assert info.value.code == "mutation"
            c.abort()

    def test_async_client_parity(self, service):
        async def scenario():
            async with AsyncServiceClient(*service.address) as c:
                epoch = await c.begin()
                assert isinstance(epoch, int)
                await c.insert("Nums", [31])
                staged = await c.update("Nums", 4, where=3)
                assert staged["staged"]
                result = await c.commit()
                assert result["kind"] == "committed"
                removed = await c.delete("Nums", where=31)
                assert removed["count"] == 1
                return await c.count("Nums")

        assert asyncio.run(scenario()) == 6

    def test_session_close_aborts_open_transaction(self, service, db):
        c = ServiceClient(*service.address)
        c.begin()
        c.insert("Nums", [500])
        c.close()
        assert db.count("Nums") == 6


def test_mutation_error_is_one_vocabulary():
    """Satellite contract: every mutation failure -- pool, kernel or
    transaction layer -- is a :class:`MutationError`, while the
    historical ``BBPError``/``KernelError`` catch sites keep working
    through multiple inheritance."""
    from repro.monet.errors import (
        BBPError,
        KernelError,
        InvalidPositions,
        UnknownMutationTarget,
    )

    assert issubclass(UnknownMutationTarget, MutationError)
    assert issubclass(UnknownMutationTarget, BBPError)
    assert issubclass(InvalidPositions, MutationError)
    assert issubclass(InvalidPositions, KernelError)
    assert issubclass(TransactionError, MutationError)
    assert issubclass(InvalidMutationBatch, KernelError)
