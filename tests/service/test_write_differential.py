"""Write-path differential: concurrent appends vs serial epoch replay.

The acceptance harness for the append/snapshot write path: N service
sessions run seeded random MIL pipelines while a writer thread appends
batches to the shared base BATs (serialized under the database's
``write_lock``), recording the catalog epoch after each batch.  Every
session result carries the epoch its plan's snapshot was pinned at
(``MILResult.epoch``); the harness then *replays serially* -- a private
monolithic pool holding the base data plus exactly the append batches
committed at or before that epoch -- and the concurrent result must be
BUN-identical to the replay, variable by variable.

That is the whole isolation contract in one test: a plan sees a
prefix-closed set of committed appends (no torn batch, no future
write), no matter how the scheduler interleaves it with the writer.

Runs on both executor backends, over fragmented shared registrations.
The pipeline corpus and comparison helpers are reused from
``tests/monet/test_mil_fuzz.py`` (loaded by path, like the concurrent
differential suite).
"""

from __future__ import annotations

import importlib.util
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.mirror import MirrorDBMS
from repro.monet.bat import BAT
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import FragmentationPolicy, FragmentedBAT, fragment_bat
from repro.monet.mil import run_program
from repro.service.session import Session

_FUZZ_PATH = Path(__file__).parent.parent / "monet" / "test_mil_fuzz.py"
_spec = importlib.util.spec_from_file_location("mil_fuzz_write_corpus", _FUZZ_PATH)
fuzz = importlib.util.module_from_spec(_spec)
sys.modules["mil_fuzz_write_corpus"] = fuzz
_spec.loader.exec_module(fuzz)

N_SESSIONS = 8
N_MUTATIONS = 40


def _backends():
    from repro.monet import fragments as fr

    backends = ["thread"]
    if fr.get_backend("process").available():
        backends.append("process")
    return backends


def _make_mutations(rng, names):
    """Deterministic append batches against the fact BATs."""
    mutations = []
    for _ in range(N_MUTATIONS):
        name = str(rng.choice(names))
        htype, ttype = fuzz._BASE_TYPES[name]
        pairs = fuzz._mutation_pairs(rng, htype, ttype, int(rng.integers(1, 6)))
        mutations.append(("append", name, pairs))
    return mutations


def _make_mixed_mutations(rng, data, names):
    """Deterministic mixed append/delete/update batches.  The writer
    applies them in order under the write lock, so each batch's
    positions are valid against the cardinality the *previous* batches
    left behind -- tracked here at generation time so the serial replay
    sees the identical sequence."""
    counts = {name: len(data[name]) for name in names}
    mutations = []
    for _ in range(N_MUTATIONS):
        name = str(rng.choice(names))
        htype, ttype = fuzz._BASE_TYPES[name]
        op = str(rng.choice(["append", "delete", "update"]))
        if op != "append" and counts[name] < 4:
            op = "append"  # keep shrinking BATs from running dry
        if op == "append":
            pairs = fuzz._mutation_pairs(
                rng, htype, ttype, int(rng.integers(1, 6))
            )
            counts[name] += len(pairs)
            mutations.append(("append", name, pairs))
            continue
        k = int(rng.integers(1, 4))
        positions = sorted(
            int(p) for p in rng.choice(counts[name], size=k, replace=False)
        )
        if op == "delete":
            counts[name] -= k
            mutations.append(("delete", name, positions))
        else:
            pairs = fuzz._mutation_pairs(rng, htype, ttype, k)
            values = [t for _, t in pairs]
            mutations.append(("update", name, (positions, values)))
    return mutations


def _apply(pool, mutation):
    op, name, payload = mutation
    if op == "append":
        pool.append(name, payload)
    elif op == "delete":
        pool.delete(name, payload)
    else:
        positions, values = payload
        pool.update(name, positions, values)


def _replay_pool(data, committed):
    """Ground truth for one pinned epoch: base data plus exactly the
    committed prefix of mutation batches, in a private monolithic
    pool."""
    pool = BATBufferPool()
    for name, bat in data.items():
        pool.register(name, bat)
    for mutation in committed:
        _apply(pool, mutation)
    return pool


def _assert_env_equal(got_env, expected_env, context: str):
    for name, expected in expected_env.items():
        got = got_env[name]
        if isinstance(expected, BAT):
            if isinstance(got, FragmentedBAT):
                got = got.to_bat()
            fuzz._assert_bats_equal(got, expected, f"{context} var {name}")
        else:
            assert fuzz._same_value(got, expected), (
                f"{context} var {name}: {got!r} vs {expected!r}"
            )


def _run_differential(backend, monkeypatch, mutations, seed):
    """The shared harness: N sessions race one writer applying
    *mutations* in order; every session's result must equal the serial
    replay of exactly the batches committed at or before its pinned
    epoch."""
    from repro.monet import fragments as fr

    if backend == "process":
        monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    policy = FragmentationPolicy(
        target_size=16, strategy="range", workers=2, backend=backend
    )
    rng = np.random.default_rng(seed)
    data = fuzz._make_data(rng)
    names = [n for n in fuzz._BASE_TYPES if n != "dim"]
    scripts = [
        fuzz._gen_pipeline(np.random.default_rng(seed + 100 + i))
        for i in range(N_SESSIONS)
    ]

    db = MirrorDBMS(fragment_policy=policy)
    for name, bat in data.items():
        db.pool.register_fragmented(name, fragment_bat(bat, policy))

    sessions = [Session(f"w{i}", db) for i in range(N_SESSIONS)]
    outputs: list = [None] * N_SESSIONS
    errors: list = []
    #: (epoch_after, index into mutations) per committed batch.
    commit_log: list = []
    barrier = threading.Barrier(N_SESSIONS + 1)

    def writer():
        try:
            barrier.wait(timeout=30)
            for index, mutation in enumerate(mutations):
                # Mutations serialize under the DBMS write lock,
                # exactly like the Moa insert/delete/update paths.
                with db.write_lock:
                    _apply(db.pool, mutation)
                    commit_log.append((db.pool.epoch, index))
                time.sleep(0.001)
        except Exception as exc:  # pragma: no cover
            errors.append(("writer", exc))

    def reader(i: int):
        try:
            barrier.wait(timeout=30)
            time.sleep(0.002 * (i % 4))  # spread pins across the race
            outputs[i] = sessions[i].mil.run(scripts[i])
        except Exception as exc:  # pragma: no cover
            errors.append((i, exc))

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(i,)) for i in range(N_SESSIONS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:3]
    assert len(commit_log) == N_MUTATIONS

    for i, got in enumerate(outputs):
        pinned = got.epoch
        assert pinned is not None
        committed = [
            mutations[index]
            for epoch_after, index in commit_log
            if epoch_after <= pinned
        ]
        replay = _replay_pool(data, committed)
        expected = run_program(scripts[i], replay)
        context = (
            f"[{backend}] session {i} pinned epoch {pinned} "
            f"({len(committed)}/{N_MUTATIONS} batches)\n{scripts[i]}"
        )
        _assert_env_equal(got.env, expected.env, context)
        assert got.printed == expected.printed, context
        if isinstance(expected.value, BAT):
            value = got.value
            if isinstance(value, FragmentedBAT):
                value = value.to_bat()
            fuzz._assert_bats_equal(value, expected.value, f"{context} final")
        else:
            assert fuzz._same_value(got.value, expected.value), context

    for session in sessions:
        session.close()

    # Final state sanity: the live pool holds every committed batch,
    # BUN for BUN (heads matter: deletes gather, updates patch tails).
    final = _replay_pool(data, mutations)
    for name in names:
        fuzz._assert_bats_equal(
            db.pool.lookup(name), final.lookup(name), f"final {name}"
        )


@pytest.mark.parametrize("backend", _backends())
def test_concurrent_appends_match_epoch_replay(backend, monkeypatch):
    names = [n for n in fuzz._BASE_TYPES if n != "dim"]
    mutations = _make_mutations(np.random.default_rng(91_001), names)
    _run_differential(backend, monkeypatch, mutations, 91_000)


@pytest.mark.parametrize("backend", _backends())
def test_concurrent_mixed_mutations_match_epoch_replay(backend, monkeypatch):
    """The delete/update arm of the 8-session race: tombstone and patch
    batches interleave with appends under the write lock, and every
    pinned plan still reads a prefix-closed committed state."""
    rng = np.random.default_rng(92_000)
    data = fuzz._make_data(rng)
    names = [n for n in fuzz._BASE_TYPES if n != "dim"]
    mutations = _make_mixed_mutations(
        np.random.default_rng(92_001), data, names
    )
    kinds = {op for op, _, _ in mutations}
    assert kinds == {"append", "delete", "update"}
    _run_differential(backend, monkeypatch, mutations, 92_000)
