"""End-to-end service tests over real sockets: queries, rejection
paths, cancellation, session cleanup, and the 16-client smoke."""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.service import (
    AsyncServiceClient,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.service.protocol import BATResult, pack_message

#: A MIL program of many cheap statements: long enough wall-clock to
#: overlap other requests, with checkpoints between every statement.
SLOW_MIL = "\n".join(
    [f'x{i} := tsort(bat("big"));' for i in range(12)] + ["count(x11);"]
)

POINT_MIL = 'bat("Nums.__value__").select(2, 7);'


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestQueries:
    def test_mil_roundtrip(self, service):
        with ServiceClient(*service.address) as c:
            result = c.mil('bat("Nums.__value__").tsort;')
            assert isinstance(result, BATResult)
            assert result.tail == [None, 1, 2, 3, 5, 7]

    def test_moa_roundtrip(self, service):
        with ServiceClient(*service.address) as c:
            assert c.moa("count(Nums);") == 6

    def test_moa_with_list_param(self, service):
        with ServiceClient(*service.address) as c:
            assert c.moa("sum(vals);", {"vals": [1, 2, 3]}) == 6

    def test_define_insert_count(self, service):
        with ServiceClient(*service.address) as c:
            assert c.define("define Words as SET<Atomic<str>>;") == ["Words"]
            assert c.insert("Words", ["ape", "bat"]) == 2
            assert c.count("Words") == 2
            assert "Words" in c.collections()

    def test_runtime_error_keeps_connection(self, service):
        with ServiceClient(*service.address) as c:
            with pytest.raises(ServiceError) as info:
                c.mil('bat("no-such-bat");')
            assert info.value.code == "runtime"
            # Connection survives the failure.
            assert c.count("Nums") == 6

    def test_guard_rejection_codes(self, service):
        with ServiceClient(*service.address) as c:
            with pytest.raises(ServiceError) as info:
                c.mil("not mil at all ((;")
            assert info.value.code == "malformed"

    def test_async_client(self, service):
        async def scenario():
            async with AsyncServiceClient(*service.address) as c:
                assert await c.count("Nums") == 6
                result = await c.mil(POINT_MIL)
                return result.tail

        tails = asyncio.run(scenario())
        assert sorted(tails) == [2, 3, 5, 7]

    def test_stats_binding_and_session_param(self, service):
        with ServiceClient(*service.address) as c:
            c.define(
                "define Lib as SET<TUPLE<Atomic<URL>: source, "
                "CONTREP<Text>: annotation>>;"
            )
            c.insert(
                "Lib",
                [
                    {"source": "u1", "annotation": "red sunset sea"},
                    {"source": "u2", "annotation": "green forest"},
                ],
            )
            c.bind_stats("Lib", "annotation", "st")
            out = c.moa(
                "map[sum(THIS)](map[getBL(THIS.annotation, q, st)](Lib));",
                {"q": ["sunset"], "st": {"$session": "st"}},
            )
            assert len(out) == 2
            assert out[0] > out[1]

    def test_unbound_session_param_rejected(self, service):
        with ServiceClient(*service.address) as c:
            with pytest.raises(ServiceError) as info:
                c.moa("count(Nums);", {"st": {"$session": "never-bound"}})
            assert info.value.code == "protocol"


class TestRejectionPaths:
    def test_rate_limit(self, db):
        config = ServiceConfig(rate=1.0, burst=1.0)
        with ServiceThread(db, config) as svc:
            with ServiceClient(*svc.address) as c:
                assert c.count("Nums") == 6  # burst token
                with pytest.raises(ServiceError) as info:
                    c.count("Nums")
                assert info.value.code == "rate"
                # Control ops are not rate limited.
                c.ping()

    def test_rate_is_per_session(self, db):
        config = ServiceConfig(rate=1.0, burst=1.0)
        with ServiceThread(db, config) as svc:
            with ServiceClient(*svc.address) as a, ServiceClient(
                *svc.address
            ) as b:
                assert a.count("Nums") == 6
                assert b.count("Nums") == 6  # b has its own bucket

    def test_busy_rejection_when_queue_full(self, db):
        config = ServiceConfig(max_inflight=1, max_queue=0)
        with ServiceThread(db, config) as svc:
            with ServiceClient(*svc.address) as slow, ServiceClient(
                *svc.address
            ) as fast:
                errors = []

                def run_slow():
                    try:
                        slow.mil(SLOW_MIL)
                    except ServiceError as exc:  # pragma: no cover
                        errors.append(exc)

                t = threading.Thread(target=run_slow)
                t.start()
                # Wait until the slow query owns the only slot.
                assert wait_until(
                    lambda: svc.service.admission.inflight >= 1
                )
                with pytest.raises(ServiceError) as info:
                    fast.mil(POINT_MIL)
                assert info.value.code == "busy"
                t.join()
                assert not errors
                # The slot frees up afterwards.
                assert isinstance(fast.mil(POINT_MIL), BATResult)

    def test_queue_deadline_rejection(self, db):
        config = ServiceConfig(
            max_inflight=1, max_queue=4, queue_timeout=0.05
        )
        with ServiceThread(db, config) as svc:
            with ServiceClient(*svc.address) as slow, ServiceClient(
                *svc.address
            ) as queued:
                t = threading.Thread(target=lambda: slow.mil(SLOW_MIL))
                t.start()
                assert wait_until(
                    lambda: svc.service.admission.inflight >= 1
                )
                with pytest.raises(ServiceError) as info:
                    queued.mil(POINT_MIL)
                assert info.value.code == "deadline"
                t.join()

    def test_query_deadline_aborts_mid_plan(self, service):
        with ServiceClient(*service.address) as c:
            with pytest.raises(ServiceError) as info:
                c.mil(SLOW_MIL, deadline_ms=0)
            assert info.value.code == "timeout"
            # The worker slot came back: the next query runs fine.
            assert isinstance(c.mil(POINT_MIL), BATResult)


class TestSessionLifecycle:
    def test_cleanup_on_clean_close(self, service, db):
        with ServiceClient(*service.address) as c:
            sid = c.session_id
            c.mil('persists("scratch", bat("Nums.__value__").sort);')
            assert db.pool.exists(f"@{sid}:scratch")
        assert wait_until(lambda: not db.pool.exists(f"@{sid}:scratch"))
        assert wait_until(lambda: sid not in service.service.sessions)

    def test_cleanup_on_abrupt_disconnect(self, service, db):
        c = ServiceClient(*service.address)
        sid = c.session_id
        c.mil('persists("scratch", bat("Nums.__value__").sort);')
        # Vanish without a close op (shutdown drops the connection even
        # though the makefile() wrapper still holds a dup'd fd).
        c._sock.shutdown(socket.SHUT_RDWR)
        c._sock.close()
        assert wait_until(lambda: not db.pool.exists(f"@{sid}:scratch"))
        assert wait_until(lambda: sid not in service.service.sessions)

    def test_disconnect_mid_query_cancels_plan(self, service, db):
        """Closing the socket while a long plan runs must abort it at
        the next checkpoint and reclaim the session."""
        sock = socket.create_connection(service.address)
        reader = sock.makefile("rb")
        # Consume the hello.
        from repro.service.protocol import read_message

        read_message(reader.read)
        sid = sorted(service.service.sessions)[-1]
        sock.sendall(pack_message({"op": "mil", "q": SLOW_MIL}))
        assert wait_until(lambda: service.service.admission.inflight >= 1)
        started = time.monotonic()
        sock.shutdown(socket.SHUT_RDWR)
        sock.close()
        # The session must be reclaimed well before the full plan
        # could have finished sorting 12 times.
        assert wait_until(lambda: sid not in service.service.sessions)
        assert service.service.sessions.get(sid) is None
        assert wait_until(lambda: service.service.admission.inflight == 0)
        assert time.monotonic() - started < 30

    def test_sessions_get_distinct_ids(self, service):
        with ServiceClient(*service.address) as a, ServiceClient(
            *service.address
        ) as b:
            assert a.session_id != b.session_id


class TestSmoke:
    def test_sixteen_concurrent_clients_clean_shutdown(self, db):
        """The CI smoke: 16 clients hammer point lookups concurrently;
        the service answers all of them, shuts down cleanly, and leaks
        neither threads nor sessions nor temp BATs."""
        before = {t.name for t in threading.enumerate()}
        config = ServiceConfig(max_inflight=4, max_queue=64, queue_timeout=10)
        results: list = []
        errors: list = []
        with ServiceThread(db, config) as svc:
            def client_run(k: int):
                try:
                    with ServiceClient(*svc.address) as c:
                        c.mil(
                            f'persists("mine", bat("Nums.__value__")'
                            f".select({k % 3}, 7));"
                        )
                        for _ in range(5):
                            out = c.mil(POINT_MIL)
                            results.append(sorted(out.tail))
                        c.moa("count(Nums);")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_run, args=(k,))
                for k in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 16 * 5
            assert all(r == [2, 3, 5, 7] for r in results)
            status = svc.service.status()
            assert status["queries_served"] >= 16 * 7
        # Clean shutdown: no service/worker threads survive, no
        # sessions or session temps linger in the shared pool.
        assert wait_until(
            lambda: not any(
                t.name.startswith(("mirror-query", "mirror-service"))
                for t in threading.enumerate()
            )
        )
        after = {t.name for t in threading.enumerate()}
        assert after <= before | {"MainThread"}
        assert not [n for n in db.pool._all_names() if n.startswith("@")]

    def test_orb_registration(self, db):
        from repro.daemons.orb import Orb

        orb = Orb()
        with ServiceThread(db, ServiceConfig(), orb=orb) as svc:
            assert "query-service" in orb.names()
            report = orb.invoke("query-service", "status", (), {})
            assert report["kind"] == "query-service"
            assert svc.service is not None
        assert "query-service" not in orb.names()
