"""Session temp-namespace semantics over one shared pool."""

from __future__ import annotations

import pytest

from repro.monet.bat import dense_bat
from repro.monet.errors import BBPError, MILRuntimeError
from repro.service.session import Session, SessionNamespace


def test_private_write_reads_back(db):
    ns = SessionNamespace(db.pool, "sA")
    ns.register("temp", dense_bat("int", [1, 2]))
    assert ns.exists("temp")
    assert ns.lookup("temp").tail_list() == [1, 2]
    # The shared catalog holds it under the mangled name only.
    assert db.pool.exists("@sA:temp")
    assert not db.pool.exists("temp")


def test_reads_fall_through_to_shared(db):
    ns = SessionNamespace(db.pool, "sA")
    assert ns.exists("Nums.__value__")
    assert len(ns.lookup("Nums.__value__")) == 6


def test_private_shadows_shared(db):
    ns = SessionNamespace(db.pool, "sA")
    ns.register("Nums.__value__", dense_bat("int", [99]))
    assert ns.lookup("Nums.__value__").tail_list() == [99]
    # The shared BAT is untouched.
    assert len(db.pool.lookup("Nums.__value__")) == 6


def test_sessions_cannot_see_each_other(db):
    a = SessionNamespace(db.pool, "sA")
    b = SessionNamespace(db.pool, "sB")
    a.register("temp", dense_bat("int", [1]))
    assert not b.exists("temp")
    b.register("temp", dense_bat("int", [2, 2]))
    assert a.lookup("temp").tail_list() == [1]
    assert b.lookup("temp").tail_list() == [2, 2]


def test_cannot_drop_shared(db):
    ns = SessionNamespace(db.pool, "sA")
    with pytest.raises(BBPError):
        ns.drop("Nums.__value__")
    with pytest.raises(BBPError):
        ns.drop("no-such-name")


def test_cleanup_drops_only_this_session(db):
    a = SessionNamespace(db.pool, "sA")
    b = SessionNamespace(db.pool, "sB")
    a.register("t1", dense_bat("int", [1]))
    a.register("t2", dense_bat("int", [2]))
    b.register("t1", dense_bat("int", [3]))
    assert a.cleanup() == 2
    assert not db.pool.exists("@sA:t1")
    assert db.pool.exists("@sB:t1")
    assert b.lookup("t1").tail_list() == [3]


def test_session_mil_persists_into_namespace(db):
    session = Session("sX", db)
    session.mil.run('persists("scratch", bat("Nums.__value__").sort);')
    assert db.pool.exists("@sX:scratch")
    result = session.mil.run('bat("scratch");')
    assert len(result.value) == 6
    dropped = session.close()
    assert dropped == 1
    assert not db.pool.exists("@sX:scratch")
    assert session.disconnected.is_set()


def test_session_cannot_unpersist_shared(db):
    session = Session("sX", db)
    with pytest.raises((BBPError, MILRuntimeError)):
        session.mil.run('unpersists("Nums.__value__");')
    assert db.pool.exists("Nums.__value__")
