"""Tombstone and patch deltas: the delete/update write path.

Covers the mutation machinery layer by layer, mirroring
``test_append_delta.py`` for the two new delta kinds:
``BAT.delete_positions``/``update_positions`` (copy-on-write survivors,
O(changed) flag maintenance, dense-tail renumbering),
``FragmentedBAT.delete``/``update`` (fragment-granular tombstones and
patches, prefix sharing, dense-head re-densification on both split
strategies), ``fold_tail(compact=True)``/``rebalance`` (starved-run
compaction and round-robin skew repair), ``BATBufferPool.delete``/
``update`` (epoch bumps, snapshot isolation), the group-commit WAL
(one fsync per batch of concurrent mutators), and the acceptance
tripwire: a spill-free 1M-BUN pipeline over a BAT carrying live
tombstone *and* patch deltas never coalesces mid-plan and matches the
monolithic reference BUN for BUN on both executor backends.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.monet import bbp as bbp_module
from repro.monet import fragments as fr
from repro.monet.bat import BAT, Column, VoidColumn, bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import (
    InvalidMutationBatch,
    InvalidPositions,
    UnknownMutationTarget,
)
from repro.monet.fragments import (
    FragmentationPolicy,
    FragmentedBAT,
    fold_tail,
    fragment_bat,
    rebalance,
)
from repro.monet.mil import MILInterpreter, run_program

STRATEGIES = ("range", "roundrobin")


def _backends():
    backends = ["thread"]
    if fr.get_backend("process").available():
        backends.append("process")
    return backends


# ----------------------------------------------------------------------
# BAT.delete_positions / BAT.update_positions
# ----------------------------------------------------------------------


def test_bat_delete_positions_is_copy_on_write():
    original = dense_bat("int", [10, 20, 30, 40])
    survivor = original.delete_positions([1, 3])
    assert survivor is not original
    assert original.tail_list() == [10, 20, 30, 40]
    assert survivor.tail_list() == [10, 30]
    # Void heads re-densify to the new length.
    assert survivor.head.is_void and len(survivor) == 2


def test_bat_delete_empty_batch_returns_self():
    original = dense_bat("int", [1, 2])
    assert original.delete_positions([]) is original


def test_bat_delete_preserves_all_four_flags():
    # Deletion is a monotone gather: every flag that held before holds
    # after, unlike append's conservative clearing.
    base = BAT(
        Column("oid", np.array([0, 1, 2, 3], dtype=np.int64)),
        Column("int", np.array([5, 6, 7, 8], dtype=np.int64)),
        hsorted=True,
        hkey=True,
        tsorted=True,
        tkey=True,
    )
    survivor = base.delete_positions([2])
    assert survivor.hsorted and survivor.hkey
    assert survivor.tsorted and survivor.tkey
    assert survivor.tail_list() == [5, 6, 8]


def test_bat_delete_out_of_range_positions_raise():
    base = dense_bat("int", [1, 2, 3])
    with pytest.raises(InvalidPositions):
        base.delete_positions([3])
    with pytest.raises(InvalidPositions):
        base.delete_positions([-1])


def test_bat_delete_renumbers_provably_dense_tail():
    # The Moa extent shape: oid tail 0..n-1, sorted + key.  After the
    # delete the tail must be the dense run of the *new* length.
    extent = BAT(
        VoidColumn(0, 5),
        Column("oid", np.arange(5, dtype=np.int64)),
        tsorted=True,
        tkey=True,
    )
    survivor = extent.delete_positions([1, 4], renumber_dense_tail=True)
    assert survivor.tail_list() == [0, 1, 2]
    assert survivor.tsorted and survivor.tkey


def test_bat_delete_renumber_rejects_non_dense_tail():
    sparse = BAT(
        VoidColumn(0, 3),
        Column("oid", np.array([0, 5, 9], dtype=np.int64)),
        tsorted=True,
        tkey=True,
    )
    with pytest.raises(InvalidMutationBatch):
        sparse.delete_positions([1], renumber_dense_tail=True)


def test_bat_update_positions_is_copy_on_write():
    original = dense_bat("int", [1, 2, 3])
    patched = original.update_positions([1], [20])
    assert original.tail_list() == [1, 2, 3]
    assert patched.tail_list() == [1, 20, 3]
    assert patched.head is original.head  # heads never change


def test_bat_update_duplicate_positions_last_wins():
    base = dense_bat("int", [1, 2, 3])
    patched = base.update_positions([0, 0], [10, 11])
    assert patched.tail_list() == [11, 2, 3]


def test_bat_update_rechecks_sortedness_locally():
    base = BAT(
        VoidColumn(0, 4),
        Column("int", np.array([1, 2, 3, 4], dtype=np.int64)),
        tsorted=True,
        tkey=True,
    )
    # An in-order patch keeps tsorted; tkey is conservatively cleared
    # (proving keyness would cost a full scan, not O(changed)).
    in_order = base.update_positions([1], [2])
    assert in_order.tsorted and not in_order.tkey
    out_of_order = base.update_positions([1], [9])
    assert not out_of_order.tsorted


def test_bat_update_to_nil_clears_tail_flags():
    # The kernel NIL rule: NIL compares false against everything, so a
    # NaN patch fails the local neighbour check and clears tsorted.
    base = BAT(
        VoidColumn(0, 3),
        Column("dbl", np.array([1.0, 2.0, 3.0])),
        tsorted=True,
        tkey=True,
    )
    patched = base.update_positions([1], [None])
    assert patched.tail_list() == [1.0, None, 3.0]
    assert not patched.tsorted and not patched.tkey


def test_bat_update_misaligned_values_raise():
    base = dense_bat("int", [1, 2, 3])
    with pytest.raises(InvalidMutationBatch):
        base.update_positions([0, 1], [5])


# ----------------------------------------------------------------------
# FragmentedBAT.delete / FragmentedBAT.update
# ----------------------------------------------------------------------


def _fragmented(values, strategy, target=4):
    policy = FragmentationPolicy(target_size=target, strategy=strategy)
    return fragment_bat(dense_bat("int", values), policy)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fragmented_delete_positional_semantics(strategy):
    fb = _fragmented(list(range(16)), strategy)
    survivor = fb.delete([0, 7, 15])
    assert survivor.to_bat().tail_list() == [
        v for v in range(16) if v not in (0, 7, 15)
    ]
    # The receiver is untouched (copy-on-write).
    assert fb.to_bat().tail_list() == list(range(16))


def test_fragmented_delete_range_shares_untouched_prefix():
    fb = _fragmented(list(range(16)), "range")
    # Tombstones only in the third fragment: everything before it is
    # the same object; fragments after it share tails by reference
    # (only their void seqbase shifts).
    survivor = fb.delete([8, 9])
    assert survivor.fragments[0] is fb.fragments[0]
    assert survivor.fragments[1] is fb.fragments[1]
    assert survivor.fragments[3].tail is fb.fragments[3].tail


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fragmented_delete_redensifies_dense_heads(strategy):
    fb = _fragmented(list(range(12)), strategy)
    survivor = fb.delete([2, 5, 11])
    coalesced = survivor.to_bat()
    # Moa's positional-fetchjoin discipline: heads are again 0..n-1.
    assert coalesced.head_values().tolist() == list(range(9))


def test_fragmented_delete_drops_emptied_fragments():
    fb = _fragmented(list(range(8)), "range", target=2)
    before = fb.nfragments
    survivor = fb.delete([2, 3])  # the whole second fragment
    assert survivor.nfragments == before - 1
    assert survivor.to_bat().tail_list() == [0, 1, 4, 5, 6, 7]


def test_fragmented_delete_everything_keeps_one_empty_fragment():
    fb = _fragmented(list(range(6)), "range")
    survivor = fb.delete(range(6))
    assert survivor.nfragments == 1 and len(survivor) == 0


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fragmented_update_touches_only_hit_fragments(strategy):
    fb = _fragmented(list(range(16)), strategy)
    patched = fb.update([3], [300])
    touched = sum(
        1
        for before, after in zip(fb.fragments, patched.fragments)
        if before is not after
    )
    assert touched == 1
    assert len(patched) == len(fb)
    tails = patched.to_bat().tail_list()
    assert tails[3] == 300
    assert [t for i, t in enumerate(tails) if i != 3] == [
        v for v in range(16) if v != 3
    ]


def test_fragmented_update_preserves_fragmentation_and_heads():
    fb = _fragmented(list(range(16)), "roundrobin")
    patched = fb.update([0, 15], [100, 115])
    for before, after in zip(fb.positions, patched.positions):
        assert after is before  # alignment survives by reference
    assert patched.to_bat().head_values().tolist() == list(range(16))


# ----------------------------------------------------------------------
# fold_tail(compact=True) / rebalance
# ----------------------------------------------------------------------


def test_fold_tail_compaction_is_opt_in():
    fb = _fragmented(list(range(32)), "range", target=8)
    starved = fb.delete([p for p in range(32) if p % 8 not in (0, 1)])
    assert min(starved.fragment_sizes()) * 2 < 8
    # Default fold (the per-operator intermediate path) leaves starved
    # runs alone -- selections routinely shrink fragments and must not
    # pay a copy per operator.
    assert fold_tail(starved, fb.policy) is starved
    compacted = fold_tail(starved, fb.policy, compact=True)
    assert compacted.nfragments < starved.nfragments
    assert compacted.to_bat().tail_list() == starved.to_bat().tail_list()
    assert max(compacted.fragment_sizes()) <= 8


def test_fold_tail_compacts_roundrobin_runs():
    policy = FragmentationPolicy(target_size=8, strategy="roundrobin")
    fb = fragment_bat(dense_bat("int", list(range(32))), policy)
    kept = [0, 1, 16, 17]
    starved = fb.delete([p for p in range(32) if p not in kept])
    assert starved.nfragments > 1
    assert min(starved.fragment_sizes()) * 2 < policy.target_size
    compacted = fold_tail(starved, policy, compact=True)
    assert compacted.nfragments < starved.nfragments
    assert sorted(compacted.to_bat().tail_list()) == kept
    # Global positions stay sorted per fragment (the invariant every
    # round-robin operator's searchsorted mapping leans on).
    for positions in compacted.positions:
        assert np.all(np.diff(positions) > 0)


def test_rebalance_repairs_roundrobin_delta_skew():
    # The merge-daemon bugfix: a tombstoned round-robin split whose
    # delta tail keeps absorbing appends skews without any fragment
    # crossing the fold threshold -- fold_tail alone cannot see it.
    policy = FragmentationPolicy(target_size=8, strategy="roundrobin")
    fb = fragment_bat(dense_bat("int", list(range(16))), policy)
    fb = fb.delete([p for p in range(16) if p not in (0, 1)])
    fb = fb.append(tails=list(range(100, 110)))
    sizes = fb.fragment_sizes()
    assert max(sizes) <= 2 * policy.target_size  # fold has nothing to slice
    assert max(sizes) - min(sizes) > policy.target_size
    assert fold_tail(fb, policy, compact=True).fragment_sizes() == sizes
    balanced = rebalance(fb, policy)
    sizes = balanced.fragment_sizes()
    assert max(sizes) - min(sizes) <= policy.target_size
    assert sorted(balanced.to_bat().tail_list()) == sorted(
        fb.to_bat().tail_list()
    )


def test_pool_merge_deltas_rebalances_skewed_registration():
    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=8, strategy="roundrobin")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(16))), policy)
    )
    pool.delete("x", [p for p in range(16) if p not in (0, 1)])
    pool.append("x", tails=list(range(100, 110)))
    before = pool.lookup_fragments("x").fragment_sizes()
    assert max(before) - min(before) > policy.target_size
    assert pool.merge_deltas(policy) >= 1
    after = pool.lookup_fragments("x").fragment_sizes()
    assert max(after) - min(after) <= policy.target_size
    assert sorted(pool.lookup("x").tail_list()) == sorted(
        [0, 1] + list(range(100, 110))
    )


def test_pool_merge_deltas_compacts_tombstoned_fragments():
    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=8, strategy="range")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(64))), policy)
    )
    pool.delete("x", [p for p in range(64) if p % 8 not in (0, 1)])
    starved = pool.lookup_fragments("x").nfragments
    assert pool.merge_deltas(policy) >= 1
    assert pool.lookup_fragments("x").nfragments < starved
    assert pool.lookup("x").tail_list() == [
        v for v in range(64) if v % 8 in (0, 1)
    ]


# ----------------------------------------------------------------------
# BATBufferPool.delete / update: epochs, snapshots, errors
# ----------------------------------------------------------------------


def test_pool_delete_update_bump_epoch_and_isolate_snapshots():
    pool = BATBufferPool()
    pool.register("x", dense_bat("int", [1, 2, 3]))
    snap = pool.read_snapshot()
    before = pool.epoch
    pool.delete("x", [0])
    pool.update("x", [0], [20])
    assert pool.epoch == before + 2
    assert pool.lookup("x").tail_list() == [20, 3]
    # The pinned snapshot still reads the pre-mutation rows.
    assert snap.lookup("x").tail_list() == [1, 2, 3]


def test_pool_delete_update_unknown_name_raise():
    pool = BATBufferPool()
    with pytest.raises(UnknownMutationTarget):
        pool.delete("ghost", [0])
    with pytest.raises(UnknownMutationTarget):
        pool.update("ghost", [0], [1])


def test_pool_delete_renumber_rejected_for_fragmented():
    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=4, strategy="range")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(8))), policy)
    )
    with pytest.raises(InvalidMutationBatch):
        pool.delete("x", [0], renumber_dense_tails=True)


def test_pool_update_oid_tail_advances_generator():
    pool = BATBufferPool()
    pool.register("x", dense_bat("oid", [1, 2]))
    pool.update("x", [0], [900])
    assert pool.new_oids(1) > 900


def test_failed_delete_leaves_pool_unchanged():
    pool = BATBufferPool()
    pool.register("x", dense_bat("int", [1, 2]))
    epoch = pool.epoch
    with pytest.raises(InvalidPositions):
        pool.delete("x", [5])
    assert pool.epoch == epoch
    assert pool.lookup("x").tail_list() == [1, 2]


# ----------------------------------------------------------------------
# Acceptance tripwire: live deltas never coalesce in a 1M-BUN plan
# ----------------------------------------------------------------------

PIPELINE = """
s := bat("fact").select(oid(50), oid(800));
j := s.join(bat("dim"));
c := count(s);
sum(j);
"""


@pytest.mark.parametrize("backend", _backends())
def test_live_delta_pipeline_never_coalesces_1m(backend, monkeypatch):
    """The PR acceptance property: a spill-free 1M-BUN pipeline
    (select -> join -> aggregate) over a fragmented BAT carrying *live*
    tombstone and patch deltas -- deleted and updated through the pool,
    never rebalanced -- runs without a single coalesce (class-level
    ``FragmentedBAT.to_bat`` and ``fragments.coalesce`` are both
    tripwired) and matches the monolithic reference BUN for BUN."""
    if backend == "process":
        monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    n = 1_000_000
    rng = np.random.default_rng(77)
    tails = rng.integers(0, 1000, n)
    base = BAT(VoidColumn(0, n), Column("oid", tails))
    dim = bat_from_pairs(
        "oid", "dbl", [(i, float(i) * 0.5) for i in rng.permutation(1000)]
    )
    policy = FragmentationPolicy(
        target_size=128 * 1024, strategy="range", workers=2, backend=backend
    )
    deleted = np.unique(rng.choice(n, 5_000, replace=False))
    patched = np.unique(rng.choice(n - len(deleted), 5_000, replace=False))
    patch_values = rng.integers(0, 1000, len(patched)).tolist()

    frag_pool = BATBufferPool()
    frag_pool.register_fragmented("fact", fragment_bat(base, policy))
    frag_pool.register_fragmented("dim", fragment_bat(dim, policy))
    frag_pool.delete("fact", deleted)
    frag_pool.update("fact", patched, patch_values)
    live = frag_pool.lookup_fragments("fact")
    # The deltas really are live: the fragmentation drifted from the
    # clean split and no rebalance has run.
    assert live.fragment_sizes() != fragment_bat(base, policy).fragment_sizes()

    def forbidden_coalesce(value):
        raise AssertionError("fragments.coalesce called mid-plan")

    def forbidden_to_bat(self):
        raise AssertionError("FragmentedBAT.to_bat called mid-plan")

    monkeypatch.setattr(fr, "coalesce", forbidden_coalesce)
    monkeypatch.setattr(FragmentedBAT, "to_bat", forbidden_to_bat)
    interpreter = MILInterpreter(frag_pool, fragment_policy=policy)
    result = interpreter.run(PIPELINE)
    monkeypatch.undo()
    if backend == "process":
        monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    assert isinstance(result.env["s"], FragmentedBAT)
    assert isinstance(result.env["j"], FragmentedBAT)
    # Spill-free: the partitioned join build left no spill unit behind.
    if bbp_module._SPILL_ROOT is not None:
        assert list(bbp_module._SPILL_ROOT.iterdir()) == []

    mono = base.delete_positions(deleted)
    mono = mono.update_positions(patched, patch_values)
    mono_pool = BATBufferPool()
    mono_pool.register("fact", mono)
    mono_pool.register("dim", dim)
    expected = run_program(PIPELINE, mono_pool)
    assert result.env["c"] == expected.env["c"]
    assert result.value == pytest.approx(expected.value)
    got_s = result.env["s"].to_bat()
    want_s = expected.env["s"]
    assert np.array_equal(got_s.head_values(), want_s.head_values())
    assert np.array_equal(got_s.tail_values(), want_s.tail_values())


# ----------------------------------------------------------------------
# Group-commit WAL: one fsync per batch of concurrent mutators
# ----------------------------------------------------------------------


def test_wal_counters_track_serial_mutations(tmp_path, monkeypatch):
    monkeypatch.setattr(bbp_module, "WAL_GROUP_MS", 0.0)
    pool = BATBufferPool()
    pool.register("x", dense_bat("int", [1, 2, 3]))
    pool.save(tmp_path)
    pool.append("x", tails=[4])
    pool.delete("x", [0])
    pool.update("x", [0], [20])
    # A lone mutator is its own leader: one record, one fsync, each.
    assert pool.wal_records == 3
    assert pool.wal_fsyncs == 3


def test_group_commit_fewer_fsyncs_than_records_at_8_writers(
    tmp_path, monkeypatch
):
    """The PR acceptance property for the WAL: 8 concurrent writers
    issuing 160 mutations between them group-commit into measurably
    fewer fsyncs than records -- and every record still replays."""
    monkeypatch.setattr(bbp_module, "WAL_GROUP_MS", 10.0)
    pool = BATBufferPool()
    writers, per_writer = 8, 20
    for i in range(writers):
        pool.register(f"w{i}", dense_bat("int", list(range(4))))
    pool.save(tmp_path)
    barrier = threading.Barrier(writers)
    errors = []

    def mutate(i: int):
        try:
            barrier.wait(timeout=30)
            name = f"w{i}"
            for step in range(per_writer):
                if step % 3 == 0:
                    pool.append(name, tails=[100 + step])
                elif step % 3 == 1:
                    pool.delete(name, [0])
                else:
                    pool.update(name, [0], [77])
        except Exception as exc:  # pragma: no cover
            errors.append((i, exc))

    threads = [
        threading.Thread(target=mutate, args=(i,)) for i in range(writers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:3]
    assert pool.wal_records == writers * per_writer
    assert pool.wal_fsyncs < pool.wal_records / 2

    restored = BATBufferPool.load(tmp_path)
    for i in range(writers):
        assert (
            restored.lookup(f"w{i}").tail_list()
            == pool.lookup(f"w{i}").tail_list()
        ), f"w{i}"
