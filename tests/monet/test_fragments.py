"""Unit and integration tests for the fragmented BAT subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mirror import MirrorDBMS
from repro.ir.index import InvertedIndex
from repro.moa import mapping
from repro.monet import fragments as fr
from repro.monet.bat import BAT, Column, VoidColumn, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import BBPError, KernelError
from repro.monet.fragments import (
    FragmentationPolicy,
    FragmentedBAT,
    fragment_bat,
)


def _ints(n, *, distinct=50, seed=0):
    rng = np.random.default_rng(seed)
    return BAT(VoidColumn(0, n), Column("int", rng.integers(0, distinct, n)))


# ----------------------------------------------------------------------
# Policy and splitting
# ----------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(KernelError):
        FragmentationPolicy(target_size=0)
    with pytest.raises(KernelError):
        FragmentationPolicy(strategy="hash")


def test_range_split_shapes_and_voidness():
    bat = _ints(250)
    fb = fragment_bat(bat, FragmentationPolicy(target_size=100))
    assert fb.fragment_sizes() == [100, 100, 50]
    # Range fragments of a void head stay void with shifted seqbases.
    assert [f.head.seqbase for f in fb.fragments] == [0, 100, 200]
    assert all(f.hdense for f in fb.fragments)
    # Range fragments share the parent's tail buffer (views, no copy).
    assert fb.fragments[0].tail.values.base is bat.tail.values


def test_roundrobin_split_tracks_positions():
    bat = _ints(10)
    fb = fragment_bat(bat, FragmentationPolicy(target_size=4, strategy="roundrobin"))
    assert fb.nfragments == 3
    assert fb.positions is not None
    assert fb.global_positions(0).tolist() == [0, 3, 6, 9]
    assert fb.to_bat().to_pairs() == bat.to_pairs()
    # Round-robin coalesce re-detects the dense head.
    assert fb.to_bat().hdense


def test_small_bat_stays_single_fragment():
    bat = _ints(10)
    fb = fragment_bat(bat, FragmentationPolicy(target_size=100))
    assert fb.nfragments == 1
    assert fb.to_bat() is bat


def test_empty_bat_fragments():
    bat = _ints(0)
    for strategy in ("range", "roundrobin"):
        fb = fragment_bat(bat, FragmentationPolicy(target_size=4, strategy=strategy))
        assert len(fb) == 0
        assert fb.to_bat().to_pairs() == []


def test_fragmented_bat_validation():
    with pytest.raises(KernelError):
        FragmentedBAT([])
    a = dense_bat("int", [1, 2])
    b = dense_bat("str", ["x"])
    with pytest.raises(KernelError):
        FragmentedBAT([a, b])
    with pytest.raises(KernelError):
        FragmentedBAT([a], positions=[np.arange(1)])


def test_grouped_aggregate_requires_aligned_layout():
    values = fragment_bat(_ints(40), FragmentationPolicy(target_size=10))
    grouping = fragment_bat(_ints(40), FragmentationPolicy(target_size=13))
    with pytest.raises(KernelError):
        fr.grouped_sum(values, grouping)


def test_explicit_worker_counts_agree():
    bat = _ints(1000, seed=3)
    fb = fragment_bat(bat, FragmentationPolicy(target_size=100))
    serial = fr.select(fb, 7, workers=1).to_bat().to_pairs()
    parallel = fr.select(fb, 7, workers=4).to_bat().to_pairs()
    assert serial == parallel


# ----------------------------------------------------------------------
# Buffer pool integration
# ----------------------------------------------------------------------


def test_bbp_register_and_transparent_lookup(pool: BATBufferPool):
    bat = _ints(300, seed=1)
    fb = fragment_bat(bat, FragmentationPolicy(target_size=64))
    pool.register_fragmented("lib.values", fb)
    assert pool.is_fragmented("lib.values")
    assert "lib.values" in pool
    assert pool.names("lib.") == ["lib.values"]
    looked_up = pool.lookup("lib.values")
    assert looked_up.to_pairs() == bat.to_pairs()
    assert looked_up.name == "lib.values"
    assert pool.lookup_fragments("lib.values") is fb
    # Lookup caches the coalesced BAT.
    assert pool.lookup("lib.values") is looked_up


def test_bbp_lookup_fragments_splits_monolithic_on_the_fly(pool):
    pool.register("mono", _ints(200, seed=2))
    fb = pool.lookup_fragments("mono", FragmentationPolicy(target_size=50))
    assert fb.nfragments == 4
    assert fb.to_bat().to_pairs() == pool.lookup("mono").to_pairs()


def test_bbp_name_collision_and_replace(pool):
    pool.register("x", _ints(5))
    with pytest.raises(BBPError):
        pool.register_fragmented("x", fragment_bat(_ints(5)))
    pool.register_fragmented("x", fragment_bat(_ints(8)), replace=True)
    assert pool.is_fragmented("x")
    # Re-registering monolithic clears the fragmented entry.
    pool.register("x", _ints(3), replace=True)
    assert not pool.is_fragmented("x")
    assert len(pool.lookup("x")) == 3
    pool.drop("x")
    assert "x" not in pool


def test_bbp_fragmented_bumps_oid_sequence(pool):
    bat = BAT(VoidColumn(40, 10), Column("int", np.arange(10, dtype=np.int64)))
    pool.register_fragmented("f", fragment_bat(bat, FragmentationPolicy(target_size=4)))
    assert pool.oid_generator.current >= 50


# ----------------------------------------------------------------------
# Mapping-layer threshold
# ----------------------------------------------------------------------


def test_mapping_threshold_fragments_large_attributes(pool):
    docs = [{"value": i} for i in range(64)]
    from repro.moa.types import AtomicType, SetType, TupleType

    ty = SetType(TupleType((("value", AtomicType("int")),)))
    with mapping.fragmentation(16, FragmentationPolicy(target_size=16)):
        mapping.load_collection(pool, "Lib", ty, docs)
    assert pool.is_fragmented("Lib.value")
    assert pool.lookup_fragments("Lib.value").nfragments == 4
    # The extent spine stays monolithic.
    assert not pool.is_fragmented("Lib.__extent__")
    # Reconstruction is oblivious to the physical split.
    assert mapping.reconstruct_collection(pool, "Lib", ty) == docs
    # Threshold restored after the context.
    assert mapping.get_fragment_threshold() is None


def test_mirror_dbms_fragment_threshold_end_to_end():
    db = MirrorDBMS(
        fragment_threshold=8,
        fragment_policy=FragmentationPolicy(target_size=8),
    )
    db.define(
        "define Lib as SET<TUPLE<Atomic<str>: name, "
        "CONTREP<Text>: annotation>>;"
    )
    rows = [
        {"name": f"img{i}", "annotation": f"red sunset number {i} over the sea"}
        for i in range(20)
    ]
    db.insert("Lib", rows)
    assert db.pool.is_fragmented("Lib.name")
    assert db.pool.is_fragmented("Lib.annotation.term")
    assert db.pool.lookup_fragments("Lib.name").nfragments >= 2
    assert db.pool.lookup_fragments("Lib.annotation.term").nfragments >= 2
    stats = db.stats("Lib", "annotation")
    result = db.query(
        "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib));",
        {"query": ["sunset", "sea"], "stats": stats},
    )
    assert len(result.value) == 20
    assert all(score > 0 for score in result.value)
    # And the same database without fragmentation ranks identically.
    db2 = MirrorDBMS()
    db2.define(db.ddl())
    db2.insert("Lib", rows)
    stats2 = db2.stats("Lib", "annotation")
    baseline = db2.query(
        "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib));",
        {"query": ["sunset", "sea"], "stats": stats2},
    )
    assert result.value == pytest.approx(baseline.value)


# ----------------------------------------------------------------------
# IR parallel scoring
# ----------------------------------------------------------------------


def test_score_sum_parallel_matches_serial():
    rng = np.random.default_rng(7)
    vocabulary = [f"t{i}" for i in range(30)]
    documents = []
    for _ in range(120):
        terms = rng.choice(vocabulary, size=rng.integers(1, 12))
        documents.append({t: int(rng.integers(1, 5)) for t in terms})
    index = InvertedIndex(documents)
    query = ["t1", "t5", "t29", "missing"]
    serial = index.score_sum(query)
    for fragment_size in (7, 64, 10**6):
        parallel = index.score_sum_parallel(query, fragment_size=fragment_size)
        assert parallel == pytest.approx(serial)
    with_workers = index.score_sum_parallel(query, fragment_size=16, workers=2)
    assert with_workers == pytest.approx(serial)


def test_score_sum_parallel_empty_cases():
    index = InvertedIndex([{}, {}])
    assert index.score_sum_parallel(["x"]).tolist() == [0.0, 0.0]
    index2 = InvertedIndex([{"a": 1}])
    assert index2.score_sum_parallel([]).tolist() == [0.0]
