"""Multiplexed ([op]) and scalar operator tables."""

import numpy as np
import pytest

from repro.monet.bat import dense_bat
from repro.monet.errors import KernelError
from repro.monet.multiplex import multiplex, scalar_op


class TestArithmetic:
    def test_add_two_bats(self):
        a = dense_bat("int", [1, 2, 3])
        b = dense_bat("int", [10, 20, 30])
        assert multiplex("+", a, b).tail_list() == [11, 22, 33]

    def test_add_scalar_broadcast(self):
        a = dense_bat("int", [1, 2])
        assert multiplex("+", a, 100).tail_list() == [101, 102]

    def test_scalar_first_operand(self):
        a = dense_bat("dbl", [1.0, 2.0])
        assert multiplex("-", 10.0, a).tail_list() == [9.0, 8.0]

    def test_mul(self):
        a = dense_bat("dbl", [1.5, 2.0])
        assert multiplex("*", a, 2.0).tail_list() == [3.0, 4.0]

    def test_div_promotes_to_dbl(self):
        a = dense_bat("int", [7, 8])
        result = multiplex("/", a, 2)
        assert result.ttype == "dbl"
        assert result.tail_list() == [3.5, 4.0]

    def test_spelled_aliases(self):
        a = dense_bat("int", [4])
        assert multiplex("add", a, 1).tail_list() == [5]
        assert multiplex("mul", a, 2).tail_list() == [8]

    def test_min_max(self):
        a = dense_bat("int", [1, 9])
        b = dense_bat("int", [5, 5])
        assert multiplex("min", a, b).tail_list() == [1, 5]
        assert multiplex("max", a, b).tail_list() == [5, 9]

    def test_pow(self):
        a = dense_bat("dbl", [2.0, 3.0])
        assert multiplex("pow", a, 2.0).tail_list() == [4.0, 9.0]


class TestUnary:
    def test_log(self):
        a = dense_bat("dbl", [1.0, np.e])
        result = multiplex("log", a).tail_list()
        assert result[0] == pytest.approx(0.0)
        assert result[1] == pytest.approx(1.0)

    def test_exp_sqrt(self):
        a = dense_bat("dbl", [0.0, 4.0])
        assert multiplex("exp", a).tail_list()[0] == pytest.approx(1.0)
        assert multiplex("sqrt", a).tail_list()[1] == pytest.approx(2.0)

    def test_abs_neg(self):
        a = dense_bat("int", [-3, 4])
        assert multiplex("abs", a).tail_list() == [3, 4]
        assert multiplex("neg", a).tail_list() == [3, -4]

    def test_not(self):
        a = dense_bat("bit", [True, False])
        assert multiplex("not", a).tail_list() == [False, True]

    def test_dbl_cast(self):
        a = dense_bat("int", [1, 2])
        result = multiplex("dbl", a)
        assert result.ttype == "dbl"
        assert result.tail_list() == [1.0, 2.0]


class TestComparison:
    def test_eq_numeric(self):
        a = dense_bat("int", [1, 2, 1])
        result = multiplex("=", a, 1)
        assert result.ttype == "bit"
        assert result.tail_list() == [True, False, True]

    def test_eq_strings(self):
        a = dense_bat("str", ["x", "y"])
        assert multiplex("=", a, "x").tail_list() == [True, False]

    def test_ne(self):
        a = dense_bat("int", [1, 2])
        assert multiplex("!=", a, 1).tail_list() == [False, True]

    def test_ordering(self):
        a = dense_bat("int", [1, 5, 10])
        assert multiplex("<", a, 5).tail_list() == [True, False, False]
        assert multiplex("<=", a, 5).tail_list() == [True, True, False]
        assert multiplex(">", a, 5).tail_list() == [False, False, True]
        assert multiplex(">=", a, 5).tail_list() == [False, True, True]

    def test_and_or(self):
        a = dense_bat("bit", [True, True, False])
        b = dense_bat("bit", [True, False, False])
        assert multiplex("and", a, b).tail_list() == [True, False, False]
        assert multiplex("or", a, b).tail_list() == [True, True, False]

    def test_ifthenelse(self):
        cond = dense_bat("bit", [True, False])
        assert multiplex("ifthenelse", cond, 1, 2).tail_list() == [1, 2]


class TestErrors:
    def test_needs_a_bat(self):
        with pytest.raises(KernelError):
            multiplex("+", 1, 2)

    def test_length_mismatch(self):
        with pytest.raises(KernelError):
            multiplex("+", dense_bat("int", [1]), dense_bat("int", [1, 2]))

    def test_unknown_op(self):
        with pytest.raises(KernelError):
            multiplex("frobnicate", dense_bat("int", [1]))

    def test_wrong_arity(self):
        with pytest.raises(KernelError):
            multiplex("log", dense_bat("int", [1]), dense_bat("int", [2]))

    def test_arithmetic_on_strings_rejected(self):
        with pytest.raises(KernelError):
            multiplex("+", dense_bat("str", ["a"]), 1)

    def test_misaligned_void_heads(self):
        from repro.monet.bat import BAT, Column, VoidColumn

        a = BAT(VoidColumn(0, 2), Column("int", np.array([1, 2])))
        b = BAT(VoidColumn(9, 2), Column("int", np.array([3, 4])))
        with pytest.raises(KernelError):
            multiplex("+", a, b)


class TestScalarOps:
    def test_arithmetic(self):
        assert scalar_op("+", 1, 2) == 3
        assert scalar_op("/", 7, 2) == 3.5

    def test_comparison(self):
        assert scalar_op("=", 1, 1) is True
        assert scalar_op("!=", 1, 1) is False
        assert scalar_op("<", 1, 2) is True

    def test_string_equality(self):
        assert scalar_op("=", "a", "a") is True
        assert scalar_op("=", "a", "b") is False

    def test_unary(self):
        assert scalar_op("log", 1.0) == pytest.approx(0.0)
        assert scalar_op("neg", 5) == -5

    def test_ifthenelse(self):
        assert scalar_op("ifthenelse", True, "yes", "no") == "yes"

    def test_unknown(self):
        with pytest.raises(KernelError):
            scalar_op("mystery", 1)
