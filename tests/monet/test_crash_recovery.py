"""Crash-recovery: fault-injected saves, WAL replay, and sweeps.

The contract under test (see ``BATBufferPool.save``/``load``): a crash
at *any* point during save or append never loses a committed append and
never surfaces a partial one.  Saves commit atomically through the
catalog replacement; appends commit through fsynced ``wal.jsonl``
records replayed on load (a torn trailing record is discarded).  Also
covered: the ``@``-namespace exclusion from persistence, the
unreferenced-file sweep, and the stale spill-directory sweep.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.monet import bbp as bbp_module
from repro.monet.bat import BAT, Column, bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import MonetError
from repro.monet.fragments import FragmentationPolicy, fragment_bat


def _seed_pool() -> BATBufferPool:
    pool = BATBufferPool()
    pool.register("a", dense_bat("int", [1, 2, 3]))
    pool.register("b", dense_bat("str", ["x", None, "y"]))
    policy = FragmentationPolicy(target_size=2, strategy="range")
    pool.register_fragmented(
        "f", fragment_bat(dense_bat("int", [10, 20, 30, 40, 50]), policy)
    )
    return pool


# ----------------------------------------------------------------------
# Fault-injected saves
# ----------------------------------------------------------------------


def test_crash_writing_data_file_preserves_previous_save(tmp_path, monkeypatch):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[9])  # committed: WAL record is on disk
    pool.register("c", dense_bat("int", [7]))

    calls = {"n": 0}
    real_savez = np.savez

    def failing_savez(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise OSError("injected: disk full")
        return real_savez(*args, **kwargs)

    monkeypatch.setattr(np, "savez", failing_savez)
    with pytest.raises(OSError, match="injected"):
        pool.save(tmp_path)
    monkeypatch.undo()

    restored = BATBufferPool.load(tmp_path)
    # The committed append survives (base catalog + WAL replay) ...
    assert restored.lookup("a").tail_list() == [1, 2, 3, 9]
    assert restored.lookup("b").tail_list() == ["x", None, "y"]
    assert restored.lookup("f").tail_list() == [10, 20, 30, 40, 50]
    # ... and nothing from the aborted save is visible.
    assert not restored.exists("c")


def test_crash_replacing_catalog_preserves_previous_save(tmp_path, monkeypatch):
    pool = _seed_pool()
    pool.save(tmp_path)
    before = json.loads((tmp_path / "catalog.json").read_text())
    pool.append("a", tails=[42])
    pool.register("later", dense_bat("int", [5]))

    def failing_replace(path, text):
        raise OSError("injected: power loss at commit")

    monkeypatch.setattr(bbp_module, "replace_text", failing_replace)
    with pytest.raises(OSError, match="injected"):
        pool.save(tmp_path)
    monkeypatch.undo()

    after = json.loads((tmp_path / "catalog.json").read_text())
    assert after == before  # the commit point never moved
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [1, 2, 3, 42]
    assert not restored.exists("later")


def test_successful_save_supersedes_wal_and_sweeps_old_generation(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[9])
    assert (tmp_path / "wal.jsonl").exists()
    pool.save(tmp_path)
    # The WAL is folded into the new generation and truncated.
    assert not (tmp_path / "wal.jsonl").exists()
    catalog = json.loads((tmp_path / "catalog.json").read_text())
    referenced = set()
    for entry in catalog["bats"].values():
        if entry.get("fragmented"):
            referenced.update(sub["file"] for sub in entry["fragments"])
        else:
            referenced.add(entry["file"])
    on_disk = {p.name for p in tmp_path.glob("bat_*.npz")}
    assert on_disk == referenced  # no stale previous-generation files
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [1, 2, 3, 9]


# ----------------------------------------------------------------------
# WAL replay
# ----------------------------------------------------------------------


def test_wal_replays_committed_appends_on_load(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[4, 5])
    pool.append("b", tails=[None, "z"])
    pool.append("f", [(5, 60)])
    # No save: simulate a crash here.  Load must replay all three.
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [1, 2, 3, 4, 5]
    assert restored.lookup("b").tail_list() == ["x", None, "y", None, "z"]
    assert restored.lookup("f").tail_list() == [10, 20, 30, 40, 50, 60]
    assert restored.is_fragmented("f")


def test_torn_trailing_wal_record_is_discarded(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[4])
    pool.append("a", tails=[5])
    wal = tmp_path / "wal.jsonl"
    text = wal.read_text()
    assert text.count("\n") == 2
    wal.write_text(text[:-4])  # crash mid-write of the second record
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [1, 2, 3, 4]


def test_garbage_wal_line_stops_replay_at_that_point(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[4])
    wal = tmp_path / "wal.jsonl"
    with open(wal, "a", encoding="utf-8") as fh:
        fh.write("{not json at all}\n")
        fh.write(json.dumps({"name": "a", "tails": [99]}) + "\n")
    restored = BATBufferPool.load(tmp_path)
    # Everything before the corruption applies; nothing after does.
    assert restored.lookup("a").tail_list() == [1, 2, 3, 4]


def test_wal_record_for_unknown_name_is_skipped(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    (tmp_path / "wal.jsonl").write_text(
        json.dumps({"name": "ghost", "tails": [1]})
        + "\n"
        + json.dumps({"name": "a", "tails": [4]})
        + "\n"
    )
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [1, 2, 3, 4]
    assert not restored.exists("ghost")


def test_appends_after_load_continue_the_wal(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[4])
    restored = BATBufferPool.load(tmp_path)
    restored.append("a", tails=[5])
    # Crash again before any save: both generations of appends replay.
    again = BATBufferPool.load(tmp_path)
    assert again.lookup("a").tail_list() == [1, 2, 3, 4, 5]


def test_pairs_append_round_trips_through_wal(tmp_path):
    pool = BATBufferPool()
    pool.register("kv", bat_from_pairs("str", "int", [("a", 1)]))
    pool.save(tmp_path)
    pool.append("kv", [("b", 2), (None, 3)])
    restored = BATBufferPool.load(tmp_path)
    assert list(restored.lookup("kv").items()) == [
        ("a", 1),
        ("b", 2),
        (None, 3),
    ]


def test_crash_between_catalog_commit_and_wal_truncate(tmp_path, monkeypatch):
    """The double-replay window: a save whose catalog commit lands but
    whose WAL truncation does not must not replay the (already folded
    in) appends on the next load."""
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[4, 5])

    def failing_truncate(self):
        raise OSError("injected: crash after commit, before truncation")

    monkeypatch.setattr(
        BATBufferPool, "_wal_truncate_locked", failing_truncate
    )
    with pytest.raises(OSError, match="injected"):
        pool.save(tmp_path)
    monkeypatch.undo()

    assert (tmp_path / "wal.jsonl").exists()  # the stale WAL survived
    restored = BATBufferPool.load(tmp_path)
    # Exactly once: the catalog already folded the appends in, and the
    # stale WAL records are fenced off by their older generation stamp.
    assert restored.lookup("a").tail_list() == [1, 2, 3, 4, 5]


def test_failed_append_leaves_no_wal_record(tmp_path):
    """An append that raises must not commit a WAL record -- otherwise
    replay re-raises on every subsequent load and the store becomes
    permanently unloadable."""
    pool = BATBufferPool()
    pool.register("kv", bat_from_pairs("str", "int", [("a", 1)]))
    pool.save(tmp_path)
    with pytest.raises(MonetError):
        pool.append("kv", tails=[2])  # tails= needs a void head
    with pytest.raises(MonetError):
        pool.append("kv", [("b", "not an int")])
    pool.append("kv", [("b", 2)])  # the pool stays writable
    restored = BATBufferPool.load(tmp_path)
    assert list(restored.lookup("kv").items()) == [("a", 1), ("b", 2)]


def test_unreplayable_wal_record_is_skipped_with_warning(tmp_path):
    """Defense in depth for WALs written by older/buggy writers: a
    record that no longer applies is skipped, not fatal."""
    pool = BATBufferPool()
    pool.register("kv", bat_from_pairs("str", "int", [("a", 1)]))
    pool.save(tmp_path)
    (tmp_path / "wal.jsonl").write_text(
        json.dumps({"name": "kv", "tails": [9]})  # tails= on non-void head
        + "\n"
        + json.dumps({"name": "kv", "pairs": [["b", 2]]})
        + "\n"
    )
    with pytest.warns(RuntimeWarning, match="unreplayable WAL record"):
        restored = BATBufferPool.load(tmp_path)
    assert list(restored.lookup("kv").items()) == [("a", 1), ("b", 2)]


def test_generator_batches_append_consistently(tmp_path):
    """A generator batch must be materialized once: the WAL, the
    in-memory append and the oid bump all see the same sequence."""
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=(v for v in [4, 5]))
    pool.append("f", ((h, t) for h, t in [(5, 60), (6, 70)]))
    assert pool.lookup("a").tail_list() == [1, 2, 3, 4, 5]
    assert pool.lookup("f").tail_list() == [10, 20, 30, 40, 50, 60, 70]
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [1, 2, 3, 4, 5]
    assert restored.lookup("f").tail_list() == [10, 20, 30, 40, 50, 60, 70]


# ----------------------------------------------------------------------
# Tombstone and patch records: delete/update through the WAL
# ----------------------------------------------------------------------


def test_wal_replays_committed_deletes_and_updates_on_load(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.delete("a", [1])
    pool.update("a", [0], [100])
    pool.delete("f", [0, 4])  # fragmented: tombstone delta kind
    pool.update("f", [1], [990])
    # No save: simulate a crash.  Load must replay all four records.
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [100, 3]
    assert restored.lookup("f").tail_list() == [20, 990, 40]
    assert restored.is_fragmented("f")


def test_wal_replays_renumbering_delete(tmp_path):
    # The Moa extent shape: a dense oid tail must stay 0..n-1 through
    # crash recovery, so the renumber flag rides in the WAL record.
    pool = BATBufferPool()
    pool.register(
        "T.__extent__",
        BAT(
            Column("oid", np.array([10, 11, 12], dtype=np.int64)),
            Column("oid", np.arange(3, dtype=np.int64)),
            hsorted=True,
            hkey=True,
            tsorted=True,
            tkey=True,
        ),
    )
    pool.save(tmp_path)
    pool.delete("T.__extent__", [1], renumber_dense_tails=True)
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("T.__extent__").tail_list() == [0, 1]
    assert list(restored.lookup("T.__extent__").head_list()) == [10, 12]


def test_torn_trailing_tombstone_record_is_discarded(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.delete("a", [0])
    pool.update("a", [0], [77])
    wal = tmp_path / "wal.jsonl"
    text = wal.read_text()
    assert text.count("\n") == 2
    wal.write_text(text[:-4])  # crash mid-write of the update record
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [2, 3]


def test_crash_between_group_commit_fsync_and_publish(tmp_path, monkeypatch):
    """The window the WAL exists for: the intent record is fsynced but
    the process dies before the in-memory publish.  The mutation must
    surface exactly once on the next load -- and never in the crashed
    pool's live catalog."""
    pool = _seed_pool()
    pool.save(tmp_path)

    def crashing_publish(self, name, current, new, record, bump):
        raise OSError("injected: crash after fsync, before publish")

    monkeypatch.setattr(BATBufferPool, "_publish_mutation", crashing_publish)
    with pytest.raises(OSError, match="injected"):
        pool.delete("a", [0])
    monkeypatch.undo()

    # The crashed pool never published...
    assert pool.lookup("a").tail_list() == [1, 2, 3]
    # ...but the record is durable, so recovery applies it.
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [2, 3]


def test_generation_fence_mixed_append_delete_batch(tmp_path, monkeypatch):
    """Exactly-once replay for the new record kinds: a save that folds
    a mixed append/delete/update batch into its catalog but crashes
    before truncating the WAL must not re-apply any of them (a
    re-applied delete would remove a *different* row)."""
    pool = _seed_pool()
    pool.save(tmp_path)
    pool.append("a", tails=[4, 5])
    pool.delete("a", [0])
    pool.update("a", [0], [20])
    pool.delete("f", [4])
    assert pool.lookup("a").tail_list() == [20, 3, 4, 5]

    def failing_truncate(self):
        raise OSError("injected: crash after commit, before truncation")

    monkeypatch.setattr(BATBufferPool, "_wal_truncate_locked", failing_truncate)
    with pytest.raises(OSError, match="injected"):
        pool.save(tmp_path)
    monkeypatch.undo()

    assert (tmp_path / "wal.jsonl").exists()  # the stale WAL survived
    restored = BATBufferPool.load(tmp_path)
    # The stale records are fenced off by their older generation stamp.
    assert restored.lookup("a").tail_list() == [20, 3, 4, 5]
    assert restored.lookup("f").tail_list() == [10, 20, 30, 40]


def test_failed_delete_and_update_leave_no_wal_record(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    with pytest.raises(MonetError):
        pool.delete("a", [99])  # out of range
    with pytest.raises(MonetError):
        pool.update("a", [0, 1], [7])  # misaligned values
    pool.append("a", tails=[4])  # the pool stays writable
    restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [1, 2, 3, 4]


def test_unreplayable_delete_record_is_skipped_with_warning(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    (tmp_path / "wal.jsonl").write_text(
        json.dumps({"name": "a", "delete": [99]})  # out of range
        + "\n"
        + json.dumps({"name": "a", "update": [0], "values": [50]})
        + "\n"
    )
    with pytest.warns(RuntimeWarning, match="unreplayable WAL record"):
        restored = BATBufferPool.load(tmp_path)
    assert restored.lookup("a").tail_list() == [50, 2, 3]


# ----------------------------------------------------------------------
# Session-temp (@) namespace exclusion
# ----------------------------------------------------------------------


def test_session_temps_are_not_persisted(tmp_path):
    pool = _seed_pool()
    pool.register("@s1:scratch", dense_bat("int", [8, 9]))
    pool.save(tmp_path)
    catalog = json.loads((tmp_path / "catalog.json").read_text())
    assert not any(name.startswith("@") for name in catalog["bats"])
    restored = BATBufferPool.load(tmp_path)
    assert not restored.exists("@s1:scratch")
    assert restored.lookup("a").tail_list() == [1, 2, 3]


def test_legacy_catalog_with_session_temp_entry_is_skipped(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    catalog_path = tmp_path / "catalog.json"
    catalog = json.loads(catalog_path.read_text())
    # A catalog written before the exclusion: the entry may reference a
    # file that no longer exists; load must not touch it.
    catalog["bats"]["@s9:leaked"] = {"file": "bat_gone.npz"}
    catalog_path.write_text(json.dumps(catalog))
    restored = BATBufferPool.load(tmp_path)
    assert not restored.exists("@s9:leaked")
    assert restored.lookup("a").tail_list() == [1, 2, 3]


# ----------------------------------------------------------------------
# Unreferenced-file and spill sweeps
# ----------------------------------------------------------------------


def test_load_sweeps_orphan_files(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    generation = json.loads((tmp_path / "catalog.json").read_text())["generation"]
    orphan = tmp_path / f"bat_g{generation:04d}_99999.npz"
    orphan.write_bytes(b"leftover from an aborted save")
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()  # reaped: its pid now fails the liveness probe
    dead_tmp = tmp_path / f"catalog.json.tmp-{proc.pid}"
    dead_tmp.write_text("half a catalog from a crashed process")
    BATBufferPool.load(tmp_path)
    assert not orphan.exists()
    assert not dead_tmp.exists()


def test_load_keeps_concurrent_savers_files(tmp_path):
    """A load must not reclaim what a concurrent writer is mid-way
    through producing: npz files of a newer generation (its catalog
    commit has not landed yet) and temp files of live pids."""
    pool = _seed_pool()
    pool.save(tmp_path)
    generation = json.loads((tmp_path / "catalog.json").read_text())["generation"]
    fresh = tmp_path / f"bat_g{generation + 1:04d}_00000.npz"
    fresh.write_bytes(b"next generation, commit in flight")
    live_tmp = tmp_path / f"bat_g{generation + 1:04d}_00001.npz.tmp-{os.getpid()}"
    live_tmp.write_text("a live writer's in-flight temp file")
    try:
        BATBufferPool.load(tmp_path)
        assert fresh.exists()
        assert live_tmp.exists()
    finally:
        fresh.unlink(missing_ok=True)
        live_tmp.unlink(missing_ok=True)


def test_save_reclaims_own_tmp_leftovers(tmp_path):
    pool = _seed_pool()
    pool.save(tmp_path)
    # An aborted earlier save by this process left a temp file behind;
    # save holds the writer's lock, so it may reclaim its own pid's.
    leftover = tmp_path / f"bat_g0001_00000.npz.tmp-{os.getpid()}"
    leftover.write_text("aborted write of this process")
    pool.save(tmp_path)
    assert not leftover.exists()


def test_stale_spill_dirs_swept_liveness_checked():
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()  # reaped: its pid now fails the liveness probe
    base = Path(tempfile.gettempdir())
    stale = base / f"{bbp_module._SPILL_PREFIX}{proc.pid}-test"
    live = base / f"{bbp_module._SPILL_PREFIX}{os.getpid()}-test"
    nonpid = base / f"{bbp_module._SPILL_PREFIX}notapid-test"
    try:
        for directory in (stale, live, nonpid):
            directory.mkdir(exist_ok=True)
            (directory / "unit.bin").write_bytes(b"x")
        removed = bbp_module.sweep_stale_spill_dirs()
        assert removed >= 1
        assert not stale.exists()  # dead owner: reclaimed
        assert live.exists()  # our own: kept
        assert nonpid.exists()  # unparseable: left alone
    finally:
        for directory in (stale, live, nonpid):
            shutil.rmtree(directory, ignore_errors=True)


def test_pool_startup_triggers_spill_sweep(monkeypatch):
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    base = Path(tempfile.gettempdir())
    stale = base / f"{bbp_module._SPILL_PREFIX}{proc.pid}-startup"
    stale.mkdir(exist_ok=True)
    monkeypatch.setattr(bbp_module, "_SPILL_SWEPT", False)
    try:
        BATBufferPool()
        assert not stale.exists()
    finally:
        shutil.rmtree(stale, ignore_errors=True)
