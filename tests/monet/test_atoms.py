"""Atom type system: registry, coercion, NIL semantics, oid generator."""

import math

import numpy as np
import pytest

from repro.monet.atoms import (
    INT_NIL,
    OID_NIL,
    AtomType,
    OidGenerator,
    atom,
    atom_names,
    coerce_value,
    infer_atom,
    is_nil,
    register_atom,
)
from repro.monet.errors import AtomError


class TestRegistry:
    def test_builtin_atoms_present(self):
        assert {"oid", "int", "dbl", "str", "bit"} <= set(atom_names())

    def test_lookup_returns_same_object(self):
        assert atom("int") is atom("int")

    def test_unknown_atom_raises(self):
        with pytest.raises(AtomError, match="unknown atom"):
            atom("quaternion")

    def test_reregistering_same_object_is_noop(self):
        existing = atom("int")
        assert register_atom(existing) is existing

    def test_conflicting_registration_rejected(self):
        clone = AtomType("int", np.dtype(np.int64), INT_NIL, int, lambda v: False)
        with pytest.raises(AtomError, match="already registered"):
            register_atom(clone)


class TestCoercion:
    def test_int_accepts_ints(self):
        assert coerce_value(42, atom("int")) == 42

    def test_int_accepts_integral_floats(self):
        assert coerce_value(3.0, atom("int")) == 3

    def test_int_rejects_fractional_floats(self):
        with pytest.raises(AtomError):
            coerce_value(3.5, atom("int"))

    def test_int_rejects_strings(self):
        with pytest.raises(AtomError):
            coerce_value("3", atom("int"))

    def test_dbl_widens_int(self):
        assert coerce_value(3, atom("dbl")) == 3.0

    def test_str_rejects_numbers(self):
        with pytest.raises(AtomError):
            coerce_value(3, atom("str"))

    def test_bit_from_bool(self):
        assert coerce_value(True, atom("bit")) == 1
        assert coerce_value(False, atom("bit")) == 0

    def test_none_maps_to_nil(self):
        assert coerce_value(None, atom("int")) == INT_NIL
        assert math.isnan(coerce_value(None, atom("dbl")))
        assert coerce_value(None, atom("str")) is None


class TestNil:
    def test_none_is_nil(self):
        assert is_nil(None)

    def test_int_nil_sentinel(self):
        assert is_nil(INT_NIL, atom("int"))
        assert not is_nil(0, atom("int"))

    def test_oid_nil_sentinel(self):
        assert is_nil(OID_NIL, atom("oid"))

    def test_nan_is_dbl_nil(self):
        assert is_nil(float("nan"), atom("dbl"))
        assert not is_nil(0.0, atom("dbl"))

    def test_is_nil_without_type(self):
        assert is_nil(float("nan"))
        assert is_nil(INT_NIL)
        assert not is_nil("")


class TestInference:
    def test_bool_before_int(self):
        assert infer_atom(True).name == "bit"

    def test_int(self):
        assert infer_atom(7).name == "int"

    def test_float(self):
        assert infer_atom(7.5).name == "dbl"

    def test_str(self):
        assert infer_atom("x").name == "str"

    def test_none_rejected(self):
        with pytest.raises(AtomError):
            infer_atom(None)

    def test_unknown_type_rejected(self):
        with pytest.raises(AtomError):
            infer_atom(object())


class TestAtomArrays:
    def test_make_array_maps_none_to_nil(self):
        arr = atom("int").make_array([1, None, 3])
        assert arr[1] == INT_NIL

    def test_str_array_keeps_none(self):
        arr = atom("str").make_array(["a", None])
        assert arr[1] is None

    def test_to_python_restores_none(self):
        a = atom("int")
        assert a.to_python(INT_NIL) is None
        assert a.to_python(5) == 5

    def test_bit_to_python_is_bool(self):
        assert atom("bit").to_python(1) is True


class TestOidGenerator:
    def test_sequential_allocation(self):
        gen = OidGenerator()
        assert gen.allocate(3) == 0
        assert gen.allocate(2) == 3
        assert gen.current == 5

    def test_bump_past(self):
        gen = OidGenerator()
        gen.bump_past(100)
        assert gen.allocate() == 101

    def test_bump_past_lower_is_noop(self):
        gen = OidGenerator(start=50)
        gen.bump_past(10)
        assert gen.allocate() == 50

    def test_negative_start_rejected(self):
        with pytest.raises(AtomError):
            OidGenerator(start=-1)

    def test_negative_count_rejected(self):
        with pytest.raises(AtomError):
            OidGenerator().allocate(-1)
