"""String heap and the BAT buffer pool (catalog + persistence)."""

import numpy as np
import pytest

from repro.monet.bat import bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import BATError, BBPError
from repro.monet.heap import (
    StringHeap,
    decode_bat,
    decode_str_heap,
    encode_column,
    encode_str_heap,
)


class TestStringHeap:
    def test_intern_dedups(self):
        heap = StringHeap()
        a = heap.intern("hello")
        b = heap.intern("hello")
        assert a == b
        assert len(heap) == 1

    def test_offsets_sequential(self):
        heap = StringHeap()
        assert heap.intern("a") == 0
        assert heap.intern("b") == 1

    def test_fetch(self):
        heap = StringHeap(["x", "y"])
        assert heap.fetch(1) == "y"

    def test_fetch_out_of_range(self):
        with pytest.raises(BATError):
            StringHeap().fetch(0)

    def test_lookup_without_insert(self):
        heap = StringHeap(["x"])
        assert heap.lookup("x") == 0
        assert heap.lookup("missing") is None
        assert len(heap) == 1

    def test_contains(self):
        heap = StringHeap(["x"])
        assert "x" in heap and "y" not in heap

    def test_intern_rejects_non_string(self):
        with pytest.raises(BATError):
            StringHeap().intern(42)

    def test_as_bat(self):
        heap = StringHeap(["a", "b"])
        assert heap.as_bat().to_pairs() == [(0, "a"), (1, "b")]

    def test_encode_decode_roundtrip(self):
        values = ["red", "green", "red", "blue"]
        encoded, heap = encode_column(values)
        assert len(heap) == 3
        decoded = decode_bat(encoded, heap)
        assert decoded.tail_list() == values

    def test_encode_with_shared_heap(self):
        heap = StringHeap(["red"])
        encoded, heap2 = encode_column(["red", "blue"], heap)
        assert heap2 is heap
        assert encoded.tail_list() == [0, 1]

    def test_str_heap_wire_codec_roundtrip(self):
        """The length-prefixed wire codec: NILs mark as -1 lengths,
        multi-byte UTF-8 survives, and any bytes-like buffer decodes
        (the shm transport hands over shared-memory views)."""
        values = ["red", None, "", "grün", "日本語", None]
        lengths, data = encode_str_heap(values)
        assert lengths.tolist() == [3, -1, 0, 5, 9, -1]
        decoded = decode_str_heap(lengths, memoryview(data))
        assert decoded.tolist() == values
        assert decoded.dtype == np.dtype(object)

    def test_str_heap_wire_codec_empty(self):
        lengths, data = encode_str_heap([])
        assert len(lengths) == 0 and data == b""
        assert decode_str_heap(lengths, data).tolist() == []


class TestCatalog:
    def test_register_and_lookup(self, pool):
        bat = dense_bat("int", [1, 2])
        pool.register("numbers", bat)
        assert pool.lookup("numbers") is bat

    def test_register_sets_name(self, pool):
        bat = dense_bat("int", [1])
        pool.register("x", bat)
        assert bat.name == "x"

    def test_duplicate_rejected(self, pool):
        pool.register("x", dense_bat("int", [1]))
        with pytest.raises(BBPError):
            pool.register("x", dense_bat("int", [2]))

    def test_replace_allowed(self, pool):
        pool.register("x", dense_bat("int", [1]))
        pool.register("x", dense_bat("int", [2]), replace=True)
        assert pool.lookup("x").tail_list() == [2]

    def test_empty_name_rejected(self, pool):
        with pytest.raises(BBPError):
            pool.register("", dense_bat("int", [1]))

    def test_lookup_unknown(self, pool):
        with pytest.raises(BBPError, match="no BAT named"):
            pool.lookup("ghost")

    def test_drop(self, pool):
        pool.register("x", dense_bat("int", [1]))
        pool.drop("x")
        assert not pool.exists("x")

    def test_drop_unknown(self, pool):
        with pytest.raises(BBPError):
            pool.drop("ghost")

    def test_names_prefix_filter(self, pool):
        pool.register("lib.a", dense_bat("int", [1]))
        pool.register("lib.b", dense_bat("int", [1]))
        pool.register("other", dense_bat("int", [1]))
        assert pool.names("lib.") == ["lib.a", "lib.b"]

    def test_iteration_and_len(self, pool):
        pool.register("b", dense_bat("int", [1]))
        pool.register("a", dense_bat("int", [1]))
        assert list(pool) == ["a", "b"]
        assert len(pool) == 2

    def test_oid_sequence_advances_past_registered(self, pool):
        pool.register("x", bat_from_pairs("oid", "int", [(100, 1)]))
        assert pool.new_oids(1) > 100


class TestPersistence:
    def test_roundtrip_all_types(self, pool, tmp_path):
        pool.register("ints", dense_bat("int", [1, None, 3]))
        pool.register("dbls", dense_bat("dbl", [1.5, None]))
        pool.register("strs", dense_bat("str", ["a", None, "c"]))
        pool.register("bits", dense_bat("bit", [True, False]))
        pool.register(
            "keyed", bat_from_pairs("str", "int", [("x", 1), ("y", 2)])
        )
        pool.save(tmp_path / "db")
        loaded = BATBufferPool.load(tmp_path / "db")
        assert loaded.names() == pool.names()
        for name in pool.names():
            assert loaded.lookup(name).to_pairs() == pool.lookup(name).to_pairs()

    def test_roundtrip_preserves_properties(self, pool, tmp_path):
        pool.register("k", bat_from_pairs("oid", "int", [(0, 9), (1, 8)]))
        pool.save(tmp_path / "db")
        loaded = BATBufferPool.load(tmp_path / "db")
        bat = loaded.lookup("k")
        assert bat.hdense and bat.hkey and bat.hsorted

    def test_roundtrip_void_tail(self, pool, tmp_path):
        from repro.monet.kernel import mark

        pool.register("m", mark(dense_bat("int", [5, 6]), 10))
        pool.save(tmp_path / "db")
        loaded = BATBufferPool.load(tmp_path / "db")
        assert loaded.lookup("m").to_pairs() == [(0, 10), (1, 11)]

    def test_load_missing_catalog(self, tmp_path):
        with pytest.raises(BBPError):
            BATBufferPool.load(tmp_path / "empty")

    def test_oid_sequence_survives(self, pool, tmp_path):
        pool.new_oids(500)
        pool.save(tmp_path / "db")
        loaded = BATBufferPool.load(tmp_path / "db")
        assert loaded.new_oids(1) >= 500

    def test_nil_marker_string_roundtrip(self, pool, tmp_path):
        pool.register("s", dense_bat("str", ["plain", None]))
        pool.save(tmp_path / "db")
        loaded = BATBufferPool.load(tmp_path / "db")
        assert loaded.lookup("s").tail_list() == ["plain", None]
