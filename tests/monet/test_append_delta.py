"""The write path: copy-on-write appends, delta fragments, snapshot
reads, and the merge daemon.

Covers the append machinery layer by layer: ``BAT.append`` (immutable
originals, conservative property-flag maintenance), ``FragmentedBAT
.append`` (prefix-sharing delta tails on both split strategies),
``fold_tail``/``refragment`` (folding oversized tails back to policy
size without coalescing), ``BATBufferPool.append`` (epoch bumps, oid
accounting, snapshot isolation), and ``merge_deltas`` plus the
background daemon.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.monet.bat import BAT, Column, VoidColumn, bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import BBPError
from repro.monet.fragments import (
    FragmentationPolicy,
    fold_tail,
    fragment_bat,
    refragment,
)


# ----------------------------------------------------------------------
# BAT.append
# ----------------------------------------------------------------------


def test_bat_append_is_copy_on_write():
    original = dense_bat("int", [1, 2, 3])
    appended = original.append(tails=[4, 5])
    assert appended is not original
    assert original.tail_list() == [1, 2, 3]
    assert appended.tail_list() == [1, 2, 3, 4, 5]
    assert appended.head.is_void and appended.head.seqbase == 0


def test_bat_append_empty_batch_returns_self():
    original = dense_bat("int", [1, 2, 3])
    assert original.append(tails=[]) is original
    assert original.append([]) is original


def test_bat_append_preserves_sorted_key_flags_when_they_hold():
    original = BAT(
        VoidColumn(0, 3),
        Column("oid", np.arange(3, dtype=np.int64)),
        tkey=True,
        tsorted=True,
    )
    appended = original.append(tails=[3, 4])
    assert appended.tsorted and appended.tkey


def test_bat_append_clears_flags_on_violation():
    base = BAT(
        VoidColumn(0, 3),
        Column("int", np.array([1, 2, 3], dtype=np.int64)),
        tkey=True,
        tsorted=True,
    )
    unsorted = base.append(tails=[0])
    assert not unsorted.tsorted and not unsorted.tkey
    duplicate = base.append(tails=[3])
    assert duplicate.tsorted and not duplicate.tkey


def test_bat_append_nil_clears_tail_flags():
    base = BAT(
        VoidColumn(0, 2),
        Column("str", np.array(["a", "b"], dtype=object)),
        tkey=True,
        tsorted=True,
    )
    appended = base.append(tails=["c", None])
    assert appended.tail_list() == ["a", "b", "c", None]
    assert not appended.tsorted and not appended.tkey


def test_bat_append_pairs_keeps_dense_void_head():
    base = dense_bat("int", [10, 11])
    dense = base.append([(2, 12), (3, 13)])
    assert dense.head.is_void
    sparse = base.append([(7, 12)])
    assert not sparse.head.is_void
    assert sparse.head_values().tolist() == [0, 1, 7]


def test_bat_append_materialized_head_pairs():
    base = bat_from_pairs("str", "int", [("a", 1), ("b", 2)])
    appended = base.append([("c", 3)])
    assert list(appended.items()) == [("a", 1), ("b", 2), ("c", 3)]
    assert list(base.items()) == [("a", 1), ("b", 2)]


# ----------------------------------------------------------------------
# FragmentedBAT.append
# ----------------------------------------------------------------------


def _fragmented(values, strategy, target=4):
    policy = FragmentationPolicy(target_size=target, strategy=strategy)
    return fragment_bat(dense_bat("int", values), policy), policy


@pytest.mark.parametrize("strategy", ["range", "roundrobin"])
def test_fragmented_append_shares_prefix_fragments(strategy):
    fb, _ = _fragmented(list(range(16)), strategy)
    grown = fb.append(tails=[100, 101])
    # All but the written-to tail fragment are the same objects.
    assert grown.fragments[:-1] == fb.fragments[: len(grown.fragments) - 1]
    assert sorted(grown.to_bat().tail_list()) == sorted(
        list(range(16)) + [100, 101]
    )
    assert sorted(fb.to_bat().tail_list()) == sorted(range(16))


def test_fragmented_append_grows_tail_then_opens_delta():
    policy = FragmentationPolicy(target_size=4, strategy="range")
    fb = fragment_bat(dense_bat("int", list(range(6))), policy)
    sizes = fb.fragment_sizes()
    grown = fb.append(tails=[90])
    if sizes[-1] < 4:
        assert len(grown.fragments) == len(fb.fragments)
    # Keep appending past the target: a new delta fragment must open
    # rather than the tail growing without bound.
    for value in range(91, 91 + 8):
        grown = grown.append(tails=[value])
    assert len(grown.fragments) > len(fb.fragments)
    assert grown.to_bat().tail_list() == list(range(6)) + list(range(90, 99))


def test_fragmented_append_roundrobin_positions_stay_global():
    fb, _ = _fragmented(list(range(9)), "roundrobin")
    grown = fb.append(tails=[200, 201, 202])
    coalesced = grown.to_bat()
    assert coalesced.tail_list() == list(range(9)) + [200, 201, 202]
    assert coalesced.head_values().tolist() == list(range(12))


@pytest.mark.parametrize("strategy", ["range", "roundrobin"])
def test_fragmented_append_pairs(strategy):
    fb, _ = _fragmented(list(range(8)), strategy)
    grown = fb.append([(8, 50), (9, 51)])
    pairs = sorted(grown.to_bat().items())
    assert pairs[-2:] == [(8, 50), (9, 51)]


# ----------------------------------------------------------------------
# fold_tail / refragment
# ----------------------------------------------------------------------


def test_fold_tail_splits_oversized_fragments_without_coalescing():
    policy = FragmentationPolicy(target_size=4, strategy="range")
    fb = fragment_bat(dense_bat("int", list(range(8))), policy)
    # One bulk batch lands in a single delta far beyond the target.
    fb = fb.append(tails=list(range(100, 120)))
    assert max(fb.fragment_sizes()) > 2 * policy.target_size
    folded = fold_tail(fb, policy)
    assert max(folded.fragment_sizes()) <= 2 * policy.target_size
    assert folded.to_bat().tail_list() == fb.to_bat().tail_list()
    # Healthy prefix fragments are shared by reference, not copied.
    assert folded.fragments[0] is fb.fragments[0]


def test_fold_tail_noop_when_within_bound():
    policy = FragmentationPolicy(target_size=8, strategy="range")
    fb = fragment_bat(dense_bat("int", list(range(16))), policy)
    assert fold_tail(fb, policy) is fb


def test_refragment_restores_policy_size_after_append_storm():
    policy = FragmentationPolicy(target_size=4, strategy="range")
    fb = fragment_bat(dense_bat("int", list(range(4))), policy)
    for start in range(0, 50, 10):
        fb = fb.append(tails=list(range(start, start + 10)))
    merged = refragment(fb, policy)
    assert max(merged.fragment_sizes()) <= 2 * policy.target_size
    ideal = max(1, len(merged) // policy.target_size)
    assert len(merged.fragments) <= max(4, 4 * ideal)
    assert merged.to_bat().tail_list() == fb.to_bat().tail_list()


# ----------------------------------------------------------------------
# BATBufferPool.append
# ----------------------------------------------------------------------


def test_pool_append_bumps_epoch_and_is_visible_to_new_readers():
    pool = BATBufferPool()
    pool.register("x", dense_bat("int", [1, 2]))
    before = pool.epoch
    pool.append("x", tails=[3])
    assert pool.epoch > before
    assert pool.lookup("x").tail_list() == [1, 2, 3]


def test_pool_append_unknown_name_raises():
    pool = BATBufferPool()
    with pytest.raises(BBPError):
        pool.append("nope", tails=[1])


def test_pool_snapshot_isolates_appends_and_drops():
    pool = BATBufferPool()
    pool.register("x", dense_bat("int", [1, 2]))
    pool.register("y", dense_bat("int", [9]))
    snap = pool.read_snapshot()
    pool.append("x", tails=[3])
    pool.drop("y")
    # The snapshot still sees the pinned catalog...
    assert snap.lookup("x").tail_list() == [1, 2]
    assert snap.lookup("y").tail_list() == [9]
    assert snap.epoch < pool.epoch
    # ...while a fresh snapshot sees the new state.
    fresh = pool.read_snapshot()
    assert fresh.lookup("x").tail_list() == [1, 2, 3]
    assert not fresh.exists("y")


def test_pool_snapshot_write_through():
    pool = BATBufferPool()
    pool.register("x", dense_bat("int", [1]))
    snap = pool.read_snapshot()
    snap.register("t", dense_bat("int", [5]), replace=True)
    assert snap.lookup("t").tail_list() == [5]
    assert pool.lookup("t").tail_list() == [5]
    snap.drop("t")
    assert not snap.exists("t")
    assert not pool.exists("t")


def test_pool_append_fragmented_registration():
    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=4, strategy="range")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(8))), policy)
    )
    pool.append("x", tails=[100])
    assert pool.lookup("x").tail_list() == list(range(8)) + [100]
    assert pool.is_fragmented("x")


def test_pool_append_advances_oid_generator():
    pool = BATBufferPool()
    pool.register("x", dense_bat("oid", [1, 2]))
    pool.append("x", tails=[500])
    assert pool.new_oids(1) > 500


def test_roundrobin_tails_append_bumps_past_synthesized_heads():
    # Round-robin fragments carry materialized dense oid heads;
    # append(tails=...) synthesizes head oids seqbase + total + i, and
    # the pool's oid sequence must advance past them or new_oids() can
    # later hand out colliding head oids.
    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=2, strategy="roundrobin")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", [10, 20, 30, 40]), policy)
    )
    pool.append("x", tails=[50, 60, 70])
    appended = pool.lookup("x")
    top_head = max(int(h) for h in appended.head_list())
    assert top_head == 6  # seqbase 0, seven rows
    assert pool.new_oids(1) > top_head


# ----------------------------------------------------------------------
# merge_deltas and the daemon
# ----------------------------------------------------------------------


def _storm(pool, name, n):
    # One bulk batch: lands in a single delta fragment far beyond the
    # policy target, which is exactly what the merge pass folds back.
    pool.append(name, tails=[1000 + value for value in range(n)])


def test_merge_deltas_folds_oversized_tails():
    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=4, strategy="range")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(4))), policy)
    )
    _storm(pool, "x", 40)
    before = pool.lookup("x").tail_list()
    merged = pool.merge_deltas(policy)
    assert merged >= 1
    after = pool.lookup_fragments("x")
    assert max(after.fragment_sizes()) <= 2 * policy.target_size
    assert pool.lookup("x").tail_list() == before


def test_merge_daemon_runs_in_background():
    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=4, strategy="range")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(4))), policy)
    )
    pool.start_merge_daemon(interval=0.01)
    try:
        _storm(pool, "x", 40)
        deadline = 100
        while deadline > 0:
            sizes = pool.lookup_fragments("x").fragment_sizes()
            if max(sizes) <= 2 * 4:
                break
            deadline -= 1
            import time

            time.sleep(0.02)
        assert max(pool.lookup_fragments("x").fragment_sizes()) <= 8
    finally:
        pool.stop_merge_daemon()
    assert pool.lookup("x").tail_list() == list(range(4)) + [
        1000 + v for v in range(40)
    ]


def test_merge_daemon_does_not_clobber_concurrent_appends():
    """Compare-and-swap on swap-in: appends racing the merge are never
    lost."""
    import threading

    pool = BATBufferPool()
    policy = FragmentationPolicy(target_size=8, strategy="range")
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(8))), policy)
    )
    stop = threading.Event()

    def merger():
        while not stop.is_set():
            pool.merge_deltas(policy)

    thread = threading.Thread(target=merger)
    thread.start()
    try:
        # Mixed batch sizes: bulk batches create oversized deltas for
        # the merger to fold while later appends race the swap-in.
        for start in range(0, 300, 30):
            pool.append("x", tails=list(range(start, start + 30)))
    finally:
        stop.set()
        thread.join()
    pool.merge_deltas(policy)
    tails = pool.lookup("x").tail_list()
    assert tails == list(range(8)) + list(range(300))
