"""Save/load round-trips of the BAT buffer pool.

Covers the property-flag and NIL corners the coarse npz layout must
preserve exactly: ``hsorted``/``tkey``/``hdense`` flags, object (str)
columns with NILs, and fragmented BATs under both split strategies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.monet.bat import BAT, Column, VoidColumn, bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import FragmentationPolicy, fragment_bat


def _roundtrip(pool: BATBufferPool, tmp_path) -> BATBufferPool:
    pool.save(tmp_path / "db")
    return BATBufferPool.load(tmp_path / "db")


def test_property_flags_roundtrip(pool, tmp_path):
    sorted_keys = BAT(
        Column("int", np.array([1, 3, 5, 9], dtype=np.int64)),
        Column("str", np.array(["a", "b", "c", "d"], dtype=object)),
        hsorted=True,
        hkey=True,
        tkey=True,
        tsorted=True,
    )
    pool.register("flags", sorted_keys)
    dense = dense_bat("dbl", [0.5, 1.5], seqbase=7)
    pool.register("dense", dense)
    loaded = _roundtrip(pool, tmp_path)

    flags = loaded.lookup("flags")
    assert (flags.hsorted, flags.hkey, flags.tkey, flags.tsorted) == (
        True,
        True,
        True,
        True,
    )
    assert not flags.hdense
    restored = loaded.lookup("dense")
    assert restored.hdense and restored.head.seqbase == 7
    assert restored.to_pairs() == dense.to_pairs()


def test_object_column_with_nils_roundtrip(pool, tmp_path):
    values = ["red", None, "", "green", None, "\x00odd"]
    bat = dense_bat("str", values)
    pool.register("strs", bat)
    loaded = _roundtrip(pool, tmp_path)
    assert loaded.lookup("strs").tail_list() == values


def test_numeric_nils_roundtrip(pool, tmp_path):
    pool.register("ints", dense_bat("int", [1, None, 3]))
    pool.register("dbls", dense_bat("dbl", [0.25, None, 4.0]))
    loaded = _roundtrip(pool, tmp_path)
    assert loaded.lookup("ints").tail_list() == [1, None, 3]
    assert loaded.lookup("dbls").tail_list() == [0.25, None, 4.0]


def test_nonvoid_oid_head_roundtrip(pool, tmp_path):
    bat = bat_from_pairs("oid", "int", [(3, 30), (5, 50), (9, 90)])
    assert bat.hsorted and bat.hkey and not bat.hdense
    pool.register("sparse", bat)
    loaded = _roundtrip(pool, tmp_path)
    restored = loaded.lookup("sparse")
    assert restored.to_pairs() == bat.to_pairs()
    assert restored.hsorted and restored.hkey and not restored.hdense


def test_fragmented_workers_roundtrip(pool, tmp_path):
    bat = dense_bat("int", list(range(20)))
    policy = FragmentationPolicy(target_size=5, workers=4)
    pool.register_fragmented("w", fragment_bat(bat, policy))
    loaded = _roundtrip(pool, tmp_path)
    assert loaded.lookup_fragments("w").policy.workers == 4


def test_register_fragmented_renames_cached_coalesce(pool):
    bat = dense_bat("int", list(range(12)))
    fb = fragment_bat(bat, FragmentationPolicy(target_size=4))
    fb.to_bat()  # populate the coalesce cache before registration
    pool.register_fragmented("named", fb)
    assert pool.lookup("named").name == "named"


@pytest.mark.parametrize("strategy", ["range", "roundrobin"])
def test_fragmented_roundtrip(pool, tmp_path, strategy):
    rng = np.random.default_rng(11)
    n = 257
    strs = np.empty(n, dtype=object)
    for i in range(n):
        strs[i] = None if i % 11 == 0 else f"w{int(rng.integers(0, 40))}"
    bat = BAT(VoidColumn(2, n), Column("str", strs))
    policy = FragmentationPolicy(target_size=50, strategy=strategy)
    pool.register_fragmented("lib.words", fragment_bat(bat, policy))
    pool.register("plain", dense_bat("int", [1, 2, 3]))
    loaded = _roundtrip(pool, tmp_path)

    assert loaded.is_fragmented("lib.words")
    fb = loaded.lookup_fragments("lib.words")
    assert fb.policy.strategy == strategy
    assert fb.policy.target_size == 50
    assert fb.policy.workers == policy.workers
    assert fb.nfragments == pool.lookup_fragments("lib.words").nfragments
    assert fb.fragment_sizes() == pool.lookup_fragments("lib.words").fragment_sizes()
    assert loaded.lookup("lib.words").to_pairs() == bat.to_pairs()
    assert loaded.lookup("plain").tail_list() == [1, 2, 3]


def test_fragmented_roundtrip_preserves_oid_sequence(pool, tmp_path):
    bat = BAT(VoidColumn(100, 20), Column("int", np.arange(20, dtype=np.int64)))
    pool.register_fragmented("f", fragment_bat(bat, FragmentationPolicy(target_size=6)))
    loaded = _roundtrip(pool, tmp_path)
    assert loaded.oid_generator.current >= 120


def _tuning_state(fragments):
    return (
        fragments.DEFAULT_FRAGMENT_SIZE,
        fragments.PARALLEL_MIN_BUNS,
        fragments.MERGE_FANOUT,
        fragments.DEFAULT_BACKEND,
        fragments.PROCESS_MIN_BUNS,
        fragments.JOIN_FANOUT,
        fragments.JOIN_SPILL_BUNS,
        fragments._TUNING_MEASURED,
    )


def _restore_tuning(fragments, state):
    (
        fragments.DEFAULT_FRAGMENT_SIZE,
        fragments.PARALLEL_MIN_BUNS,
        fragments.MERGE_FANOUT,
        fragments.DEFAULT_BACKEND,
        fragments.PROCESS_MIN_BUNS,
        fragments.JOIN_FANOUT,
        fragments.JOIN_SPILL_BUNS,
        fragments._TUNING_MEASURED,
    ) = state


def test_calibrated_tuning_roundtrip(pool, tmp_path):
    """Measured fragment tuning persists next to the catalog and is
    reinstalled on load, so a restarted server skips the measurement
    pass.  Cores-derived (unmeasured) defaults are never written."""
    from repro.monet import fragments

    saved_state = _tuning_state(fragments)
    try:
        pool.register("x", dense_bat("int", [1, 2, 3]))
        pool.save(tmp_path / "db")
        import json

        catalog = json.loads((tmp_path / "db" / "catalog.json").read_text())
        assert "tuning" not in catalog  # unmeasured defaults stay local

        fragments.set_default_tuning(
            fragment_size=12345,
            parallel_min=67890,
            merge_fanout=24,
            backend="process",
            process_min=4096,
            join_fanout=12,
            join_spill=2_000_000,
        )
        pool.save(tmp_path / "db2")
        catalog = json.loads((tmp_path / "db2" / "catalog.json").read_text())
        assert catalog["tuning"] == {
            "fragment_size": 12345,
            "parallel_min": 67890,
            "merge_fanout": 24,
            "backend": "process",
            "process_min": 4096,
            "join_fanout": 12,
            "join_spill": 2_000_000,
        }

        # A "restart": reset the module defaults, then load the pool.
        _restore_tuning(fragments, saved_state)
        BATBufferPool.load(tmp_path / "db2")
        assert fragments.DEFAULT_FRAGMENT_SIZE == 12345
        assert fragments.PARALLEL_MIN_BUNS == 67890
        assert fragments.MERGE_FANOUT == 24
        assert fragments.DEFAULT_BACKEND == "process"
        assert fragments.PROCESS_MIN_BUNS == 4096
        assert fragments.JOIN_FANOUT == 12
        assert fragments.JOIN_SPILL_BUNS == 2_000_000
        assert fragments.default_tuning()["measured"]
        # Policies made after the load pick the persisted value up.
        assert FragmentationPolicy().target_size == 12345
    finally:
        _restore_tuning(fragments, saved_state)


def test_persisted_tuning_yields_to_env_overrides(pool, tmp_path, monkeypatch):
    from repro.monet import fragments

    saved_state = _tuning_state(fragments)
    try:
        pool.register("x", dense_bat("int", [1]))
        fragments.set_default_tuning(fragment_size=11111, parallel_min=22222)
        pool.save(tmp_path / "db")
        _restore_tuning(fragments, saved_state)
        monkeypatch.setenv("REPRO_FRAGMENT_SIZE", "9999")
        BATBufferPool.load(tmp_path / "db")
        # The env-pinned knob is untouched; the other one installs.
        assert fragments.DEFAULT_FRAGMENT_SIZE == saved_state[0]
        assert fragments.PARALLEL_MIN_BUNS == 22222
    finally:
        _restore_tuning(fragments, saved_state)


def test_persisted_join_tuning_yields_to_env_overrides(pool, tmp_path, monkeypatch):
    """REPRO_JOIN_FANOUT / REPRO_JOIN_SPILL_BUNS beat persisted values
    knob by knob, like every other tuning field."""
    from repro.monet import fragments

    saved_state = _tuning_state(fragments)
    try:
        pool.register("x", dense_bat("int", [1]))
        fragments.set_default_tuning(join_fanout=48, join_spill=7777)
        pool.save(tmp_path / "db")
        _restore_tuning(fragments, saved_state)
        monkeypatch.setenv("REPRO_JOIN_FANOUT", "8")
        BATBufferPool.load(tmp_path / "db")
        # The env-pinned fanout is untouched; the spill knob installs.
        assert fragments.JOIN_FANOUT == saved_state[5]
        assert fragments.JOIN_SPILL_BUNS == 7777
    finally:
        _restore_tuning(fragments, saved_state)


def test_persisted_backend_yields_to_env_override(pool, tmp_path, monkeypatch):
    """REPRO_EXECUTOR_BACKEND beats a persisted (calibrated) backend:
    the operator can always pin the executor of a restarted server."""
    from repro.monet import fragments

    saved_state = _tuning_state(fragments)
    try:
        pool.register("x", dense_bat("int", [1]))
        fragments.set_default_tuning(backend="process", process_min=1234)
        pool.save(tmp_path / "db")
        _restore_tuning(fragments, saved_state)
        fragments.DEFAULT_BACKEND = "thread"
        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "thread")
        BATBufferPool.load(tmp_path / "db")
        # The env-pinned backend is untouched; process_min installs.
        assert fragments.DEFAULT_BACKEND == "thread"
        assert fragments.PROCESS_MIN_BUNS == 1234
    finally:
        _restore_tuning(fragments, saved_state)


# ----------------------------------------------------------------------
# Concurrency: the locked catalog and view-cache invalidation
# ----------------------------------------------------------------------


def test_concurrent_reregister_and_lookup_never_serves_stale_views(pool):
    """Two threads hammer re-registration of the same fragmented name
    while two more look it up: every lookup must observe one of the
    registered generations in full -- never a torn or stale coalesced
    view (the cache is invalidated under the catalog lock)."""
    import threading

    policy = FragmentationPolicy(target_size=8)
    generations = {
        g: dense_bat("int", [g] * (16 + g)) for g in range(4)
    }
    for g, bat in generations.items():
        pool.register_fragmented(f"gen{g}", fragment_bat(bat, policy))
    pool.register_fragmented("hot", fragment_bat(generations[0], policy))

    stop = threading.Event()
    errors = []

    def writer(seed: int):
        g = seed
        while not stop.is_set():
            g = (g + 1) % 4
            pool.register_fragmented(
                "hot", fragment_bat(generations[g], policy), replace=True
            )

    def reader():
        while not stop.is_set():
            try:
                coalesced = pool.lookup("hot")
                values = set(coalesced.tail_values().tolist())
                assert len(values) == 1, f"torn view: {values}"
                g = values.pop()
                assert len(coalesced) == 16 + g, (
                    f"stale mix: generation {g} with {len(coalesced)} BUNs"
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                stop.set()

    threads = [
        threading.Thread(target=writer, args=(0,)),
        threading.Thread(target=writer, args=(2,)),
        threading.Thread(target=reader),
        threading.Thread(target=reader),
    ]
    for t in threads:
        t.start()
    import time

    time.sleep(0.5)
    stop.set()
    for t in threads:
        t.join()
    assert not errors, errors[:3]


def test_concurrent_drop_and_lookup_raise_cleanly(pool):
    """Racing drop/lookup must either succeed or raise BBPError -- no
    KeyError/AttributeError from half-updated catalog state."""
    import threading

    from repro.monet.errors import BBPError

    stop = threading.Event()
    errors = []

    def churn():
        while not stop.is_set():
            try:
                pool.register("flicker", dense_bat("int", [1, 2, 3]))
                pool.drop("flicker")
            except BBPError:
                pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                stop.set()

    def probe():
        while not stop.is_set():
            try:
                if pool.exists("flicker"):
                    pool.lookup("flicker")
            except BBPError:
                pass  # dropped between exists and lookup: acceptable
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                stop.set()

    threads = [threading.Thread(target=churn) for _ in range(2)] + [
        threading.Thread(target=probe) for _ in range(2)
    ]
    for t in threads:
        t.start()
    import time

    time.sleep(0.4)
    stop.set()
    for t in threads:
        t.join()
    assert not errors, errors[:3]
