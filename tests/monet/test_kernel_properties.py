"""Property-based tests: BAT operators vs naive Python models.

Each kernel operator is checked against a straightforward Python
implementation of its algebraic definition on random BUN lists --
the contract the Moa compiler relies on.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.monet import kernel
from repro.monet.bat import bat_from_pairs
from repro.monet.groups import group, group_sizes
from repro.monet.aggregates import grouped_sum

_small_int = st.integers(min_value=-20, max_value=20)
_oid = st.integers(min_value=0, max_value=30)

_pairs_int = st.lists(st.tuples(_oid, _small_int), max_size=40)
_pairs_str = st.lists(
    st.tuples(_oid, st.sampled_from(["a", "b", "c", "d", "e"])), max_size=40
)


@given(_pairs_int, _small_int)
def test_select_matches_filter(pairs, needle):
    bat = bat_from_pairs("oid", "int", pairs)
    expected = [(h, t) for h, t in pairs if t == needle]
    assert kernel.select(bat, needle).to_pairs() == expected


@given(_pairs_int, _small_int, _small_int)
def test_range_select_matches_filter(pairs, low, high):
    lo, hi = min(low, high), max(low, high)
    bat = bat_from_pairs("oid", "int", pairs)
    expected = [(h, t) for h, t in pairs if lo <= t <= hi]
    assert kernel.select(bat, lo, hi).to_pairs() == expected


@given(_pairs_str, _pairs_str)
def test_join_matches_nested_loop(left_pairs, right_pairs):
    left = bat_from_pairs("oid", "str", left_pairs)
    right = bat_from_pairs("str", "oid", [(t, h) for h, t in right_pairs])
    expected = [
        (lh, rt)
        for lh, lt in left_pairs
        for rt2, rt in [(t, h) for h, t in right_pairs]
        if lt == rt2
    ]
    assert sorted(kernel.join(left, right).to_pairs()) == sorted(expected)


@given(_pairs_int, _pairs_int)
def test_semijoin_matches_membership(left_pairs, right_pairs):
    left = bat_from_pairs("oid", "int", left_pairs)
    right = bat_from_pairs("oid", "int", right_pairs)
    members = {h for h, _ in right_pairs}
    expected = [(h, t) for h, t in left_pairs if h in members]
    assert kernel.semijoin(left, right).to_pairs() == expected


@given(_pairs_int, _pairs_int)
def test_kdiff_is_complement_of_semijoin(left_pairs, right_pairs):
    left = bat_from_pairs("oid", "int", left_pairs)
    right = bat_from_pairs("oid", "int", right_pairs)
    semi = kernel.semijoin(left, right).to_pairs()
    diff = kernel.kdiff(left, right).to_pairs()
    assert sorted(semi + diff) == sorted(left_pairs)


@given(_pairs_int)
def test_reverse_involution(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    assert bat.reverse().reverse().to_pairs() == pairs


@given(_pairs_int)
def test_mark_produces_dense_tail(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    marked = kernel.mark(bat, 7)
    assert [t for _, t in marked.to_pairs()] == list(
        range(7, 7 + len(pairs))
    )
    assert [h for h, _ in marked.to_pairs()] == [h for h, _ in pairs]


@given(_pairs_int)
def test_sort_is_sorted_and_permutation(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    result = kernel.sort(bat).to_pairs()
    assert sorted(result) == sorted(pairs)
    heads = [h for h, _ in result]
    assert heads == sorted(heads)


@given(_pairs_int)
def test_unique_removes_exact_duplicates(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    result = kernel.unique(bat).to_pairs()
    assert len(result) == len(set(pairs))
    assert set(result) == set(pairs)


@given(_pairs_int)
def test_kunique_one_bun_per_head(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    result = kernel.kunique(bat).to_pairs()
    heads = [h for h, _ in result]
    assert len(heads) == len(set(heads)) == len({h for h, _ in pairs})
    first_per_head = {}
    for h, t in pairs:
        first_per_head.setdefault(h, t)
    assert dict(result) == first_per_head


@given(_pairs_int, _pairs_int)
def test_kunion_heads_are_union(left_pairs, right_pairs):
    left = bat_from_pairs("oid", "int", left_pairs)
    right = bat_from_pairs("oid", "int", right_pairs)
    result = kernel.kunion(left, right)
    expected_heads = {h for h, _ in left_pairs} | {h for h, _ in right_pairs}
    assert set(result.head_list()) == expected_heads


@given(st.lists(st.sampled_from(["x", "y", "z", "w"]), max_size=30))
def test_group_ids_dense_and_consistent(values):
    from repro.monet.bat import dense_bat

    bat = dense_bat("str", values)
    grouping = group(bat)
    ids = grouping.tail_list()
    # Same value <=> same id.
    seen = {}
    for value, gid in zip(values, ids):
        assert seen.setdefault(value, gid) == gid
    # Ids are dense, first-appearance ordered.
    if ids:
        assert sorted(set(ids)) == list(range(max(ids) + 1))
        first_ids = list(dict.fromkeys(ids))
        assert first_ids == sorted(first_ids)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        max_size=30,
    )
)
def test_grouped_sum_matches_python(group_values):
    from repro.monet.bat import dense_bat

    groups = [g for g, _ in group_values]
    values = [v for _, v in group_values]
    if not group_values:
        return
    n_groups = max(groups) + 1
    gb = dense_bat("oid", groups)
    vb = dense_bat("dbl", values)
    result = grouped_sum(vb, gb, n_groups).tail_list()
    expected = [0.0] * n_groups
    for g, v in group_values:
        expected[g] += v
    assert len(result) == n_groups
    for got, want in zip(result, expected):
        assert abs(got - want) < 1e-9


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
def test_group_sizes_total(values):
    from repro.monet.bat import dense_bat

    grouping = group(dense_bat("str", values))
    sizes = group_sizes(grouping).tail_list()
    assert sum(sizes) == len(values)
