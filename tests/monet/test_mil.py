"""MIL front-end: lexer, parser, interpreter."""

import pytest

from repro.monet.bat import bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import MILRuntimeError, MILSyntaxError
from repro.monet.mil import parse_program, run_program, tokenize
from repro.monet.mil.ast import unparse
from repro.monet.mil.parser import parse_expression


class TestLexer:
    def test_assignment_tokens(self):
        kinds = [t.kind for t in tokenize("x := 1;")]
        assert kinds == ["IDENT", "ASSIGN", "INT", "SEMI", "EOF"]

    def test_float_and_int(self):
        tokens = tokenize("1 2.5 3e2 4.5e-1")
        assert [t.kind for t in tokens[:-1]] == ["INT", "FLT", "FLT", "FLT"]

    def test_string_with_escapes(self):
        tokens = tokenize(r'"a\"b\n"')
        assert tokens[0].value == 'a"b\n'

    def test_unterminated_string(self):
        with pytest.raises(MILSyntaxError):
            tokenize('"abc')

    def test_multiplex_token(self):
        tokens = tokenize("[+](a, b)")
        assert tokens[0].kind == "MULTIPLEX" and tokens[0].value == "+"

    def test_pump_token(self):
        tokens = tokenize("{sum}(v, g)")
        assert tokens[0].kind == "PUMP" and tokens[0].value == "sum"

    def test_unterminated_multiplex(self):
        with pytest.raises(MILSyntaxError):
            tokenize("[+")

    def test_comments_skipped(self):
        tokens = tokenize("x # comment\n y")
        assert [t.value for t in tokens[:-1]] == ["x", "y"]

    def test_unexpected_character(self):
        with pytest.raises(MILSyntaxError):
            tokenize("x @ y")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestParser:
    def test_method_chain(self):
        expr = parse_expression("b.select(3).reverse.mark(oid(0))")
        assert unparse(expr) == "b.select(3).reverse().mark(oid(0))"

    def test_function_call(self):
        expr = parse_expression("join(a, b)")
        assert unparse(expr) == "join(a, b)"

    def test_multiplex_expression(self):
        expr = parse_expression("[*]([+](a, 1), 2.0)")
        assert unparse(expr) == "[*]([+](a, 1), 2.0)"

    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert unparse(expr) == "(1 + (2 * 3))"

    def test_comparison(self):
        expr = parse_expression("a >= 2")
        assert unparse(expr) == "(a >= 2)"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert unparse(expr) == "neg(x)"

    def test_literals(self):
        assert unparse(parse_expression("true")) == "true"
        assert unparse(parse_expression('"hi"')) == '"hi"'
        assert unparse(parse_expression("nil")) == "nil"

    def test_program_statements(self):
        program = parse_program("x := 1;\ny := x;\n")
        assert len(program.statements) == 2

    def test_missing_semicolon(self):
        with pytest.raises(MILSyntaxError):
            parse_program("x := 1")

    def test_garbage(self):
        with pytest.raises(MILSyntaxError):
            parse_program("x := := 1;")


class TestInterpreter:
    def _pool(self):
        pool = BATBufferPool()
        pool.register("nums", dense_bat("int", [4, 8, 15, 16, 23, 42]))
        pool.register(
            "names", bat_from_pairs("oid", "str", [(0, "a"), (1, "b")])
        )
        return pool

    def test_assignment_and_result(self):
        result = run_program("x := 2; y := x + 3; y;")
        assert result.value == 5
        assert result.env["x"] == 2

    def test_bat_lookup_and_select(self):
        result = run_program('bat("nums").select(10, 30);', self._pool())
        assert result.value.tail_list() == [15, 16, 23]

    def test_method_chain_execution(self):
        result = run_program(
            'bat("nums").select(10, 30).mark(oid(5)).reverse;', self._pool()
        )
        assert result.value.head_list() == [5, 6, 7]

    def test_scalar_builtins(self):
        result = run_program("x := log(exp(2.0)); x;")
        assert result.value == pytest.approx(2.0)

    def test_multiplex_execution(self):
        result = run_program('[+](bat("nums"), 1);', self._pool())
        assert result.value.tail_list() == [5, 9, 16, 17, 24, 43]

    def test_pump_execution(self):
        pool = BATBufferPool()
        pool.register("v", dense_bat("dbl", [1.0, 2.0, 3.0]))
        pool.register("g", dense_bat("oid", [0, 1, 0]))
        result = run_program('{sum}(bat("v"), bat("g"));', pool)
        assert result.value.tail_list() == [4.0, 2.0]

    def test_pump_with_explicit_groups(self):
        pool = BATBufferPool()
        pool.register("v", dense_bat("dbl", [1.0]))
        pool.register("g", dense_bat("oid", [0]))
        result = run_program('{sum}(bat("v"), bat("g"), 3);', pool)
        assert result.value.tail_list() == [1.0, 0.0, 0.0]

    def test_print_captured(self):
        result = run_program("print(42);")
        assert result.printed == ["42"]

    def test_print_bat_rendering(self):
        result = run_program('print(bat("names"));', self._pool())
        assert "a" in result.printed[0] and "#2" in result.printed[0]

    def test_persists(self):
        pool = self._pool()
        run_program('persists("copy", bat("nums").select(42));', pool)
        assert pool.lookup("copy").tail_list() == [42]

    def test_unpersists(self):
        pool = self._pool()
        run_program('unpersists("nums");', pool)
        assert not pool.exists("nums")

    def test_env_bindings(self):
        result = run_program("q;", env={"q": 7})
        assert result.value == 7

    def test_undefined_variable(self):
        with pytest.raises(MILRuntimeError, match="undefined variable"):
            run_program("mystery;")

    def test_unknown_function(self):
        with pytest.raises(MILRuntimeError, match="unknown MIL operation"):
            run_program("frobnicate(1);")

    def test_infix_on_bats_rejected(self):
        with pytest.raises(MILRuntimeError, match="multiplexed"):
            run_program('bat("nums") + 1;', self._pool())

    def test_operator_stats_collected(self):
        result = run_program(
            'x := bat("nums").select(10, 30); y := x.reverse; count(x);',
            self._pool(),
        )
        assert result.stats["select"] == 1
        assert result.stats["reverse"] == 1
        assert result.stats["count"] == 1

    def test_new_and_insert(self):
        result = run_program(
            'b := new("oid", "str"); b := insert(b, oid(0), "x"); b;'
        )
        assert result.value.to_pairs() == [(0, "x")]

    def test_const(self):
        result = run_program('const(bat("nums"), "dbl", 0.5);', self._pool())
        assert result.value.tail_list() == [0.5] * 6

    def test_topn(self):
        result = run_program('bat("nums").topn(2);', self._pool())
        assert result.value.tail_list() == [42, 23]


class TestArityErrors:
    """Builtin misuse raises MILRuntimeError with the expected
    signature and the received argument count, uniformly across
    builtins and call styles."""

    def _pool(self):
        pool = BATBufferPool()
        pool.register("nums", dense_bat("int", [4, 8, 15]))
        return pool

    def test_uselect_reports_received_count(self):
        with pytest.raises(MILRuntimeError, match=r"uselect takes .*got 4"):
            run_program('uselect(bat("nums"), 1, 2, 3);', self._pool())

    def test_select_reports_received_count(self):
        with pytest.raises(MILRuntimeError, match=r"select takes .*got 4"):
            run_program('bat("nums").select(1, 2, 3);', self._pool())

    def test_method_style_join_without_args_is_runtime_error(self):
        with pytest.raises(
            MILRuntimeError, match=r"join takes join\(left, right\), got 1"
        ):
            run_program('bat("nums").join();', self._pool())

    def test_function_style_too_many_args(self):
        with pytest.raises(MILRuntimeError, match=r"reverse takes .*got 2"):
            run_program('reverse(bat("nums"), 1);', self._pool())

    def test_slice_missing_args(self):
        with pytest.raises(MILRuntimeError, match=r"slice takes .*got 2"):
            run_program('bat("nums").slice(1);', self._pool())
