"""Executor-backend selection and lifecycle.

The differential and fuzz suites prove both backends BUN-identical
operator by operator; this suite covers the machinery around them:
how a backend is selected (policy pin > module default; env override >
persisted catalog tuning), when the process pool actually spawns (lazy,
and only above the per-dtype offload threshold), how the process
backend degrades to threads when shared memory is unusable, and that a
clean run leaks neither shared-memory segments nor semaphores
(resource-tracker warnings asserted via a subprocess).
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.monet import fragments as fr
from repro.monet import shm
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import KernelError
from repro.monet.fragments import (
    FragmentationPolicy,
    FragmentedBAT,
    ProcessBackend,
    fragment_bat,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _str_bat(n: int = 600) -> BAT:
    words = ["apple", "banana", None, "cherry", "grape", "apricot"]
    values = np.array([words[i % len(words)] for i in range(n)], dtype=object)
    return BAT(VoidColumn(0, n), Column("str", values))


def _process_policy(**kwargs) -> FragmentationPolicy:
    return FragmentationPolicy(target_size=64, workers=2, backend="process", **kwargs)


def _require_process_backend():
    if not fr.get_backend("process").available():
        pytest.skip("process backend unavailable on this platform")


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


def test_policy_pin_beats_module_default(monkeypatch):
    monkeypatch.setattr(fr, "DEFAULT_BACKEND", "thread")
    fb = fragment_bat(_str_bat(), _process_policy())
    assert fr._resolve_backend(fb) is fr.get_backend("process")
    fb_default = fragment_bat(_str_bat(), FragmentationPolicy(target_size=64))
    assert fr._resolve_backend(fb_default) is fr.get_backend("thread")
    monkeypatch.setattr(fr, "DEFAULT_BACKEND", "process")
    # Unpinned policies read the module default live, per call.
    assert fr._resolve_backend(fb_default) is fr.get_backend("process")


def test_unknown_backend_rejected_everywhere():
    with pytest.raises(KernelError):
        FragmentationPolicy(backend="gpu")
    with pytest.raises(KernelError):
        fr.get_backend("gpu")
    with pytest.raises(KernelError):
        fr.set_default_tuning(backend="gpu")


def test_env_override_selects_backend_at_import():
    """REPRO_EXECUTOR_BACKEND seeds the module default (a fresh
    interpreter, so the import-time read is what is tested)."""
    code = "import repro.monet.fragments as fr; print(fr.DEFAULT_BACKEND)"
    env = dict(os.environ, PYTHONPATH=REPO_SRC, REPRO_EXECUTOR_BACKEND="process")
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "process"


def test_default_tuning_reports_backend_fields():
    tuning = fr.default_tuning()
    assert tuning["backend"] in fr.BACKEND_NAMES
    assert tuning["process_min"] >= 0


# ----------------------------------------------------------------------
# Lazy spawn and the per-dtype offload threshold
# ----------------------------------------------------------------------


def test_process_pool_spawns_lazily_and_respects_threshold(monkeypatch):
    _require_process_backend()
    fresh = ProcessBackend()
    monkeypatch.setitem(fr._BACKENDS, "process", fresh)
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 10_000)
    fb = fragment_bat(_str_bat(600), _process_policy())
    thread_result = fr.likeselect(fb, "ap").to_bat().to_pairs()
    # 600 BUNs < threshold: the predicate ran on threads, no pool.
    assert not fresh.spawned()
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    process_result = fr.likeselect(fb, "ap").to_bat().to_pairs()
    assert fresh.spawned()
    assert process_result == thread_result
    fresh.shutdown()


def test_numeric_predicates_never_offload(monkeypatch):
    """The per-dtype rule: numeric selects stay on threads (numpy
    releases the GIL there) even under the process backend."""
    _require_process_backend()
    fresh = ProcessBackend()
    monkeypatch.setitem(fr._BACKENDS, "process", fresh)
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    ints = BAT(VoidColumn(0, 500), Column("int", np.arange(500) % 7))
    fb = fragment_bat(ints, _process_policy())
    result = fr.select(fb, 1, 4).to_bat()
    assert len(result) > 0
    assert not fresh.spawned()
    fresh.shutdown()


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------


def test_process_backend_falls_back_without_shared_memory(monkeypatch):
    """With multiprocessing.shared_memory unavailable the process
    backend declines every offload and the thread path computes the
    identical result -- correctness never depends on the platform."""
    fb = fragment_bat(_str_bat(), _process_policy())
    expected = fr.likeselect(
        fragment_bat(_str_bat(), FragmentationPolicy(target_size=64, workers=2)), "ap"
    ).to_bat().to_pairs()
    monkeypatch.setattr(shm, "shared_memory", None)
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    assert not fr.get_backend("process").available()
    live_before = set(shm._LIVE_SEGMENTS)
    result = fr.likeselect(fb, "ap").to_bat().to_pairs()
    assert result == expected
    assert shm._LIVE_SEGMENTS == live_before  # nothing was exported


def test_process_backend_degrades_on_export_failure(monkeypatch):
    """An OSError during shared-memory export (full /dev/shm, seccomp)
    disables the backend for the session and falls back to threads."""
    _require_process_backend()
    fresh = ProcessBackend()
    monkeypatch.setitem(fr._BACKENDS, "process", fresh)
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)

    def broken_export(column):
        raise OSError("no shared memory left")

    monkeypatch.setattr(shm, "export_column", broken_export)
    fb = fragment_bat(_str_bat(), _process_policy())
    expected = [p for p in fb.to_bat().to_pairs() if p[1] and "ap" in p[1]]
    assert fr.likeselect(fb, "ap").to_bat().to_pairs() == expected
    assert not fresh.available()
    # Still degraded (and still correct) on the next call.
    assert fr.likeselect(fb, "ap").to_bat().to_pairs() == expected
    fresh.shutdown()


# ----------------------------------------------------------------------
# Shutdown hygiene
# ----------------------------------------------------------------------


def test_offload_leaves_no_live_segments(monkeypatch):
    _require_process_backend()
    monkeypatch.setattr(fr, "DEFAULT_BACKEND", "process")
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    fb = fragment_bat(_str_bat(), FragmentationPolicy(target_size=64, workers=2))
    left = BAT(Column("str", _str_bat().tail_values()), Column("int", np.arange(600)))
    fl = fragment_bat(left, FragmentationPolicy(target_size=64, workers=2))
    right = BAT(
        Column("str", np.array(["apple", None], dtype=object)),
        Column("int", np.arange(2)),
    )
    fr.likeselect(fb, "ap")
    fr.semijoin(fl, right)
    fr.kintersect(fl, right)
    assert shm._LIVE_SEGMENTS == set()
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        leftovers = [p.name for p in shm_dir.glob(f"{shm.SHM_PREFIX}*")]
        assert leftovers == []


def test_shutdown_is_clean_and_backend_respawns(monkeypatch):
    _require_process_backend()
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    fb = fragment_bat(_str_bat(), _process_policy())
    first = fr.likeselect(fb, "ap").to_bat().to_pairs()
    fr.shutdown_backends()
    backend = fr.get_backend("process")
    assert not backend.spawned()
    assert backend.available()  # shutdown is not degradation
    assert fr.likeselect(fb, "ap").to_bat().to_pairs() == first
    assert backend.spawned()


def test_no_resource_tracker_warnings_on_clean_exit():
    """End-to-end leak check in a fresh interpreter: offloaded work,
    explicit shutdown, interpreter exit -- the multiprocessing resource
    tracker must not report leaked shared_memory or semaphore objects
    (its warnings go to stderr at exit, so a subprocess observes what
    an in-process test cannot)."""
    _require_process_backend()
    script = textwrap.dedent(
        """
        def main():
            import numpy as np

            from repro.monet import fragments as fr
            from repro.monet.bat import BAT, Column, VoidColumn
            from repro.monet.fragments import FragmentationPolicy, fragment_bat

            fr.PROCESS_MIN_BUNS = 0
            words = np.array(
                ["apple", "banana", None, "cherry"] * 150, dtype=object
            )
            bat = BAT(VoidColumn(0, len(words)), Column("str", words))
            policy = FragmentationPolicy(
                target_size=64, workers=2, backend="process"
            )
            fb = fragment_bat(bat, policy)
            result = fr.likeselect(fb, "ap")
            assert len(result) > 0
            assert fr._PROCESS_BACKEND.spawned()
            fr.shutdown_backends()
            print("OK")


        if __name__ == "__main__":
            main()
        """
    )
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    env.pop("REPRO_EXECUTOR_BACKEND", None)
    out = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert out.returncode == 0, out.stderr
    assert "OK" in out.stdout
    assert "leaked" not in out.stderr, out.stderr
    assert "resource_tracker" not in out.stderr, out.stderr


# ----------------------------------------------------------------------
# Results across backends for the remaining offloaded shapes
# ----------------------------------------------------------------------


def test_roundrobin_offload_preserves_positions(monkeypatch):
    _require_process_backend()
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    bat = _str_bat(601)
    thread_fb = fragment_bat(
        bat, FragmentationPolicy(target_size=64, workers=2, strategy="roundrobin")
    )
    process_fb = fragment_bat(bat, _process_policy(strategy="roundrobin"))
    expected = fr.likeselect(thread_fb, "an").to_bat().to_pairs()
    got = fr.likeselect(process_fb, "an")
    assert isinstance(got, FragmentedBAT)
    assert got.to_bat().to_pairs() == expected


def test_str_equality_and_range_select_offload(monkeypatch):
    _require_process_backend()
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    bat = _str_bat()
    thread_fb = fragment_bat(bat, FragmentationPolicy(target_size=64, workers=2))
    process_fb = fragment_bat(bat, _process_policy())
    for call in (
        lambda fb: fr.select(fb, "apple"),
        lambda fb: fr.select(fb, "b", "d"),
        lambda fb: fr.select(fb, "b", None, include_low=False),
        lambda fb: fr.uselect(fb, "apple"),
    ):
        assert call(process_fb).to_bat().to_pairs() == call(thread_fb).to_bat().to_pairs()
