"""Differential kernel testing: fragmented vs monolithic vs naive.

For a seeded population of randomized BATs (numeric + object dtypes,
NILs, duplicates, empty inputs) this suite asserts, operator by
operator:

1. the monolithic kernel matches a naive pure-Python reference
   evaluated over the *stored* column values (NIL sentinels included,
   so sentinel arithmetic is part of the contract), and
2. fragmented execution over >= 3 fragments (both range and
   round-robin splits) is BUN-for-BUN identical to the monolithic
   kernel, and
3. the property flags of every produced BAT are *sound* (a flag is
   only ever True when the property actually holds).

Scalar/grouped double aggregates compare with a tiny tolerance: the
fragmented variants combine partial sums, which is equivalent only up
to floating-point addition order.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.monet import aggregates as agg
from repro.monet import fragments as fr
from repro.monet import kernel
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.fragments import FragmentationPolicy, FragmentedBAT, fragment_bat
from repro.monet.groups import group

N_CASES = 60
STRATEGIES = ("range", "roundrobin")
BACKENDS = ("thread", "process")


@pytest.fixture(params=BACKENDS)
def exec_backend(request, monkeypatch):
    """Run the decorated differential test under both executor
    backends.  The offload threshold drops to zero so even the tiny
    differential BATs take the process path (object-dtype predicates
    ship through shared memory; numeric work stays on threads by the
    per-dtype rule) -- both backends must be BUN-identical."""
    if request.param == "process" and not fr.get_backend("process").available():
        pytest.skip("process backend unavailable on this platform")
    monkeypatch.setattr(fr, "DEFAULT_BACKEND", request.param)
    monkeypatch.setattr(fr, "PROCESS_MIN_BUNS", 0)
    return request.param


# ----------------------------------------------------------------------
# Randomized BAT generation
# ----------------------------------------------------------------------


def _random_bat(rng: np.random.Generator, ttype: str, *, nils: bool = True) -> BAT:
    """A random void-headed BAT; sizes include empty and tiny inputs."""
    n = int(rng.choice([0, 1, 2, 3, 17, 64, 65, 120, 200]))
    seqbase = int(rng.integers(0, 5))
    if ttype == "int":
        values = rng.integers(-20, 20, n).astype(np.int64)
        if nils and n:
            values[rng.random(n) < 0.1] = np.iinfo(np.int64).min
        tail = Column("int", values)
    elif ttype == "oid":
        values = rng.integers(0, 40, n).astype(np.int64)
        tail = Column("oid", values)
    elif ttype == "dbl":
        values = np.round(rng.random(n) * 10, 3)
        if nils and n:
            values[rng.random(n) < 0.1] = np.nan
        tail = Column("dbl", values)
    elif ttype == "str":
        words = ["ape", "bat", "cat", "dog", "eel", "fox", "gnu", "owl"]
        values = np.empty(n, dtype=object)
        for i in range(n):
            if nils and rng.random() < 0.1:
                values[i] = None
            else:
                values[i] = str(rng.choice(words)) + ("x" if rng.random() < 0.3 else "")
        tail = Column("str", values)
    else:  # pragma: no cover - test config error
        raise ValueError(ttype)
    return BAT(VoidColumn(seqbase, n), tail)


def _random_nonvoid_head_bat(rng: np.random.Generator, n: int) -> BAT:
    """A BAT with a materialized (duplicate-rich) oid head."""
    heads = rng.integers(0, max(1, n // 2), n).astype(np.int64)
    tails = rng.integers(-5, 5, n).astype(np.int64)
    return BAT(Column("oid", heads), Column("int", tails))


def _fragment(bat: BAT, strategy: str) -> FragmentedBAT:
    """Split into >= 3 fragments whenever the input has >= 3 BUNs.

    Pinning ``workers=2`` forces the thread-pool fan-out even for tiny
    inputs (which would otherwise take the serial shortcut), so the
    differential comparison covers the parallel code path.
    """
    target = max(1, -(-len(bat) // 4))  # ceil(n/4) -> 4 fragments
    return fragment_bat(
        bat, FragmentationPolicy(target_size=target, strategy=strategy, workers=2)
    )


# ----------------------------------------------------------------------
# Naive pure-Python references (over stored values)
# ----------------------------------------------------------------------


def _raw_pairs(bat: BAT):
    return list(zip(bat.head_values().tolist(), bat.tail_values().tolist()))


def _ref_select_range(pairs, low, high, include_low, include_high):
    out = []
    for h, t in pairs:
        if t is None:
            continue
        if isinstance(t, float) and math.isnan(t):
            continue
        ok = True
        if low is not None:
            ok = t >= low if include_low else t > low
        if ok and high is not None:
            ok = t <= high if include_high else t < high
        if ok:
            out.append((h, t))
    return out


def _ref_select_equal(pairs, value):
    return [(h, t) for h, t in pairs if t is not None and t == value]


def _ref_likeselect(pairs, pattern):
    return [(h, t) for h, t in pairs if t is not None and pattern in t]


def _ref_fetchjoin(pairs, right_seqbase, right_tails):
    out = []
    for h, t in pairs:
        position = t - right_seqbase
        if 0 <= position < len(right_tails):
            out.append((h, right_tails[position]))
    return out


def _is_nil(value) -> bool:
    return value is None or (isinstance(value, float) and math.isnan(value))


def _ref_join(pairs, right_pairs):
    """NIL (None/NaN) never joins, not even with itself -- Monet
    semantics, asserted since the kernel drops NIL probes/builds."""
    out = []
    for h, t in pairs:
        if _is_nil(t):
            continue
        for rh, rt in right_pairs:
            if _is_nil(rh):
                continue
            if t == rh:
                out.append((h, rt))
    return out


def _ref_semijoin(pairs, right_heads):
    members = set(right_heads)
    return [(h, t) for h, t in pairs if h in members]


def _ref_antijoin(pairs, right_heads):
    members = set(right_heads)
    return [(h, t) for h, t in pairs if h not in members]


def _ref_mark(pairs, base):
    return [(h, base + i) for i, (h, _) in enumerate(pairs)]


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------


def _same_value(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def assert_pairs_equal(result: BAT, expected) -> None:
    got = _raw_pairs(result)
    assert len(got) == len(expected), f"{len(got)} BUNs, expected {len(expected)}"
    for position, (g, e) in enumerate(zip(got, expected)):
        assert _same_value(g[0], e[0]) and _same_value(g[1], e[1]), (
            f"BUN {position}: got {g}, expected {e}"
        )


def assert_flags_sound(bat: BAT) -> None:
    """Every True property flag must actually hold.

    Sortedness is judged under the kernel's ordering of stored values:
    NaN (dbl NIL) and ``None`` (str NIL) sort last, the int NIL
    sentinel is just a very negative number."""
    heads = bat.head_values().tolist()
    tails = bat.tail_values().tolist()

    def sort_key(value):
        if value is None:
            return (1, "")
        if isinstance(value, float) and math.isnan(value):
            return (1, 0.0)
        return (0, value)

    def nondecreasing(vals):
        try:
            return all(
                sort_key(a) <= sort_key(b) for a, b in zip(vals, vals[1:])
            )
        except TypeError:
            return False

    if bat.hsorted:
        assert nondecreasing(heads), "hsorted flag on unsorted head"
    if bat.tsorted:
        assert nondecreasing(tails), "tsorted flag on unsorted tail"
    if bat.hkey:
        assert len(set(map(repr, heads))) == len(heads), "hkey flag with dup heads"
    if bat.tkey:
        assert len(set(map(repr, tails))) == len(tails), "tkey flag with dup tails"
    if bat.hdense:
        assert bat.head.is_void


def _check_op(monolithic: BAT, reference, fragmented_results) -> None:
    """Full differential check for one operator application."""
    assert_pairs_equal(monolithic, reference)
    assert_flags_sound(monolithic)
    for result in fragmented_results:
        coalesced = result.to_bat()
        assert_pairs_equal(coalesced, reference)
        assert_flags_sound(coalesced)
        for fragment in result.fragments:
            assert_flags_sound(fragment)


# ----------------------------------------------------------------------
# The differential suites
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(N_CASES))
def test_select_family_differential(seed, exec_backend):
    rng = np.random.default_rng(seed)
    ttype = ("int", "dbl", "oid", "str")[seed % 4]
    bat = _random_bat(rng, ttype)
    pairs = _raw_pairs(bat)
    fbs = [_fragment(bat, s) for s in STRATEGIES]

    if ttype == "str":
        value = "cat"
        _check_op(
            kernel.select(bat, value),
            _ref_select_equal(pairs, value),
            [fr.select(fb, value) for fb in fbs],
        )
        pattern = "a"
        _check_op(
            kernel.likeselect(bat, pattern),
            _ref_likeselect(pairs, pattern),
            [fr.likeselect(fb, pattern) for fb in fbs],
        )
        low, high = "b", "f"
    else:
        value = int(rng.integers(-20, 40)) if ttype != "dbl" else 3.0
        _check_op(
            kernel.select(bat, value),
            _ref_select_equal(pairs, value),
            [fr.select(fb, value) for fb in fbs],
        )
        low, high = (-5, 10) if ttype != "dbl" else (2.0, 7.5)
    include_low = bool(rng.integers(0, 2))
    include_high = bool(rng.integers(0, 2))
    _check_op(
        kernel.select(bat, low, high, include_low=include_low, include_high=include_high),
        _ref_select_range(pairs, low, high, include_low, include_high),
        [
            fr.select(fb, low, high, include_low=include_low, include_high=include_high)
            for fb in fbs
        ],
    )
    # Open-ended range on one side.
    _check_op(
        kernel.select(bat, low, None),
        _ref_select_range(pairs, low, None, True, True),
        [fr.select(fb, low, None) for fb in fbs],
    )


@pytest.mark.parametrize("seed", range(N_CASES))
def test_uselect_and_mark_differential(seed):
    rng = np.random.default_rng(100 + seed)
    bat = _random_bat(rng, "int")
    pairs = _raw_pairs(bat)
    fbs = [_fragment(bat, s) for s in STRATEGIES]
    selected = _ref_select_range(pairs, -10, 10, True, True)
    _check_op(
        kernel.uselect(bat, -10, 10),
        _ref_mark(selected, 0),
        [fr.uselect(fb, -10, 10) for fb in fbs],
    )
    base = int(rng.integers(0, 100))
    _check_op(
        kernel.mark(bat, base),
        _ref_mark(pairs, base),
        [fr.mark(fb, base) for fb in fbs],
    )


@pytest.mark.parametrize("seed", range(N_CASES))
def test_fetchjoin_differential(seed):
    rng = np.random.default_rng(200 + seed)
    n = int(rng.choice([0, 1, 40, 120]))
    left = BAT(VoidColumn(0, n), Column("oid", rng.integers(-3, 30, n)))
    right_seqbase = int(rng.integers(0, 4))
    right_n = int(rng.integers(0, 25))
    right = BAT(
        VoidColumn(right_seqbase, right_n),
        Column("dbl", np.round(rng.random(right_n), 3)),
    )
    pairs = _raw_pairs(left)
    right_tails = right.tail_values().tolist()
    _check_op(
        kernel.fetchjoin(left, right),
        _ref_fetchjoin(pairs, right_seqbase, right_tails),
        [fr.fetchjoin(_fragment(left, s), right) for s in STRATEGIES],
    )


@pytest.mark.parametrize("seed", range(N_CASES))
def test_join_differential(seed):
    rng = np.random.default_rng(300 + seed)
    n = int(rng.choice([0, 1, 30, 90]))
    if seed % 3 == 2:
        # Object-dtype (string) join, NILs (None) on both sides: the
        # dict index skips them, so NIL never matches NIL.
        words = ["ape", "bat", "cat", "dog", "eel"]
        probe_vals = np.empty(n, dtype=object)
        for i in range(n):
            probe_vals[i] = None if rng.random() < 0.15 else str(rng.choice(words))
        left = BAT(VoidColumn(0, n), Column("str", probe_vals))
        m = int(rng.integers(0, 12))
        build_vals = np.empty(m, dtype=object)
        for i in range(m):
            build_vals[i] = None if rng.random() < 0.15 else str(rng.choice(words))
        right = BAT(Column("str", build_vals), Column("int", rng.integers(0, 9, m)))
    elif seed % 3 == 1:
        # dbl join with NaN (dbl NIL) probes *and* builds: the
        # vectorized path must drop NaN probes (Monet: NIL != NIL).
        probe_vals = np.round(rng.random(n) * 8, 0)
        if n:
            probe_vals[rng.random(n) < 0.2] = np.nan
        left = BAT(VoidColumn(0, n), Column("dbl", probe_vals))
        m = int(rng.integers(0, 12))
        build_vals = np.round(rng.random(m) * 8, 0)
        if m:
            build_vals[rng.random(m) < 0.2] = np.nan
        right = BAT(Column("dbl", build_vals), Column("int", rng.integers(-4, 4, m)))
    else:
        left = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, 15, n)))
        m = int(rng.integers(0, 12))
        right = BAT(
            Column("oid", rng.integers(0, 15, m).astype(np.int64)),
            Column("int", rng.integers(-4, 4, m)),
        )
    pairs = _raw_pairs(left)
    right_pairs = _raw_pairs(right)
    _check_op(
        kernel.join(left, right),
        _ref_join(pairs, right_pairs),
        [fr.join(_fragment(left, s), right) for s in STRATEGIES],
    )


def test_nil_join_never_matches():
    """Monet NIL semantics: a dbl NIL (NaN) probe matches nothing, a
    NaN build value is unreachable, and an outer join NIL-pads the NaN
    probe like any unmatched BUN -- on the monolithic and the
    fragmented path alike."""
    left = BAT(VoidColumn(0, 4), Column("dbl", np.array([1.0, np.nan, 2.0, np.nan])))
    right = BAT(
        Column("dbl", np.array([np.nan, 1.0, np.nan])),
        Column("int", np.array([7, 8, 9], dtype=np.int64)),
    )
    assert kernel.join(left, right).to_pairs() == [(0, 8)]
    assert kernel.outerjoin(left, right).to_pairs() == [
        (0, 8), (1, None), (2, None), (3, None)
    ]
    for strategy in STRATEGIES:
        fb = _fragment(left, strategy)
        assert fr.join(fb, right).to_bat().to_pairs() == [(0, 8)]
        assert fr.outerjoin(fb, right).to_bat().to_pairs() == [
            (0, 8), (1, None), (2, None), (3, None)
        ]
    # str NIL (None) likewise never matches None.
    sleft = BAT(VoidColumn(0, 2), Column("str", np.array(["a", None], dtype=object)))
    sright = BAT(
        Column("str", np.array([None, "a"], dtype=object)),
        Column("int", np.array([1, 2], dtype=np.int64)),
    )
    assert kernel.join(sleft, sright).to_pairs() == [(0, 2)]
    assert kernel.outerjoin(sleft, sright).to_pairs() == [(0, 2), (1, None)]
    # Head membership (semijoin/kdiff) follows the same rule: a NIL
    # head is never a member, even of a NIL-containing right side.
    hleft = BAT(
        Column("str", np.array(["a", None, "b"], dtype=object)),
        Column("int", np.array([1, 2, 3], dtype=np.int64)),
    )
    hright = BAT(
        Column("str", np.array([None, "a"], dtype=object)),
        Column("int", np.array([0, 0], dtype=np.int64)),
    )
    assert kernel.semijoin(hleft, hright).to_pairs() == [("a", 1)]
    assert kernel.kdiff(hleft, hright).to_pairs() == [(None, 2), ("b", 3)]
    dleft = BAT(
        Column("dbl", np.array([1.0, np.nan])),
        Column("int", np.array([1, 2], dtype=np.int64)),
    )
    dright = BAT(
        Column("dbl", np.array([np.nan, 1.0])),
        Column("int", np.array([0, 0], dtype=np.int64)),
    )
    assert kernel.semijoin(dleft, dright).to_pairs() == [(1.0, 1)]
    assert kernel.kdiff(dleft, dright).head_list() == [None]


@pytest.mark.parametrize("seed", range(N_CASES))
def test_semijoin_antijoin_differential(seed):
    rng = np.random.default_rng(400 + seed)
    n = int(rng.choice([0, 1, 40, 130]))
    left = _random_nonvoid_head_bat(rng, n)
    if seed % 2:
        m = int(rng.integers(0, 20))
        right = BAT(
            Column("oid", rng.integers(0, max(1, n), m).astype(np.int64)),
            Column("int", rng.integers(0, 3, m)),
        )
        right_heads = right.head_values().tolist()
    else:
        seqbase = int(rng.integers(0, 5))
        m = int(rng.integers(0, 20))
        right = BAT(VoidColumn(seqbase, m), Column("int", rng.integers(0, 3, m)))
        right_heads = list(range(seqbase, seqbase + m))
    pairs = _raw_pairs(left)
    _check_op(
        kernel.semijoin(left, right),
        _ref_semijoin(pairs, right_heads),
        [fr.semijoin(_fragment(left, s), right) for s in STRATEGIES],
    )
    _check_op(
        kernel.kdiff(left, right),
        _ref_antijoin(pairs, right_heads),
        [fr.antijoin(_fragment(left, s), right) for s in STRATEGIES],
    )


@pytest.mark.parametrize("seed", range(N_CASES))
def test_scalar_aggregates_differential(seed):
    rng = np.random.default_rng(500 + seed)
    ttype = "int" if seed % 2 else "dbl"
    # NIL-free: int NILs are sentinel ints the kernel sums like any
    # number (covered elsewhere); dbl NaNs poison sums identically in
    # both paths but make tolerance comparison meaningless.
    bat = _random_bat(rng, ttype, nils=False)
    raw = bat.tail_values().tolist()
    fbs = [_fragment(bat, s) for s in STRATEGIES]

    ref_count = len(raw)
    ref_sum = sum(raw) if raw else (0.0 if ttype == "dbl" else 0)
    ref_min = min(raw) if raw else None
    ref_max = max(raw) if raw else None
    ref_avg = (sum(raw) / len(raw)) if raw else None

    assert agg.count(bat) == ref_count
    assert agg.max_(bat) == ref_max
    assert agg.min_(bat) == ref_min
    _assert_scalar_close(agg.sum_(bat), ref_sum)
    _assert_scalar_close(agg.avg(bat), ref_avg)
    for fb in fbs:
        assert fr.count(fb) == ref_count
        assert fr.max_(fb) == ref_max
        assert fr.min_(fb) == ref_min
        _assert_scalar_close(fr.sum_(fb), ref_sum)
        _assert_scalar_close(fr.avg(fb), ref_avg)


def _assert_scalar_close(got, expected):
    if expected is None or got is None:
        assert got is None and expected is None
    else:
        assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)


@pytest.mark.parametrize("seed", range(N_CASES))
def test_grouped_aggregates_differential(seed):
    rng = np.random.default_rng(600 + seed)
    n = int(rng.choice([0, 1, 50, 160]))
    values = BAT(VoidColumn(0, n), Column("dbl", np.round(rng.random(n) * 5, 3)))
    keys = BAT(VoidColumn(0, n), Column("int", rng.integers(0, 12, n)))
    grouping = group(keys)

    # Naive per-group reference.
    members: dict = {}
    ids = grouping.tail_values().tolist()
    raw = values.tail_values().tolist()
    for gid, value in zip(ids, raw):
        members.setdefault(gid, []).append(value)
    size = max(ids) + 1 if ids else 0
    ref_sum = [sum(members.get(g, [0.0])) for g in range(size)]
    ref_count = [len(members.get(g, [])) for g in range(size)]
    ref_max = [max(members[g]) if g in members else None for g in range(size)]
    ref_min = [min(members[g]) if g in members else None for g in range(size)]
    ref_avg = [
        (sum(members[g]) / len(members[g])) if g in members else None
        for g in range(size)
    ]

    mono = {
        "sum": agg.grouped_sum(values, grouping),
        "count": agg.grouped_count(values, grouping),
        "max": agg.grouped_max(values, grouping),
        "min": agg.grouped_min(values, grouping),
        "avg": agg.grouped_avg(values, grouping),
    }
    _assert_grouped(mono, ref_sum, ref_count, ref_max, ref_min, ref_avg)
    for strategy in STRATEGIES:
        policy = FragmentationPolicy(
            target_size=max(1, -(-n // 4)), strategy=strategy
        )
        fv = fragment_bat(values, policy)
        fg = fragment_bat(grouping, policy)
        frag = {
            "sum": fr.grouped_sum(fv, fg),
            "count": fr.grouped_count(fv, fg),
            "max": fr.grouped_max(fv, fg),
            "min": fr.grouped_min(fv, fg),
            "avg": fr.grouped_avg(fv, fg),
        }
        _assert_grouped(frag, ref_sum, ref_count, ref_max, ref_min, ref_avg)


def _assert_grouped(results, ref_sum, ref_count, ref_max, ref_min, ref_avg):
    assert results["sum"].tail_values().tolist() == pytest.approx(ref_sum)
    assert results["count"].tail_values().tolist() == ref_count
    assert results["max"].tail_list() == pytest.approx(ref_max)
    assert results["min"].tail_list() == pytest.approx(ref_min)
    assert results["avg"].tail_list() == pytest.approx(ref_avg)


def test_nan_extremes_match_monolithic():
    """dbl NIL (NaN) members poison their group/aggregate exactly like
    the monolithic kernel -- regression for an fmax/fmin-based combine
    that silently dropped NaN partials."""
    values = BAT(
        VoidColumn(0, 4),
        Column("dbl", np.array([np.nan, 1.0, 5.0, 2.0])),
    )
    keys = BAT(VoidColumn(0, 4), Column("int", np.array([0, 1, 0, 1], dtype=np.int64)))
    grouping = group(keys)
    for strategy in STRATEGIES:
        policy = FragmentationPolicy(target_size=2, strategy=strategy, workers=2)
        fv = fragment_bat(values, policy)
        fg = fragment_bat(grouping, policy)
        for mono_fn, frag_fn in (
            (agg.grouped_max, fr.grouped_max),
            (agg.grouped_min, fr.grouped_min),
        ):
            mono = mono_fn(values, grouping).tail_list()
            frag = frag_fn(fv, fg).tail_list()
            assert len(mono) == len(frag) == 2
            for m, f in zip(mono, frag):
                assert _same_value(m, f) or (m is None and f is None), (mono, frag)
        # Scalar extremes: NaN anywhere makes the whole aggregate NaN.
        assert math.isnan(agg.max_(values))
        assert math.isnan(fr.max_(fv))
        assert math.isnan(agg.min_(values))
        assert math.isnan(fr.min_(fv))
    # NaN in the *last* fragment too (order dependence of Python max()).
    tail_nan = BAT(VoidColumn(0, 4), Column("dbl", np.array([5.0, 1.0, 2.0, np.nan])))
    ft = fragment_bat(tail_nan, FragmentationPolicy(target_size=2, workers=2))
    assert math.isnan(fr.max_(ft)) and math.isnan(fr.min_(ft))


# ----------------------------------------------------------------------
# Order-sensitive operators: sort / unique / refine
# ----------------------------------------------------------------------


def _nil_key(value):
    """NILs compare equal under the identity rule (kernel docstring):
    NaN and None normalize to one sentinel for dedup references."""
    if value is None:
        return ("\0nil",)
    if isinstance(value, float) and math.isnan(value):
        return ("\0nil",)
    return value


def _order_key(value):
    """The kernel's sort order over stored values: NaN/None last, the
    int NIL sentinel is simply the most negative int."""
    if value is None:
        return (1, "")
    if isinstance(value, float) and math.isnan(value):
        return (1, 0.0)
    return (0, value)


def _ref_sort(pairs):
    return sorted(pairs, key=lambda p: _order_key(p[0]))


def _ref_tsort(pairs):
    return sorted(pairs, key=lambda p: _order_key(p[1]))


def _ref_unique(pairs):
    seen = set()
    out = []
    for h, t in pairs:
        key = (_nil_key(h), _nil_key(t))
        if key not in seen:
            seen.add(key)
            out.append((h, t))
    return out


def _ref_kunique(pairs):
    seen = set()
    out = []
    for h, t in pairs:
        key = _nil_key(h)
        if key not in seen:
            seen.add(key)
            out.append((h, t))
    return out


def _ref_tunique(pairs):
    seen = set()
    out = []
    for h, t in pairs:
        key = _nil_key(t)
        if key not in seen:
            seen.add(key)
            out.append((h, t))
    return out


def _headed_bat(rng: np.random.Generator, htype: str, n: int, *, nils=True) -> BAT:
    """A duplicate-rich BAT with a materialized head of *htype* and an
    int tail (the shape sort/unique actually reorder)."""
    if htype == "int":
        heads = rng.integers(-8, 8, n).astype(np.int64)
        if nils and n:
            heads[rng.random(n) < 0.15] = np.iinfo(np.int64).min
        head = Column("int", heads)
    elif htype == "oid":
        head = Column("oid", rng.integers(0, 10, n).astype(np.int64))
    elif htype == "dbl":
        heads = np.round(rng.random(n) * 4, 1)
        if nils and n:
            heads[rng.random(n) < 0.2] = np.nan
        head = Column("dbl", heads)
    elif htype == "str":
        words = ["ape", "bat", "cat", "dog"]
        heads = np.empty(n, dtype=object)
        for i in range(n):
            if nils and rng.random() < 0.2:
                heads[i] = None
            else:
                heads[i] = str(rng.choice(words))
        head = Column("str", heads)
    else:  # pragma: no cover - test config error
        raise ValueError(htype)
    tails = rng.integers(-4, 4, n).astype(np.int64)
    if nils and n:
        tails[rng.random(n) < 0.1] = np.iinfo(np.int64).min
    return BAT(head, Column("int", tails))


@pytest.mark.parametrize("seed", range(N_CASES))
def test_sort_differential(seed):
    rng = np.random.default_rng(800 + seed)
    htype = ("int", "dbl", "str", "oid")[seed % 4]
    n = int(rng.choice([0, 1, 2, 17, 64, 120]))
    bat = _headed_bat(rng, htype, n)
    pairs = _raw_pairs(bat)
    fbs = [_fragment(bat, s) for s in STRATEGIES]
    _check_op(kernel.sort(bat), _ref_sort(pairs), [fr.sort(fb) for fb in fbs])
    _check_op(kernel.tsort(bat), _ref_tsort(pairs), [fr.tsort(fb) for fb in fbs])


@pytest.mark.parametrize("seed", range(N_CASES))
def test_unique_family_differential(seed):
    rng = np.random.default_rng(900 + seed)
    htype = ("int", "dbl", "str", "oid")[seed % 4]
    n = int(rng.choice([0, 1, 2, 17, 64, 120]))
    bat = _headed_bat(rng, htype, n)
    pairs = _raw_pairs(bat)
    fbs = [_fragment(bat, s) for s in STRATEGIES]
    _check_op(kernel.unique(bat), _ref_unique(pairs), [fr.unique(fb) for fb in fbs])
    _check_op(
        kernel.kunique(bat), _ref_kunique(pairs), [fr.kunique(fb) for fb in fbs]
    )
    _check_op(
        kernel.tunique(bat), _ref_tunique(pairs), [fr.tunique(fb) for fb in fbs]
    )


@pytest.mark.parametrize(
    "htype,shape",
    [
        (htype, shape)
        for htype in ("int", "dbl", "str", "oid")
        for shape in ("all_equal", "presorted")
    ]
    # int/oid NILs are plain sentinel values for ordering; NaN/None
    # have their own last-place rule, so only dbl/str get the shape.
    + [("dbl", "nil_heavy"), ("str", "nil_heavy")],
)
def test_sort_unique_edge_shapes(htype, shape):
    """The satellite edge shapes: all-equal columns (every BUN ties),
    already-sorted inputs (the merge degenerates to concatenation), and
    NIL-heavy columns (NaN/None ordering and identity-rule dedup)."""
    rng = np.random.default_rng(hash(shape) % 1000)
    n = 90
    if shape == "all_equal":
        bat = _headed_bat(rng, htype, n, nils=False)
        value = bat.head_values()[0]
        if htype == "str":
            head = Column("str", np.full(n, value, dtype=object))
        else:
            head = Column(
                bat.head.atom_type,
                np.full(n, value, dtype=bat.head.atom_type.dtype),
            )
        bat = BAT(head, bat.tail)
    elif shape == "presorted":
        base = _headed_bat(rng, htype, n, nils=False)
        bat = kernel.sort(base)
        bat = BAT(bat.head, bat.tail)  # drop the hsorted flag: detection path
    else:
        bat = _headed_bat(rng, htype, n)
    pairs = _raw_pairs(bat)
    fbs = [_fragment(bat, s) for s in STRATEGIES]
    _check_op(kernel.sort(bat), _ref_sort(pairs), [fr.sort(fb) for fb in fbs])
    _check_op(kernel.unique(bat), _ref_unique(pairs), [fr.unique(fb) for fb in fbs])


def test_nil_dedup_identity_rule():
    """The NIL-dedup decision (recorded in the kernel module
    docstring): joins never match NIL, but unique/kunique treat all
    NILs of a column as one value -- a single NaN/None survives, on the
    monolithic and the fragmented path alike."""
    nan_heads = BAT(
        Column("dbl", np.array([np.nan, 1.0, np.nan, 1.0])),
        Column("int", np.array([7, 8, 7, 8], dtype=np.int64)),
    )
    assert kernel.unique(nan_heads).to_pairs() == [(None, 7), (1.0, 8)]
    assert kernel.kunique(nan_heads).to_pairs() == [(None, 7), (1.0, 8)]
    none_heads = BAT(
        Column("str", np.array([None, "a", None], dtype=object)),
        Column("int", np.array([1, 2, 1], dtype=np.int64)),
    )
    assert kernel.unique(none_heads).to_pairs() == [(None, 1), ("a", 2)]
    assert kernel.kunique(none_heads).to_pairs() == [(None, 1), ("a", 2)]
    for bat in (nan_heads, none_heads):
        for strategy in STRATEGIES:
            fb = _fragment(bat, strategy)
            assert fr.unique(fb).to_bat().to_pairs() == kernel.unique(bat).to_pairs()
            assert (
                fr.kunique(fb).to_bat().to_pairs() == kernel.kunique(bat).to_pairs()
            )


@pytest.mark.parametrize("seed", range(20))
def test_refine_differential(seed):
    from repro.monet.groups import refine

    rng = np.random.default_rng(1000 + seed)
    n = int(rng.choice([0, 1, 50, 160]))
    keys = BAT(VoidColumn(0, n), Column("int", rng.integers(0, 6, n)))
    if seed % 2:
        values_raw = np.round(rng.random(n) * 2, 1)
        if n:
            values_raw[rng.random(n) < 0.2] = np.nan
        values = BAT(VoidColumn(0, n), Column("dbl", values_raw))
    else:
        words = np.empty(n, dtype=object)
        for i in range(n):
            words[i] = None if rng.random() < 0.2 else str(
                rng.choice(["x", "y", "z"])
            )
        values = BAT(VoidColumn(0, n), Column("str", words))
    grouping = group(keys)
    mono = refine(grouping, values)

    # Naive reference: same group iff same (old group, value) pair,
    # ids in first-appearance order, NILs equal under the identity rule.
    ids: dict = {}
    expected = []
    for old, value in zip(grouping.tail_values().tolist(), values.tail_list()):
        key = (old, _nil_key(value))
        if key not in ids:
            ids[key] = len(ids)
        expected.append(ids[key])
    assert mono.tail_values().tolist() == expected

    for strategy in STRATEGIES:
        policy = FragmentationPolicy(
            target_size=max(1, -(-n // 4)), strategy=strategy, workers=2
        )
        fragmented = fr.refine(
            fragment_bat(grouping, policy), fragment_bat(values, policy)
        )
        coalesced = fragmented.to_bat()
        assert coalesced.to_pairs() == mono.to_pairs()
        assert_flags_sound(coalesced)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sort_after_subset_chain(strategy):
    """Sorting a *derived* fragmented subset (whose round-robin
    positions are sparse global BUN positions, not 0..n-1) must rank by
    position, not index by it -- regression for the unique -> sort
    chain."""
    rng = np.random.default_rng(9)
    bat = _headed_bat(rng, "oid", 120, nils=False)
    fb = _fragment(bat, strategy)
    chained = fr.sort(fr.unique(fb)).to_bat()
    expected = kernel.sort(kernel.unique(bat))
    assert chained.to_pairs() == expected.to_pairs()
    assert_flags_sound(chained)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sort_output_stays_fragmented(strategy):
    """Fragmented sort/unique emit fragmented results partitioned at
    the policy's target size -- the property that keeps the rest of the
    plan fragment-parallel."""
    rng = np.random.default_rng(5)
    bat = _headed_bat(rng, "oid", 200, nils=False)
    fb = fragment_bat(
        bat, FragmentationPolicy(target_size=32, strategy=strategy, workers=2)
    )
    result = fr.sort(fb)
    assert isinstance(result, FragmentedBAT)
    assert result.positions is None  # range-partitioned output
    assert max(result.fragment_sizes()) <= 32
    deduped = fr.unique(fb)
    assert isinstance(deduped, FragmentedBAT)
    assert deduped.nfragments == fb.nfragments  # dedup keeps the shape


# ----------------------------------------------------------------------
# Structural invariants of the fragmentation itself
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fragment_roundtrip_identity(seed, strategy):
    rng = np.random.default_rng(700 + seed)
    ttype = ("int", "dbl", "str", "oid")[seed % 4]
    bat = _random_bat(rng, ttype)
    fb = _fragment(bat, strategy)
    if len(bat) >= 4:
        assert fb.nfragments >= 3
    assert len(fb) == len(bat)
    assert_pairs_equal(fb.to_bat(), _raw_pairs(bat))
    assert_flags_sound(fb.to_bat())
    # Coalescing a range split of a void-headed BAT restores voidness.
    if strategy == "range":
        assert fb.to_bat().hdense == bat.hdense


# ----------------------------------------------------------------------
# Set operators: kunion / kintersect (identity NIL rule) and the
# shared-build semijoin / kdiff fast path (comparison NIL rule)
# ----------------------------------------------------------------------


def _comparison_nil(value) -> bool:
    """NILs that match nothing under the comparison rule (NaN/None; the
    int/oid sentinels are ordinary integers that equal themselves)."""
    return value is None or (isinstance(value, float) and math.isnan(value))


def _ref_kunion(pairs, right_pairs):
    members = {_nil_key(h) for h, _ in pairs}
    return list(pairs) + [
        (h, t) for h, t in right_pairs if _nil_key(h) not in members
    ]


def _ref_kintersect(pairs, right_pairs):
    members = {_nil_key(h) for h, _ in right_pairs}
    return [(h, t) for h, t in pairs if _nil_key(h) in members]


def _ref_semijoin_comparison(pairs, right_pairs):
    members = {h for h, _ in right_pairs if not _comparison_nil(h)}
    return [
        (h, t) for h, t in pairs if not _comparison_nil(h) and h in members
    ]


def _ref_kdiff_comparison(pairs, right_pairs):
    members = {h for h, _ in right_pairs if not _comparison_nil(h)}
    return [(h, t) for h, t in pairs if _comparison_nil(h) or h not in members]


@pytest.mark.parametrize("seed", range(N_CASES))
def test_set_operators_differential(seed, exec_backend):
    """kunion/kintersect (identity rule) and semijoin/kdiff (comparison
    rule) over NIL-heavy heads: monolithic vs identity/comparison
    references vs fragmented execution -- fragmented left against
    monolithic, same-strategy fragmented, and cross-strategy fragmented
    right operands.  Parametrized over the executor backends: the str
    head seeds drive the membership builds and probes through the
    process pool."""
    rng = np.random.default_rng(1500 + seed)
    htype = ("int", "dbl", "str", "oid")[seed % 4]
    n_left = int(rng.choice([0, 1, 2, 17, 64, 120]))
    n_right = int(rng.choice([0, 1, 3, 20, 65, 119]))
    left = _headed_bat(rng, htype, n_left)
    right = _headed_bat(rng, htype, n_right)
    left_pairs, right_pairs = _raw_pairs(left), _raw_pairs(right)
    left_fbs = [_fragment(left, s) for s in STRATEGIES]
    right_fbs = [_fragment(right, s) for s in STRATEGIES]

    def variants(op):
        out = [op(fb, right) for fb in left_fbs]
        out += [op(lf, rf) for lf, rf in zip(left_fbs, right_fbs)]
        out.append(op(left_fbs[0], right_fbs[1]))  # range left, rr right
        out.append(op(left_fbs[1], right_fbs[0]))  # rr left, range right
        return out

    _check_op(
        kernel.kunion(left, right),
        _ref_kunion(left_pairs, right_pairs),
        variants(fr.kunion),
    )
    _check_op(
        kernel.kintersect(left, right),
        _ref_kintersect(left_pairs, right_pairs),
        variants(fr.kintersect),
    )
    _check_op(
        kernel.semijoin(left, right),
        _ref_semijoin_comparison(left_pairs, right_pairs),
        variants(fr.semijoin),
    )
    _check_op(
        kernel.kdiff(left, right),
        _ref_kdiff_comparison(left_pairs, right_pairs),
        variants(fr.kdiff),
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_setops_nil_identity_rule_fragmented(strategy):
    """The PR-4 set-op NIL decision, fragment-parallel: one NaN head on
    each side unions to a single NaN BUN and intersects to the left
    NaN BUN, BUN-identical to the monolithic kernel."""
    left = BAT(
        Column("dbl", np.array([np.nan, 1.0, 2.0])),
        Column("int", np.array([1, 2, 3], dtype=np.int64)),
    )
    right = BAT(
        Column("dbl", np.array([np.nan, 2.0, 9.0])),
        Column("int", np.array([4, 5, 6], dtype=np.int64)),
    )
    lf, rf = _fragment(left, strategy), _fragment(right, strategy)
    union = fr.kunion(lf, rf).to_bat()
    assert_pairs_equal(union, _raw_pairs(kernel.kunion(left, right)))
    nan_heads = [h for h, _ in _raw_pairs(union) if isinstance(h, float) and math.isnan(h)]
    assert len(nan_heads) == 1  # the identity rule: all NILs are one value
    intersection = fr.kintersect(lf, rf).to_bat()
    assert_pairs_equal(intersection, _raw_pairs(kernel.kintersect(left, right)))
    assert _raw_pairs(intersection)[1] == (2.0, 3)


def test_kunion_derived_roundrobin_subset_positions():
    """kunion over *derived* round-robin subsets (sparse positions):
    survivor positions must rank, not reuse raw right positions."""
    rng = np.random.default_rng(7)
    left = _headed_bat(rng, "oid", 90)
    right = _headed_bat(rng, "oid", 84)
    lf = fr.select(_fragment(left, "roundrobin"), -3, 3)
    rf = fr.select(_fragment(right, "roundrobin"), -3, 3)
    mono = kernel.kunion(
        kernel.select(left, -3, 3), kernel.select(right, -3, 3)
    )
    out = fr.kunion(lf, rf)
    assert_pairs_equal(out.to_bat(), _raw_pairs(mono))
    # ... and the result keeps working fragment-parallel downstream.
    assert_pairs_equal(fr.sort(out).to_bat(), _raw_pairs(kernel.sort(mono)))


# ----------------------------------------------------------------------
# Sample-sort merge edge cases
# ----------------------------------------------------------------------


def _explicit_range_fragments(bat: BAT, sizes) -> FragmentedBAT:
    """A range FragmentedBAT with the exact fragment *sizes* (empty
    fragments allowed), pinned to the parallel code path."""
    assert sum(sizes) == len(bat)
    fragments = []
    at = 0
    for size in sizes:
        fragments.append(bat.slice(at, at + size))
        at += size
    policy = FragmentationPolicy(
        target_size=max(1, max(sizes, default=1)), workers=2
    )
    return FragmentedBAT(fragments, policy=policy)


_ALL_EQUAL_HEAD = {
    "int": lambda n: Column("int", np.full(n, 5, dtype=np.int64)),
    "oid": lambda n: Column("oid", np.full(n, 3, dtype=np.int64)),
    "dbl": lambda n: Column("dbl", np.full(n, 0.5)),
    "str": lambda n: Column("str", np.array(["cat"] * n, dtype=object)),
}


@pytest.mark.parametrize("htype", ["int", "oid", "dbl", "str"])
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sample_sort_all_equal_keys(htype, strategy):
    """Degenerate pivots: every sampled key is identical, so the pivot
    set dedupes to (at most) one value and a single partition does all
    the work -- the result must still be the stable identity ordering
    by global BUN position."""
    n = 97
    rng = np.random.default_rng(31)
    bat = BAT(
        _ALL_EQUAL_HEAD[htype](n),
        Column("int", rng.permutation(n).astype(np.int64)),
    )
    fb = _fragment(bat, strategy)
    _check_op(kernel.sort(bat), _ref_sort(_raw_pairs(bat)), [fr.sort(fb)])


@pytest.mark.parametrize("htype", ["int", "dbl", "str"])
def test_sample_sort_empty_and_single_fragments(htype):
    """Empty fragments mixed between full ones contribute empty runs
    and empty partition slices; a single fragment degenerates to the
    no-merge path.  Both must stay BUN-identical to the monolithic
    sort."""
    rng = np.random.default_rng(57)
    bat = _headed_bat(rng, htype, 60)
    pairs = _raw_pairs(bat)
    holey = _explicit_range_fragments(bat, [0, 20, 0, 0, 25, 15, 0])
    single = FragmentedBAT(
        [bat], policy=FragmentationPolicy(target_size=len(bat), workers=2)
    )
    _check_op(kernel.sort(bat), _ref_sort(pairs), [fr.sort(holey), fr.sort(single)])
    _check_op(
        kernel.unique(bat),
        _ref_unique(pairs),
        [fr.unique(holey), fr.unique(single)],
    )


@pytest.mark.parametrize("fanout", [1, 3, 64])
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sample_sort_fanout_extremes(fanout, strategy, monkeypatch):
    """MERGE_FANOUT=1 falls back to the serial tournament merge; a
    fan-out far beyond the data yields many tiny (some empty)
    partitions.  Both ends must be BUN-identical to the monolithic
    sort, for numeric and object heads."""
    monkeypatch.setattr(fr, "MERGE_FANOUT", fanout)
    rng = np.random.default_rng(101 + fanout)
    for htype in ("dbl", "str"):
        bat = _headed_bat(rng, htype, 120)
        fb = _fragment(bat, strategy)
        _check_op(kernel.sort(bat), _ref_sort(_raw_pairs(bat)), [fr.sort(fb)])


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sample_sort_output_feeds_fragment_parallel_ops(strategy):
    """The sample-sort result is range-partitioned: a following
    fragment-parallel operator (select) over it must agree with the
    monolithic pipeline."""
    rng = np.random.default_rng(77)
    bat = _headed_bat(rng, "int", 150)
    fb = _fragment(bat, strategy)
    sorted_fb = fr.sort(fb)
    assert sorted_fb.positions is None  # range-partitioned output
    got = fr.select(sorted_fb, -2, 4).to_bat()
    expected = kernel.select(kernel.sort(bat), -2, 4)
    assert_pairs_equal(got, _raw_pairs(expected))


# ----------------------------------------------------------------------
# Grace-join differential: fragmented rights, spill, fan-out extremes
# ----------------------------------------------------------------------


def _join_case(rng, flavor: str, n: int, m: int):
    """Random (left, right) join operands of one dtype flavor with
    NIL-heavy bases on both sides."""
    if flavor == "str":
        words = ["ape", "bat", "cat", "dog", "eel"]
        probe_vals = np.empty(n, dtype=object)
        for i in range(n):
            probe_vals[i] = None if rng.random() < 0.2 else str(rng.choice(words))
        left = BAT(VoidColumn(0, n), Column("str", probe_vals))
        build_vals = np.empty(m, dtype=object)
        for i in range(m):
            build_vals[i] = None if rng.random() < 0.2 else str(rng.choice(words))
        right = BAT(Column("str", build_vals), Column("int", rng.integers(0, 9, m)))
    elif flavor == "dbl":
        probe_vals = np.round(rng.random(n) * 8, 0)
        if n:
            probe_vals[rng.random(n) < 0.25] = np.nan
        left = BAT(VoidColumn(0, n), Column("dbl", probe_vals))
        build_vals = np.round(rng.random(m) * 8, 0)
        if m:
            build_vals[rng.random(m) < 0.25] = np.nan
        right = BAT(Column("dbl", build_vals), Column("int", rng.integers(-4, 4, m)))
    else:
        left = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, 15, n)))
        right = BAT(
            Column("oid", rng.integers(0, 15, m).astype(np.int64)),
            Column("int", rng.integers(-4, 4, m)),
        )
    return left, right


@pytest.mark.parametrize("seed", range(N_CASES))
def test_join_fragmented_right_differential(seed, exec_backend):
    """The grace hash join with fragmented *right* operands: range x
    round-robin splits of both sides, under both executor backends
    (the fixture), over NIL-heavy bases -- BUN-identical to the
    monolithic kernel for join and outerjoin alike, with no coalesce
    of either operand."""
    rng = np.random.default_rng(1300 + seed)
    n = int(rng.choice([0, 1, 30, 90]))
    m = int(rng.integers(0, 25))
    left, right = _join_case(rng, ("oid", "dbl", "str")[seed % 3], n, m)
    join_variants = [
        fr.join(_fragment(left, ls), _fragment(right, rs))
        for ls in STRATEGIES
        for rs in STRATEGIES
    ]
    _check_op(
        kernel.join(left, right),
        _ref_join(_raw_pairs(left), _raw_pairs(right)),
        join_variants,
    )
    # outerjoin rides the same shared partitioned build (the reference
    # is the monolithic kernel, itself pinned by test_nil_join_*).
    mono_outer = kernel.outerjoin(left, right)
    outer_variants = [
        fr.outerjoin(_fragment(left, ls), _fragment(right, rs))
        for ls in STRATEGIES
        for rs in STRATEGIES
    ]
    _check_op(mono_outer, _raw_pairs(mono_outer), outer_variants)


@pytest.mark.parametrize("seed", range(0, N_CASES, 5))
def test_join_spill_forced_differential(seed, monkeypatch):
    """JOIN_SPILL_BUNS=0 forces every partitioned build through the
    BBP npz spill units; results stay BUN-identical and no spill unit
    outlives its join."""
    from repro.monet import bbp

    monkeypatch.setattr(fr, "JOIN_SPILL_BUNS", 0)
    monkeypatch.setattr(fr, "JOIN_PARTITION_MIN_BUNS", 1)
    rng = np.random.default_rng(1400 + seed)
    n = int(rng.choice([1, 30, 90]))
    m = int(rng.integers(1, 25))
    left, right = _join_case(rng, ("oid", "dbl", "str")[seed % 3], n, m)
    variants = [
        fr.join(_fragment(left, ls), _fragment(right, rs))
        for ls in STRATEGIES
        for rs in STRATEGIES
    ] + [
        fr.outerjoin(_fragment(left, ls), _fragment(right, "range"))
        for ls in STRATEGIES
    ]
    _check_op(
        kernel.join(left, right),
        _ref_join(_raw_pairs(left), _raw_pairs(right)),
        variants[:4],
    )
    mono_outer = kernel.outerjoin(left, right)
    _check_op(mono_outer, _raw_pairs(mono_outer), variants[4:])
    if bbp._SPILL_ROOT is not None:
        assert list(bbp._SPILL_ROOT.iterdir()) == []


@pytest.mark.parametrize("fanout", [1, 64])
@pytest.mark.parametrize("flavor", ["oid", "str"])
def test_join_fanout_extremes(fanout, flavor, monkeypatch):
    """JOIN_FANOUT extremes, with the partition floor disabled so the
    cap actually binds: one partition (a plain shared-index join) and
    more partitions than distinct keys must both reproduce the
    monolithic join."""
    monkeypatch.setattr(fr, "JOIN_FANOUT", fanout)
    monkeypatch.setattr(fr, "JOIN_PARTITION_MIN_BUNS", 1)
    rng = np.random.default_rng(99 + fanout)
    left, right = _join_case(rng, flavor, 120, 30)
    expected = _ref_join(_raw_pairs(left), _raw_pairs(right))
    variants = [
        fr.join(_fragment(left, ls), _fragment(right, rs))
        for ls in STRATEGIES
        for rs in STRATEGIES
    ]
    _check_op(kernel.join(left, right), expected, variants)


def test_fragmented_bat_requires_fragments_and_tolerates_empty_ones():
    """The >=1-fragment constructor invariant that _probe_dtype leans
    on, plus the degenerate case it guards: a fragmentation whose only
    fragment has zero BUNs must still probe (join/topn/group) safely."""
    from repro.monet.errors import KernelError as KE

    with pytest.raises(KE):
        FragmentedBAT([])
    empty = BAT(VoidColumn(0, 0), Column("int", np.empty(0, dtype=np.int64)))
    fb = fragment_bat(empty, FragmentationPolicy(target_size=4, workers=2))
    assert fb.nfragments == 1 and len(fb.fragments[0]) == 0
    right = BAT(
        Column("int", np.array([1, 2], dtype=np.int64)),
        Column("int", np.array([10, 20], dtype=np.int64)),
    )
    assert fr.join(fb, right).to_bat().to_pairs() == []
    assert fr.topn(fb, 3).to_pairs() == []
    assert fr.group(fb).to_bat().to_pairs() == []
    sempty = BAT(VoidColumn(0, 0), Column("str", np.empty(0, dtype=object)))
    sfb = fragment_bat(sempty, FragmentationPolicy(target_size=4, workers=2))
    sright = BAT(
        Column("str", np.array(["a"], dtype=object)),
        Column("int", np.array([1], dtype=np.int64)),
    )
    assert fr.join(sfb, sright).to_bat().to_pairs() == []
    assert fr.topn(sfb, 2).to_pairs() == []


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fetchjoin_fragmented_dense_right(strategy, monkeypatch):
    """A range-partitioned fragmented dense right operand routes by
    seqbase windows (no coalesce); a round-robin one still coalesces
    and keeps the monolithic error behaviour."""
    rng = np.random.default_rng(55)
    n = 160
    left = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, 90, n)))
    dense = BAT(VoidColumn(10, 60), Column("dbl", np.round(rng.random(60), 3)))
    expected = kernel.fetchjoin(left, dense)
    fleft = _fragment(left, strategy)
    fdense = fragment_bat(
        dense, FragmentationPolicy(target_size=16, workers=2)
    )
    # FragmentedBAT uses __slots__, so the no-coalesce tripwire patches
    # the class; undo before coalescing the *results* for comparison.
    monkeypatch.setattr(
        fr.FragmentedBAT,
        "to_bat",
        lambda self: (_ for _ in ()).throw(AssertionError("coalesced")),
    )
    results = (fr.fetchjoin(fleft, fdense), fr.join(fleft, fdense))
    monkeypatch.undo()
    for result in results:
        assert_pairs_equal(result.to_bat(), _raw_pairs(expected))
    # Round-robin dense rights have no contiguous windows: they fall
    # back to the coalescing path and must still agree.
    rr = fragment_bat(
        dense,
        FragmentationPolicy(target_size=16, workers=2, strategy="roundrobin"),
    )
    assert_pairs_equal(fr.fetchjoin(fleft, rr).to_bat(), _raw_pairs(expected))
