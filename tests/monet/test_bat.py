"""BAT structure: columns, views, properties, point access."""

import numpy as np
import pytest

from repro.monet.bat import BAT, VoidColumn, bat_from_pairs, column_from_values, dense_bat, empty_bat
from repro.monet.errors import BATError


class TestVoidColumn:
    def test_materialize(self):
        assert VoidColumn(5, 3).materialize().tolist() == [5, 6, 7]

    def test_len(self):
        assert len(VoidColumn(0, 10)) == 10

    def test_python_value(self):
        assert VoidColumn(5, 3).python_value(2) == 7

    def test_python_value_out_of_range(self):
        with pytest.raises(BATError):
            VoidColumn(0, 3).python_value(3)

    def test_take_adds_seqbase(self):
        taken = VoidColumn(10, 5).take(np.array([0, 2, 4]))
        assert taken.materialize().tolist() == [10, 12, 14]

    def test_negative_params_rejected(self):
        with pytest.raises(BATError):
            VoidColumn(-1, 3)


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(BATError, match="length mismatch"):
            BAT(VoidColumn(0, 3), column_from_values("int", [1, 2]))

    def test_void_head_forces_properties(self):
        bat = dense_bat("int", [3, 1, 2])
        assert bat.hdense and bat.hsorted and bat.hkey

    def test_bat_from_pairs_detects_dense_head(self):
        bat = bat_from_pairs("oid", "int", [(0, 5), (1, 6), (2, 7)])
        assert bat.hdense

    def test_bat_from_pairs_nondense_head(self):
        bat = bat_from_pairs("oid", "int", [(0, 5), (2, 6)])
        assert not bat.hdense
        assert bat.hsorted and bat.hkey

    def test_bat_from_pairs_unsorted_head(self):
        bat = bat_from_pairs("int", "int", [(2, 1), (0, 2)])
        assert not bat.hsorted

    def test_empty_bat(self):
        bat = empty_bat("oid", "str")
        assert len(bat) == 0
        assert bat.htype == "oid" and bat.ttype == "str"

    def test_roundtrip_pairs(self):
        pairs = [(0, "a"), (1, None), (2, "c")]
        bat = bat_from_pairs("oid", "str", pairs)
        assert bat.to_pairs() == pairs


class TestViews:
    def test_reverse_swaps_columns(self):
        bat = bat_from_pairs("oid", "str", [(0, "a"), (1, "b")])
        assert bat.reverse().to_pairs() == [("a", 0), ("b", 1)]

    def test_reverse_swaps_properties(self):
        bat = dense_bat("int", [3, 1])
        rev = bat.reverse()
        assert rev.tsorted and rev.tkey and not rev.hsorted

    def test_double_reverse_identity(self):
        bat = bat_from_pairs("oid", "int", [(0, 5), (1, 3)])
        assert bat.reverse().reverse().to_pairs() == bat.to_pairs()

    def test_mirror(self):
        bat = bat_from_pairs("oid", "str", [(4, "x"), (7, "y")])
        assert bat.mirror().to_pairs() == [(4, 4), (7, 7)]

    def test_slice(self):
        bat = dense_bat("int", [10, 20, 30, 40])
        assert bat.slice(1, 3).tail_list() == [20, 30]

    def test_slice_clamps(self):
        bat = dense_bat("int", [10, 20])
        assert bat.slice(-5, 99).tail_list() == [10, 20]
        assert bat.slice(3, 1).tail_list() == []

    def test_slice_keeps_void_head(self):
        bat = dense_bat("int", [10, 20, 30, 40])
        sliced = bat.slice(1, 3)
        assert sliced.hdense
        assert sliced.head_list() == [1, 2]


class TestTakePositions:
    def test_monotone_gather_keeps_sortedness(self):
        bat = dense_bat("int", [1, 2, 3, 4])
        taken = bat.take_positions(np.array([0, 2]))
        assert taken.hsorted

    def test_non_monotone_gather_drops_sortedness(self):
        bat = dense_bat("int", [1, 2, 3, 4])
        taken = bat.take_positions(np.array([2, 0]))
        assert not taken.tsorted
        assert taken.tail_list() == [3, 1]

    def test_contiguous_void_gather_stays_void(self):
        bat = dense_bat("int", [1, 2, 3, 4])
        taken = bat.take_positions(np.array([1, 2, 3]))
        assert taken.hdense
        assert taken.head.seqbase == 1


class TestPointAccess:
    def test_find_on_void_head(self):
        bat = dense_bat("str", ["a", "b", "c"])
        assert bat.find(1) == "b"

    def test_find_missing_on_void_head(self):
        bat = dense_bat("str", ["a"])
        with pytest.raises(BATError):
            bat.find(5)

    def test_find_on_value_head(self):
        bat = bat_from_pairs("str", "int", [("x", 1), ("y", 2)])
        assert bat.find("y") == 2

    def test_find_returns_first_match(self):
        bat = bat_from_pairs("str", "int", [("x", 1), ("x", 2)])
        assert bat.find("x") == 1

    def test_exists(self):
        bat = bat_from_pairs("str", "int", [("x", 1)])
        assert bat.exists("x")
        assert not bat.exists("z")

    def test_to_dict_requires_key_head(self):
        bat = bat_from_pairs("str", "int", [("x", 1), ("x", 2)])
        with pytest.raises(BATError):
            bat.to_dict()

    def test_to_dict(self):
        bat = bat_from_pairs("oid", "str", [(0, "a"), (1, "b")])
        assert bat.to_dict() == {0: "a", 1: "b"}


class TestNilRoundtrip:
    def test_int_nil(self):
        bat = dense_bat("int", [1, None, 3])
        assert bat.tail_list() == [1, None, 3]

    def test_dbl_nil(self):
        bat = dense_bat("dbl", [1.5, None])
        assert bat.tail_list() == [1.5, None]

    def test_str_nil(self):
        bat = dense_bat("str", [None, "x"])
        assert bat.tail_list() == [None, "x"]
