"""Kernel operators: selections, the join family, reconstruction, sets."""

import math

import numpy as np
import pytest

from repro.monet import kernel
from repro.monet.bat import BAT, Column, bat_from_pairs, dense_bat, empty_bat
from repro.monet.errors import KernelError


class TestSelect:
    def test_equality(self):
        bat = dense_bat("int", [5, 3, 5, 9])
        assert kernel.select(bat, 5).to_pairs() == [(0, 5), (2, 5)]

    def test_equality_string(self):
        bat = dense_bat("str", ["a", "b", "a"])
        assert kernel.select(bat, "a").head_list() == [0, 2]

    def test_equality_no_match(self):
        bat = dense_bat("int", [1, 2])
        assert len(kernel.select(bat, 99)) == 0

    def test_range_inclusive(self):
        bat = dense_bat("int", [1, 5, 10, 15])
        assert kernel.select(bat, 5, 10).tail_list() == [5, 10]

    def test_range_exclusive_bounds(self):
        bat = dense_bat("int", [1, 5, 10, 15])
        result = kernel.select(bat, 5, 10, include_low=False, include_high=False)
        assert result.tail_list() == []

    def test_range_open_low(self):
        bat = dense_bat("int", [1, 5, 10])
        assert kernel.select(bat, None, 5).tail_list() == [1, 5]

    def test_range_open_high(self):
        bat = dense_bat("int", [1, 5, 10])
        assert kernel.select(bat, 5, None).tail_list() == [5, 10]

    def test_range_on_strings(self):
        bat = dense_bat("str", ["apple", "cherry", "banana"])
        assert kernel.select(bat, "apple", "banana").tail_list() == [
            "apple", "banana",
        ]

    def test_empty_input(self):
        bat = empty_bat("oid", "int")
        assert len(kernel.select(bat, 1)) == 0

    def test_uselect_produces_void_tail(self):
        bat = dense_bat("int", [5, 3, 5])
        result = kernel.uselect(bat, 5)
        assert result.head_list() == [0, 2]
        assert result.tail.is_void

    def test_likeselect(self):
        bat = dense_bat("str", ["sunset beach", "green forest", "red sunset"])
        assert kernel.likeselect(bat, "sunset").head_list() == [0, 2]

    def test_likeselect_requires_str(self):
        with pytest.raises(KernelError):
            kernel.likeselect(dense_bat("int", [1]), "x")


class TestJoin:
    def test_basic_join(self):
        left = bat_from_pairs("oid", "str", [(0, "a"), (1, "b"), (2, "a")])
        right = bat_from_pairs("str", "int", [("a", 10), ("b", 20)])
        assert kernel.join(left, right).to_pairs() == [
            (0, 10), (1, 20), (2, 10),
        ]

    def test_join_multiplicity(self):
        left = bat_from_pairs("oid", "int", [(0, 1)])
        right = bat_from_pairs("int", "str", [(1, "x"), (1, "y")])
        assert sorted(kernel.join(left, right).tail_list()) == ["x", "y"]

    def test_join_preserves_left_order(self):
        left = bat_from_pairs("oid", "int", [(0, 2), (1, 1), (2, 2)])
        right = bat_from_pairs("int", "str", [(1, "one"), (2, "two")])
        assert kernel.join(left, right).to_pairs() == [
            (0, "two"), (1, "one"), (2, "two"),
        ]

    def test_join_dense_right_is_fetchjoin(self):
        left = bat_from_pairs("oid", "oid", [(0, 2), (1, 0)])
        right = dense_bat("str", ["a", "b", "c"])
        assert kernel.join(left, right).to_pairs() == [(0, "c"), (1, "a")]

    def test_fetchjoin_drops_out_of_range(self):
        left = bat_from_pairs("oid", "oid", [(0, 5), (1, 1)])
        right = dense_bat("str", ["a", "b"])
        assert kernel.fetchjoin(left, right).to_pairs() == [(1, "b")]

    def test_fetchjoin_requires_dense_right(self):
        left = bat_from_pairs("oid", "int", [(0, 1)])
        right = bat_from_pairs("int", "str", [(1, "x")])
        with pytest.raises(KernelError):
            kernel.fetchjoin(left, right)

    def test_join_type_mismatch(self):
        left = bat_from_pairs("oid", "str", [(0, "a")])
        right = bat_from_pairs("int", "str", [(1, "x")])
        with pytest.raises(KernelError, match="type mismatch"):
            kernel.join(left, right)

    def test_join_empty_sides(self):
        left = empty_bat("oid", "int")
        right = bat_from_pairs("int", "str", [(1, "x")])
        assert len(kernel.join(left, right)) == 0
        assert len(kernel.join(right.reverse(), left.reverse())) == 0

    def test_outerjoin_pads_with_nil(self):
        left = bat_from_pairs("oid", "int", [(0, 1), (1, 99)])
        right = bat_from_pairs("int", "str", [(1, "one")])
        assert kernel.outerjoin(left, right).to_pairs() == [
            (0, "one"), (1, None),
        ]

    def test_outerjoin_dense_right(self):
        left = bat_from_pairs("oid", "oid", [(0, 0), (1, 7)])
        right = dense_bat("dbl", [1.5])
        assert kernel.outerjoin(left, right).to_pairs() == [(0, 1.5), (1, None)]


class TestSemijoinFamily:
    def test_semijoin(self):
        left = bat_from_pairs("oid", "str", [(0, "a"), (1, "b"), (5, "c")])
        right = bat_from_pairs("oid", "int", [(0, 9), (5, 9)])
        assert kernel.semijoin(left, right).to_pairs() == [(0, "a"), (5, "c")]

    def test_semijoin_dense_right(self):
        left = bat_from_pairs("oid", "str", [(0, "a"), (9, "b")])
        right = dense_bat("int", [1, 2, 3])
        assert kernel.semijoin(left, right).head_list() == [0]

    def test_kdiff(self):
        left = bat_from_pairs("oid", "str", [(0, "a"), (1, "b")])
        right = bat_from_pairs("oid", "int", [(0, 9)])
        assert kernel.kdiff(left, right).to_pairs() == [(1, "b")]

    def test_kdiff_disjoint(self):
        left = bat_from_pairs("oid", "str", [(0, "a")])
        right = bat_from_pairs("oid", "int", [(7, 9)])
        assert kernel.kdiff(left, right).to_pairs() == [(0, "a")]

    def test_kintersect_alias(self):
        left = bat_from_pairs("oid", "str", [(0, "a"), (1, "b")])
        right = bat_from_pairs("oid", "int", [(1, 9)])
        assert kernel.kintersect(left, right).to_pairs() == [(1, "b")]

    def test_kunion_dedups_on_head(self):
        left = bat_from_pairs("oid", "str", [(0, "a")])
        right = bat_from_pairs("oid", "str", [(0, "other"), (1, "b")])
        assert kernel.kunion(left, right).to_pairs() == [(0, "a"), (1, "b")]

    def test_kunion_right_empty(self):
        left = bat_from_pairs("oid", "str", [(0, "a")])
        assert kernel.kunion(left, empty_bat("oid", "str")).to_pairs() == [
            (0, "a"),
        ]


class TestReconstruction:
    def test_mark(self):
        bat = bat_from_pairs("str", "int", [("a", 1), ("b", 2)])
        assert kernel.mark(bat, 100).to_pairs() == [("a", 100), ("b", 101)]

    def test_number(self):
        bat = bat_from_pairs("str", "int", [("a", 1), ("b", 2)])
        assert kernel.number(bat, 10).to_pairs() == [(10, 1), (11, 2)]

    def test_sort(self):
        bat = bat_from_pairs("int", "str", [(3, "c"), (1, "a"), (2, "b")])
        assert kernel.sort(bat).to_pairs() == [(1, "a"), (2, "b"), (3, "c")]

    def test_sort_stable(self):
        bat = bat_from_pairs("int", "str", [(1, "first"), (1, "second")])
        assert kernel.sort(bat).tail_list() == ["first", "second"]

    def test_sort_string_head(self):
        bat = bat_from_pairs("str", "int", [("b", 2), ("a", 1)])
        assert kernel.sort(bat).head_list() == ["a", "b"]

    def test_tsort(self):
        bat = bat_from_pairs("oid", "int", [(0, 3), (1, 1), (2, 2)])
        assert kernel.tsort(bat).tail_list() == [1, 2, 3]

    def test_unique(self):
        bat = bat_from_pairs("int", "str", [(1, "a"), (1, "a"), (2, "b")])
        assert kernel.unique(bat).to_pairs() == [(1, "a"), (2, "b")]

    def test_unique_keeps_distinct_tails(self):
        bat = bat_from_pairs("int", "str", [(1, "a"), (1, "b")])
        assert len(kernel.unique(bat)) == 2

    def test_kunique(self):
        bat = bat_from_pairs("int", "str", [(1, "a"), (1, "b"), (2, "c")])
        assert kernel.kunique(bat).to_pairs() == [(1, "a"), (2, "c")]

    def test_kunique_string_heads(self):
        bat = bat_from_pairs("str", "int", [("x", 1), ("x", 2), ("y", 3)])
        assert kernel.kunique(bat).to_pairs() == [("x", 1), ("y", 3)]

    def test_tunique(self):
        bat = bat_from_pairs("oid", "str", [(0, "a"), (1, "a"), (2, "b")])
        assert kernel.tunique(bat).to_pairs() == [(0, "a"), (2, "b")]

    def test_const_bat(self):
        base = dense_bat("int", [1, 2, 3])
        result = kernel.const_bat(base, "dbl", 0.4)
        assert result.tail_list() == [0.4, 0.4, 0.4]

    def test_topn_descending(self):
        bat = dense_bat("dbl", [0.5, 0.9, 0.1, 0.7])
        assert kernel.topn(bat, 2).tail_list() == [0.9, 0.7]

    def test_topn_ascending(self):
        bat = dense_bat("int", [5, 1, 3])
        assert kernel.topn(bat, 2, descending=False).tail_list() == [1, 3]

    def test_topn_larger_than_input(self):
        bat = dense_bat("int", [5, 1])
        assert len(kernel.topn(bat, 10)) == 2

    def test_topn_negative_rejected(self):
        with pytest.raises(KernelError):
            kernel.topn(dense_bat("int", [1]), -1)

    def test_slice_bat(self):
        bat = dense_bat("int", [10, 20, 30])
        assert kernel.slice_bat(bat, 0, 2).tail_list() == [10, 20]

    def test_exist(self):
        bat = bat_from_pairs("str", "int", [("k", 1)])
        assert kernel.exist(bat, "k")
        assert not kernel.exist(bat, "missing")


class TestNilDedup:
    """The identity rule (module docstring): unique/kunique/tunique
    treat all NILs of a column as one value, while join comparisons
    never match NIL.  Regression for NaN BUNs surviving dedup because
    NaN != NaN in the old set-of-pairs key."""

    def test_unique_collapses_nan_buns(self):
        bat = BAT(
            Column("dbl", np.array([np.nan, 1.0, np.nan, 1.0])),
            Column("int", np.array([7, 8, 7, 8], dtype=np.int64)),
        )
        assert kernel.unique(bat).to_pairs() == [(None, 7), (1.0, 8)]

    def test_unique_distinguishes_nan_pairs_by_tail(self):
        bat = BAT(
            Column("dbl", np.array([np.nan, np.nan])),
            Column("int", np.array([1, 2], dtype=np.int64)),
        )
        assert kernel.unique(bat).to_pairs() == [(None, 1), (None, 2)]

    def test_kunique_collapses_nan_heads(self):
        bat = BAT(
            Column("dbl", np.array([np.nan, 2.0, np.nan])),
            Column("int", np.array([1, 2, 3], dtype=np.int64)),
        )
        assert kernel.kunique(bat).to_pairs() == [(None, 1), (2.0, 2)]

    def test_tunique_collapses_nan_tails(self):
        bat = BAT(
            Column("int", np.array([1, 2, 3], dtype=np.int64)),
            Column("dbl", np.array([np.nan, np.nan, 5.0])),
        )
        assert kernel.tunique(bat).to_pairs() == [(1, None), (3, 5.0)]

    def test_unique_negative_zero_equals_zero(self):
        bat = BAT(
            Column("dbl", np.array([-0.0, 0.0])),
            Column("int", np.array([1, 1], dtype=np.int64)),
        )
        assert kernel.unique(bat).to_pairs() == [(0.0, 1)]

    def test_unique_vectorized_matches_first_seen_scan(self):
        rng = np.random.default_rng(3)
        heads = rng.integers(0, 6, 200).astype(np.int64)
        tails = np.round(rng.random(200) * 2, 1)
        tails[rng.random(200) < 0.2] = np.nan
        bat = BAT(Column("int", heads), Column("dbl", tails))
        seen = set()
        expected = []
        for h, t in bat.items():
            key = (kernel.nil_dedup_key(h), kernel.nil_dedup_key(t))
            if key not in seen:
                seen.add(key)
                expected.append((h, t))
        got = kernel.unique(bat).to_pairs()
        assert len(got) == len(expected)
        for (gh, gt), (eh, et) in zip(got, expected):
            assert gh == eh
            assert gt == et or (gt is None and et is None) or (
                isinstance(gt, float) and isinstance(et, float)
                and math.isnan(gt) and math.isnan(et)
            )

    def test_dedup_keys_orders_like_numpy(self):
        values = np.array([-np.inf, -2.5, -0.0, 0.0, 1.5, np.inf, np.nan])
        keys = kernel.dedup_keys(Column("dbl", values))
        assert list(np.argsort(keys, kind="stable")) == list(
            np.argsort(values, kind="stable")
        )


class TestSetOpNilSemantics:
    """The set operators follow the identity rule (module docstring):
    all NILs of a head column are one set element, so kunion never
    duplicates a NIL head and kintersect keeps a NIL head iff both
    sides have one.  semijoin/kdiff keep the comparison rule (NIL
    matches nothing).  Regression: kunion/kintersect previously
    inherited the comparison rule from the semijoin machinery, so a
    NaN-headed BUN was always "unseen" and unions accumulated
    duplicate NaN heads."""

    def test_kunion_does_not_duplicate_nan_heads(self):
        left = BAT(
            Column("dbl", np.array([np.nan, 1.0])),
            Column("int", np.array([10, 11], dtype=np.int64)),
        )
        right = BAT(
            Column("dbl", np.array([np.nan, 2.0])),
            Column("int", np.array([20, 21], dtype=np.int64)),
        )
        assert kernel.kunion(left, right).to_pairs() == [
            (None, 10), (1.0, 11), (2.0, 21),
        ]

    def test_kunion_appends_nan_head_when_left_has_none(self):
        left = bat_from_pairs("dbl", "int", [(1.0, 1)])
        right = BAT(
            Column("dbl", np.array([np.nan])),
            Column("int", np.array([9], dtype=np.int64)),
        )
        assert kernel.kunion(left, right).to_pairs() == [(1.0, 1), (None, 9)]

    def test_kunion_does_not_duplicate_none_heads(self):
        left = bat_from_pairs("str", "int", [(None, 1), ("a", 2)])
        right = bat_from_pairs("str", "int", [(None, 3), ("b", 4)])
        assert kernel.kunion(left, right).to_pairs() == [
            (None, 1), ("a", 2), ("b", 4),
        ]

    def test_kintersect_nan_head_matches_nan_head(self):
        left = BAT(
            Column("dbl", np.array([np.nan, 1.0, 2.0])),
            Column("int", np.array([1, 2, 3], dtype=np.int64)),
        )
        right = BAT(
            Column("dbl", np.array([np.nan, 2.0])),
            Column("int", np.array([0, 0], dtype=np.int64)),
        )
        assert kernel.kintersect(left, right).to_pairs() == [(None, 1), (2.0, 3)]

    def test_kintersect_nan_head_dropped_without_nil_on_right(self):
        left = BAT(
            Column("dbl", np.array([np.nan, 1.0])),
            Column("int", np.array([1, 2], dtype=np.int64)),
        )
        right = bat_from_pairs("dbl", "int", [(1.0, 0)])
        assert kernel.kintersect(left, right).to_pairs() == [(1.0, 2)]

    def test_kintersect_none_head_matches_none_head(self):
        left = bat_from_pairs("str", "int", [(None, 1), ("a", 2)])
        right = bat_from_pairs("str", "int", [(None, 0), ("b", 0)])
        assert kernel.kintersect(left, right).to_pairs() == [(None, 1)]

    def test_kintersect_negative_zero_head_matches_zero(self):
        left = BAT(
            Column("dbl", np.array([-0.0, 3.0])),
            Column("int", np.array([1, 2], dtype=np.int64)),
        )
        right = bat_from_pairs("dbl", "int", [(0.0, 0)])
        assert kernel.kintersect(left, right).to_pairs() == [(-0.0, 1)]

    def test_semijoin_and_kdiff_keep_comparison_rule(self):
        left = BAT(
            Column("dbl", np.array([np.nan, 1.0])),
            Column("int", np.array([1, 2], dtype=np.int64)),
        )
        right = BAT(
            Column("dbl", np.array([np.nan, 1.0])),
            Column("int", np.array([0, 0], dtype=np.int64)),
        )
        # NIL matches nothing: the NaN head is not semijoin-kept ...
        assert kernel.semijoin(left, right).to_pairs() == [(1.0, 2)]
        # ... and therefore always survives kdiff.
        assert kernel.kdiff(left, right).to_pairs() == [(None, 1)]

    def test_str_none_semijoin_vs_kintersect(self):
        left = bat_from_pairs("str", "int", [(None, 1), ("a", 2)])
        right = bat_from_pairs("str", "int", [(None, 0), ("a", 0)])
        assert kernel.semijoin(left, right).to_pairs() == [("a", 2)]
        assert kernel.kdiff(left, right).to_pairs() == [(None, 1)]
        assert kernel.kintersect(left, right).to_pairs() == [(None, 1), ("a", 2)]


class TestTopnBoundaryTies:
    """topn membership at the selection boundary is deterministic:
    among BUNs tied at the n-th tail value, the earliest BUN positions
    win the remaining slots.  Regression (found by the MIL fuzzer):
    argpartition kept an arbitrary subset of the tied BUNs, so
    monolithic and fragmented execution could disagree."""

    def test_all_equal_tails_keep_earliest_positions(self):
        bat = dense_bat("int", [7] * 10)
        assert kernel.topn(bat, 4).head_list() == [0, 1, 2, 3]
        assert kernel.topn(bat, 4, descending=False).head_list() == [0, 1, 2, 3]

    def test_partial_tie_at_boundary(self):
        # Tails 9 > 7 == 7 == 7 > 1: the two slots left after the 9 go
        # to the earliest of the tied 7s.
        bat = dense_bat("int", [7, 9, 7, 1, 7])
        assert kernel.topn(bat, 3).to_pairs() == [(1, 9), (0, 7), (2, 7)]

    def test_nan_tails_sort_last_in_both_directions(self):
        bat = dense_bat("dbl", [1.0, float("nan"), 3.0, float("nan"), 2.0])
        assert kernel.topn(bat, 3).head_list() == [2, 4, 0]
        assert kernel.topn(bat, 3, descending=False).head_list() == [0, 4, 2]

    def test_fragmented_matches_monolithic_on_ties(self):
        from repro.monet import fragments as fr
        from repro.monet.fragments import FragmentationPolicy, fragment_bat

        rng = np.random.default_rng(5)
        bat = dense_bat("int", rng.integers(0, 4, 100).tolist())
        for strategy in ("range", "roundrobin"):
            fb = fragment_bat(
                bat,
                FragmentationPolicy(target_size=13, strategy=strategy, workers=2),
            )
            for descending in (True, False):
                assert (
                    fr.topn(fb, 10, descending=descending).to_pairs()
                    == kernel.topn(bat, 10, descending=descending).to_pairs()
                )


class TestKunionTypeGuard:
    """kunion concatenates under the left atom types; mismatched
    operands must raise instead of silently reinterpreting right-side
    values (dbl heads used to truncate into an int column)."""

    def test_mismatched_head_types_raise(self):
        left = bat_from_pairs("int", "int", [(1, 1), (2, 2)])
        right = bat_from_pairs("dbl", "int", [(2.5, 1)])
        with pytest.raises(KernelError, match="kunion type mismatch"):
            kernel.kunion(left, right)

    def test_mismatched_tail_types_raise(self):
        left = bat_from_pairs("oid", "int", [(0, 1)])
        right = bat_from_pairs("oid", "str", [(1, "a")])
        with pytest.raises(KernelError, match="kunion type mismatch"):
            kernel.kunion(left, right)

    def test_fragmented_kunion_raises_too(self):
        from repro.monet import fragments as fr
        from repro.monet.fragments import FragmentationPolicy, fragment_bat

        left = bat_from_pairs("oid", "int", [(0, 1), (1, 2), (2, 3)])
        right = bat_from_pairs("oid", "str", [(5, "a")])
        fb = fragment_bat(left, FragmentationPolicy(target_size=1, workers=2))
        with pytest.raises(KernelError, match="kunion type mismatch"):
            fr.kunion(fb, right)
