"""Differential MIL testing: fragmented vs monolithic plan execution.

The kernel harness (``test_fragment_differential``) proves operator
equivalence; this suite proves the *MIL layer* preserves it: the same
MIL script -- function-style and method-style -- run over a pool whose
BATs are registered fragmented must produce BUN-identical results to
the run over monolithic registrations.  It also asserts the headline
property of fragment-aware execution: a whole pipeline
(``select -> join -> group -> aggregate``) never touches the coalescing
``pool.lookup`` path and keeps its intermediates fragmented.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.monet.bat import BAT, bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import BBPError
from repro.monet.fragments import (
    FragmentationPolicy,
    FragmentedBAT,
    fragment_bat,
)
from repro.monet.mil import MILInterpreter, run_program

N = 120
STRATEGIES = ("range", "roundrobin")

#: Ops whose results accumulate floating point partials in a different
#: order on the fragmented path; values compare with tolerance.
_SCRIPTS = [
    'bat("nums").select(10, 60);',
    'select(bat("nums"), 10, 60);',
    'bat("nums").select(7);',
    'uselect(bat("nums"), 5, 40);',
    'bat("words").likeselect("a");',
    'bat("nums").mark(oid(3));',
    'number(bat("nums"), 2);',
    'bat("nums").reverse;',
    'mirror(bat("nums"));',
    'bat("nums").slice(5, 25);',
    'slice(bat("nums"), 100, 400);',
    'topn(bat("scores"), 5);',
    'bat("scores").topn(3, false);',
    'bat("keys").join(bat("dim"));',
    'join(bat("keys"), bat("dim"));',
    'leftjoin(bat("keys"), bat("dim"));',
    'outerjoin(bat("keys"), bat("dim"));',
    'bat("keys").fetchjoin(bat("dimv"));',
    'semijoin(bat("headed"), bat("dim"));',
    'kdiff(bat("headed"), bat("dim"));',
    'const(bat("nums"), "dbl", 0.25);',
    'count(bat("nums"));',
    'sum(bat("nums"));',
    'min(bat("nums"));',
    'bat("nums").max;',
    'avg(bat("scores"));',
    'sum(bat("scores"));',
    '[+](bat("nums"), 1);',
    '[*](bat("scores"), bat("scores"));',
    'group(bat("keys"));',
    'g := group(bat("keys")); {sum}(bat("scores"), g);',
    'g := group(bat("keys")); {count}(bat("scores"), g);',
    'g := group(bat("keys")); {max}(bat("scores"), g);',
    # Order-sensitive operators run fragment-parallel (merge-based).
    'sort(bat("headed"));',
    'bat("headed").tsort;',
    'tsort(bat("scores"));',
    'unique(bat("nums"));',
    'unique(bat("headed"));',
    'kunique(bat("headed"));',
    'tunique(bat("headed"));',
    'bat("words").reverse.sort;',
    'g := group(bat("keys")); refine(g, bat("scores"));',
    'g := group(bat("keys")); refine(g, bat("words"));',
    # Set operators run fragment-parallel (shared membership build).
    'kunion(bat("headed"), bat("headed"));',
    'kunion(bat("headed"), bat("headed2"));',
    'bat("headed").kunion(bat("headed2"));',
    'kintersect(bat("headed"), bat("headed2"));',
    'bat("headed2").kintersect(bat("headed"));',
    'kdiff(bat("headed"), bat("headed2"));',
    # Operators with no fragment-parallel counterpart coalesce.
    'g := group(bat("keys")); group_sizes(g);',
    # Full pipelines, method-style.
    's := bat("keys").select(oid(2), oid(8)); s.join(bat("dim")).sum;',
    'u := bat("headed").unique; u.sort.count;',
    's := bat("headed").sort; s.kunique.tsort;',
    'u := kunion(bat("headed"), bat("headed2")); u.kunique.sort;',
    'i := kintersect(bat("headed"), bat("headed2")); i.unique.count;',
]


def _policy(strategy: str) -> FragmentationPolicy:
    return FragmentationPolicy(target_size=16, strategy=strategy, workers=2)


def _data():
    rng = np.random.default_rng(42)
    nums = rng.integers(0, 80, N).tolist()
    scores = np.round(rng.random(N) * 10, 3).tolist()
    keys = rng.integers(0, 10, N).tolist()
    words = [
        str(rng.choice(["ape", "bat", "cat", "dog", "eel"]))
        + ("x" if rng.random() < 0.3 else "")
        for _ in range(N)
    ]
    return {
        "nums": dense_bat("int", nums),
        "scores": dense_bat("dbl", scores),
        "keys": dense_bat("oid", keys),
        "words": dense_bat("str", words),
        "dim": bat_from_pairs(
            "oid", "dbl", [(i, float(i) * 0.5) for i in range(10)]
        ),
        "dimv": dense_bat("dbl", [float(i) * 0.25 for i in range(12)]),
        "headed": bat_from_pairs(
            "oid", "int", [(int(h), int(t)) for h, t in
                           zip(rng.integers(0, 20, 40), rng.integers(-5, 5, 40))]
        ),
        "headed2": bat_from_pairs(
            "oid", "int", [(int(h), int(t)) for h, t in
                           zip(rng.integers(10, 30, 40), rng.integers(-5, 5, 40))]
        ),
    }


def _pools(strategy: str):
    """(monolithic pool, fully fragmented pool) over identical data."""
    mono = BATBufferPool()
    frag = BATBufferPool()
    policy = _policy(strategy)
    for name, bat in _data().items():
        mono.register(name, bat)
        frag.register_fragmented(
            name, fragment_bat(bat, policy), replace=True
        )
    return mono, frag


def _close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    return a == b


def _assert_same_value(got, expected, context: str) -> None:
    assert type(got) is type(expected) or (
        isinstance(got, BAT) and isinstance(expected, BAT)
    ), f"{context}: {type(got).__name__} vs {type(expected).__name__}"
    if isinstance(expected, BAT):
        got_pairs, expected_pairs = got.to_pairs(), expected.to_pairs()
        assert len(got_pairs) == len(expected_pairs), context
        for position, (g, e) in enumerate(zip(got_pairs, expected_pairs)):
            assert _close(g[0], e[0]) and _close(g[1], e[1]), (
                f"{context}: BUN {position}: {g} vs {e}"
            )
    elif isinstance(expected, float):
        assert _close(got, expected), f"{context}: {got} vs {expected}"
    else:
        assert got == expected, f"{context}: {got} vs {expected}"


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("script", _SCRIPTS)
def test_mil_differential(script, strategy):
    mono_pool, frag_pool = _pools(strategy)
    mono = run_program(script, mono_pool)
    frag = run_program(script, frag_pool, fragment_policy=_policy(strategy))
    _assert_same_value(frag.value, mono.value, script)
    assert frag.printed == mono.printed


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_pipeline_never_coalesces_via_pool_lookup(strategy, monkeypatch):
    """The acceptance property of fragment-aware MIL: a select -> join
    -> group -> aggregate pipeline over fragmented BATs runs without
    ever taking the coalescing ``pool.lookup`` path, and its BAT
    intermediates stay fragmented."""
    _, frag_pool = _pools(strategy)

    def forbidden(name):
        raise AssertionError(
            f"pool.lookup({name!r}) called during a fragmented pipeline"
        )

    monkeypatch.setattr(frag_pool, "lookup", forbidden)
    interpreter = MILInterpreter(frag_pool, fragment_policy=_policy(strategy))
    result = interpreter.run(
        """
        s := bat("keys").select(oid(2), oid(8));
        j := s.join(bat("dim"));
        g := group(bat("keys"));
        a := {sum}(bat("scores"), g);
        total := sum(j);
        total;
        """
    )
    assert isinstance(result.env["s"], FragmentedBAT)
    assert isinstance(result.env["j"], FragmentedBAT)
    assert isinstance(result.env["g"], FragmentedBAT)
    assert isinstance(result.env["a"], BAT)  # pump output: combined partials
    assert isinstance(result.value, float)

    mono_pool, _ = _pools(strategy)
    mono = MILInterpreter(mono_pool).run(
        's := bat("keys").select(oid(2), oid(8)); sum(s.join(bat("dim")));'
    )
    assert _close(result.env["total"], mono.value)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sort_unique_pipeline_never_coalesces(strategy, monkeypatch):
    """The PR-3 acceptance property: a pipeline containing ``sort`` and
    ``unique`` (plus ``tsort``/``kunique``/``refine``) coalesces only at
    result return -- neither the transparent ``fragments.coalesce``
    dispatch path nor the pool's coalescing ``lookup`` ever runs, and
    every BAT intermediate stays fragmented."""
    from repro.monet import fragments as fragments_module

    _, frag_pool = _pools(strategy)

    def forbidden_lookup(name):
        raise AssertionError(
            f"pool.lookup({name!r}) called during a fragmented sort/unique plan"
        )

    def forbidden_coalesce(value):
        raise AssertionError(
            "fragments.coalesce called before result return"
        )

    monkeypatch.setattr(frag_pool, "lookup", forbidden_lookup)
    monkeypatch.setattr(fragments_module, "coalesce", forbidden_coalesce)
    interpreter = MILInterpreter(frag_pool, fragment_policy=_policy(strategy))
    result = interpreter.run(
        """
        s := bat("headed").sort;
        u := s.unique;
        k := u.kunique;
        t := bat("scores").tsort;
        g := group(bat("keys"));
        r := refine(g, bat("scores"));
        c := count(u);
        u;
        """
    )
    monkeypatch.undo()
    for name in ("s", "u", "k", "t", "g", "r"):
        assert isinstance(result.env[name], FragmentedBAT), name
    assert isinstance(result.value, BAT)  # coalesced exactly at return

    mono_pool, _ = _pools(strategy)
    mono = MILInterpreter(mono_pool).run(
        'u := bat("headed").sort.unique; count(u); u;'
    )
    assert result.value.to_pairs() == mono.value.to_pairs()
    assert result.env["c"] == len(mono.value)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_setops_pipeline_never_coalesces(strategy, monkeypatch):
    """The PR-4 acceptance property: set-operator pipelines
    (``kunion``/``kintersect``/``kdiff`` feeding ``kunique``/``sort``)
    coalesce only at result return -- neither the transparent
    ``fragments.coalesce`` dispatch path nor the pool's coalescing
    ``lookup`` ever runs, and every BAT intermediate stays
    fragmented."""
    from repro.monet import fragments as fragments_module

    _, frag_pool = _pools(strategy)

    def forbidden_lookup(name):
        raise AssertionError(
            f"pool.lookup({name!r}) called during a fragmented set-op plan"
        )

    def forbidden_coalesce(value):
        raise AssertionError("fragments.coalesce called before result return")

    monkeypatch.setattr(frag_pool, "lookup", forbidden_lookup)
    monkeypatch.setattr(fragments_module, "coalesce", forbidden_coalesce)
    interpreter = MILInterpreter(frag_pool, fragment_policy=_policy(strategy))
    result = interpreter.run(
        """
        u := kunion(bat("headed"), bat("headed2"));
        i := kintersect(bat("headed"), bat("headed2"));
        d := kdiff(bat("headed"), bat("headed2"));
        k := u.kunique;
        s := k.sort;
        c := count(s);
        s;
        """
    )
    monkeypatch.undo()
    for name in ("u", "i", "d", "k", "s"):
        assert isinstance(result.env[name], FragmentedBAT), name
    assert isinstance(result.value, BAT)  # coalesced exactly at return

    mono_pool, _ = _pools(strategy)
    mono = MILInterpreter(mono_pool).run(
        's := kunion(bat("headed"), bat("headed2")).kunique.sort; count(s); s;'
    )
    assert result.value.to_pairs() == mono.value.to_pairs()
    assert result.env["c"] == len(mono.value)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_join_pipeline_never_coalesces(strategy, monkeypatch):
    """The PR-6 acceptance property: a pipeline joining two *fragmented*
    BATs runs the radix-partitioned build without materializing either
    side -- ``pool.lookup``, ``fragments.coalesce`` AND
    ``FragmentedBAT.to_bat`` are all tripwired, so not even the join's
    build side may coalesce before result return."""
    from repro.monet import fragments as fragments_module

    _, frag_pool = _pools(strategy)

    def forbidden_lookup(name):
        raise AssertionError(
            f"pool.lookup({name!r}) called during a fragmented join plan"
        )

    def forbidden_coalesce(value):
        raise AssertionError("fragments.coalesce called before result return")

    def forbidden_to_bat(self):
        raise AssertionError("FragmentedBAT.to_bat called inside a join plan")

    monkeypatch.setattr(frag_pool, "lookup", forbidden_lookup)
    monkeypatch.setattr(fragments_module, "coalesce", forbidden_coalesce)
    monkeypatch.setattr(FragmentedBAT, "to_bat", forbidden_to_bat)
    interpreter = MILInterpreter(frag_pool, fragment_policy=_policy(strategy))
    result = interpreter.run(
        """
        s := bat("keys").select(oid(1), oid(8));
        j := s.join(bat("dim"));
        o := bat("keys").outerjoin(bat("dim"));
        m := bat("headed").semijoin(bat("dim"));
        c := count(j);
        c;
        """
    )
    monkeypatch.undo()
    for name in ("s", "j", "o", "m"):
        assert isinstance(result.env[name], FragmentedBAT), name
    assert isinstance(result.value, int)

    mono_pool, _ = _pools(strategy)
    mono = MILInterpreter(mono_pool).run(
        """
        s := bat("keys").select(oid(1), oid(8));
        j := s.join(bat("dim"));
        o := bat("keys").outerjoin(bat("dim"));
        m := bat("headed").semijoin(bat("dim"));
        c := count(j);
        c;
        """
    )
    assert result.value == mono.value
    for name in ("j", "o", "m"):
        _assert_same_value(
            result.env[name].to_bat(), mono.env[name], f"join pipeline {name}"
        )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_final_result_is_coalesced_once(strategy):
    """A fragmented plan's final BAT value coalesces exactly at result
    return (and the coalesce is cached on the handle)."""
    _, frag_pool = _pools(strategy)
    interpreter = MILInterpreter(frag_pool, fragment_policy=_policy(strategy))
    result = interpreter.run('x := bat("nums").select(10, 60); x;')
    assert isinstance(result.value, BAT)
    assert isinstance(result.env["x"], FragmentedBAT)
    assert result.env["x"].to_bat() is result.value


def test_persists_keeps_fragmentation():
    """Persisting a fragmented intermediate registers it fragmented --
    the pool keeps fragments as the storage unit."""
    _, frag_pool = _pools("range")
    run_program(
        'persists("out", bat("nums").select(10, 60));',
        frag_pool,
        fragment_policy=_policy("range"),
    )
    assert frag_pool.is_fragmented("out")
    mono_pool, _ = _pools("range")
    expected = run_program('bat("nums").select(10, 60);', mono_pool)
    assert frag_pool.lookup("out").to_pairs() == expected.value.to_pairs()


def test_bbp_lookup_caches_coalesced_view():
    """``lookup`` of a fragmented registration returns the *same*
    coalesced view on every call, until the name is re-registered or
    dropped."""
    pool = BATBufferPool()
    bat = dense_bat("int", list(range(100)))
    policy = FragmentationPolicy(target_size=16)
    pool.register_fragmented("x", fragment_bat(bat, policy))
    first = pool.lookup("x")
    assert pool.lookup("x") is first
    # Re-registering invalidates the cached view.
    pool.register_fragmented(
        "x", fragment_bat(dense_bat("int", list(range(50))), policy), replace=True
    )
    second = pool.lookup("x")
    assert second is not first
    assert len(second) == 50
    # Replacing with a monolithic BAT also invalidates.
    pool.register("x", dense_bat("int", [1, 2, 3]), replace=True)
    assert pool.lookup("x").tail_list() == [1, 2, 3]
    pool.drop("x")
    with pytest.raises(BBPError):
        pool.lookup("x")


def test_fragmented_multiplex_keeps_alignment_guards():
    """A monolithic operand of the wrong length must raise the same
    KernelError as the monolithic multiplex -- window-slicing may not
    silently truncate it."""
    from repro.monet import fragments as fragments_module
    from repro.monet.errors import KernelError

    short = fragment_bat(
        dense_bat("int", list(range(100))),
        FragmentationPolicy(target_size=16, workers=2),
    )
    long = dense_bat("int", list(range(150)))
    with pytest.raises(KernelError, match="length mismatch"):
        fragments_module.multiplex("+", short, long)


def test_bbp_lookup_fragments_caches_on_the_fly_split():
    """``lookup_fragments`` of a monolithic registration caches the
    split (per name), re-splitting only for a different policy."""
    pool = BATBufferPool()
    pool.register("m", dense_bat("int", list(range(200))))
    a = pool.lookup_fragments("m", FragmentationPolicy(target_size=50))
    assert pool.lookup_fragments("m", FragmentationPolicy(target_size=50)) is a
    assert pool.lookup_fragments("m") is a  # None policy reuses the cache
    b = pool.lookup_fragments("m", FragmentationPolicy(target_size=20))
    assert b is not a and b.nfragments == 10
    pool.register("m", dense_bat("int", [0]), replace=True)
    assert pool.lookup_fragments("m").nfragments == 1
