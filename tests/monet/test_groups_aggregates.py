"""Grouping and (pump) aggregation."""


import pytest

from repro.monet.aggregates import (
    avg,
    count,
    grouped_avg,
    grouped_count,
    grouped_max,
    grouped_min,
    grouped_prod,
    grouped_sum,
    max_,
    min_,
    sum_,
)
from repro.monet.bat import bat_from_pairs, dense_bat, empty_bat
from repro.monet.errors import KernelError
from repro.monet.groups import (
    group,
    group_representatives,
    group_sizes,
    refine,
)


class TestGroup:
    def test_first_appearance_ids(self):
        grouping = group(dense_bat("str", ["x", "y", "x", "z", "y"]))
        assert grouping.tail_list() == [0, 1, 0, 2, 1]

    def test_numeric_grouping(self):
        grouping = group(dense_bat("int", [7, 7, 3]))
        assert grouping.tail_list() == [0, 0, 1]

    def test_float_grouping(self):
        grouping = group(dense_bat("dbl", [1.5, 2.5, 1.5]))
        assert grouping.tail_list() == [0, 1, 0]

    def test_empty(self):
        assert len(group(empty_bat("oid", "int"))) == 0

    def test_refine_splits_groups(self):
        base = group(dense_bat("str", ["x", "x", "x", "y"]))
        second = dense_bat("int", [1, 2, 1, 1])
        refined = refine(base, second)
        assert refined.tail_list() == [0, 1, 0, 2]

    def test_refine_with_strings(self):
        base = group(dense_bat("int", [1, 1, 2]))
        second = dense_bat("str", ["a", "b", "a"])
        assert refine(base, second).tail_list() == [0, 1, 2]

    def test_refine_misaligned_rejected(self):
        base = group(dense_bat("int", [1, 2]))
        with pytest.raises(KernelError):
            refine(base, dense_bat("int", [1]))

    def test_group_sizes(self):
        grouping = group(dense_bat("str", ["x", "y", "x"]))
        assert group_sizes(grouping).tail_list() == [2, 1]

    def test_group_representatives(self):
        values = dense_bat("str", ["x", "y", "x"])
        grouping = group(values)
        assert group_representatives(grouping, values).tail_list() == ["x", "y"]


class TestScalarAggregates:
    def test_count(self):
        assert count(dense_bat("int", [1, 2, 3])) == 3

    def test_sum_int(self):
        assert sum_(dense_bat("int", [1, 2, 3])) == 6

    def test_sum_dbl(self):
        assert sum_(dense_bat("dbl", [0.5, 0.25])) == 0.75

    def test_sum_empty_is_zero(self):
        assert sum_(empty_bat("oid", "int")) == 0

    def test_max_min(self):
        bat = dense_bat("int", [5, -3, 9])
        assert max_(bat) == 9
        assert min_(bat) == -3

    def test_max_empty_is_nil(self):
        assert max_(empty_bat("oid", "int")) is None

    def test_avg(self):
        assert avg(dense_bat("int", [1, 2, 3])) == 2.0

    def test_avg_empty_is_nil(self):
        assert avg(empty_bat("oid", "dbl")) is None

    def test_sum_rejects_strings(self):
        with pytest.raises(KernelError):
            sum_(dense_bat("str", ["a"]))


class TestPumpAggregates:
    def _fixture(self):
        values = dense_bat("dbl", [1.0, 2.0, 3.0, 4.0])
        groups = dense_bat("oid", [0, 1, 0, 1])
        return values, groups

    def test_grouped_sum(self):
        values, groups = self._fixture()
        assert grouped_sum(values, groups).tail_list() == [4.0, 6.0]

    def test_grouped_sum_int_stays_int(self):
        values = dense_bat("int", [1, 2, 3])
        groups = dense_bat("oid", [0, 0, 1])
        result = grouped_sum(values, groups)
        assert result.ttype == "int"
        assert result.tail_list() == [3, 3]

    def test_grouped_sum_empty_group_gets_zero(self):
        values = dense_bat("dbl", [1.0])
        groups = dense_bat("oid", [2])
        assert grouped_sum(values, groups, 4).tail_list() == [0.0, 0.0, 1.0, 0.0]

    def test_grouped_count(self):
        values, groups = self._fixture()
        assert grouped_count(values, groups).tail_list() == [2, 2]

    def test_grouped_max(self):
        values, groups = self._fixture()
        assert grouped_max(values, groups).tail_list() == [3.0, 4.0]

    def test_grouped_min(self):
        values, groups = self._fixture()
        assert grouped_min(values, groups).tail_list() == [1.0, 2.0]

    def test_grouped_max_empty_group_is_nil(self):
        values = dense_bat("dbl", [1.0])
        groups = dense_bat("oid", [0])
        assert grouped_max(values, groups, 2).tail_list() == [1.0, None]

    def test_grouped_avg(self):
        values, groups = self._fixture()
        assert grouped_avg(values, groups).tail_list() == [2.0, 3.0]

    def test_grouped_avg_empty_group_is_nil(self):
        values = dense_bat("dbl", [2.0])
        groups = dense_bat("oid", [1])
        result = grouped_avg(values, groups, 2).tail_list()
        assert result[0] is None and result[1] == 2.0

    def test_grouped_prod(self):
        values = dense_bat("dbl", [2.0, 3.0, 0.5])
        groups = dense_bat("oid", [0, 0, 1])
        assert grouped_prod(values, groups).tail_list() == [6.0, 0.5]

    def test_grouped_prod_with_zero(self):
        values = dense_bat("dbl", [2.0, 0.0])
        groups = dense_bat("oid", [0, 0])
        assert grouped_prod(values, groups).tail_list() == [0.0]

    def test_grouped_prod_negative_parity(self):
        values = dense_bat("dbl", [-2.0, 3.0, -2.0, -3.0])
        groups = dense_bat("oid", [0, 0, 1, 1])
        result = grouped_prod(values, groups).tail_list()
        assert result[0] == pytest.approx(-6.0)
        assert result[1] == pytest.approx(6.0)

    def test_grouped_prod_empty_group_is_one(self):
        values = dense_bat("dbl", [2.0])
        groups = dense_bat("oid", [1])
        assert grouped_prod(values, groups, 2).tail_list()[0] == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(KernelError):
            grouped_sum(dense_bat("dbl", [1.0]), dense_bat("oid", [0, 1]))

    def test_value_alignment_via_heads(self):
        # Non-void but equal heads align positionally.
        values = bat_from_pairs("oid", "dbl", [(5, 1.0), (9, 2.0)])
        groups = bat_from_pairs("oid", "oid", [(5, 0), (9, 0)])
        assert grouped_sum(values, groups).tail_list() == [3.0]

    def test_misaligned_void_heads_rejected(self):
        from repro.monet.bat import BAT, Column, VoidColumn
        import numpy as np

        values = BAT(VoidColumn(0, 2), Column("dbl", np.array([1.0, 2.0])))
        groups = BAT(VoidColumn(5, 2), Column("oid", np.array([0, 1])))
        with pytest.raises(KernelError):
            grouped_sum(values, groups)

    def test_alignment_joins_on_permuted_heads(self):
        # Vectorized searchsorted alignment: heads in different orders.
        values = bat_from_pairs("oid", "dbl", [(9, 1.0), (5, 2.0), (7, 4.0)])
        groups = bat_from_pairs("oid", "oid", [(5, 0), (7, 1), (9, 1)])
        assert grouped_sum(values, groups).tail_list() == [2.0, 5.0]

    def test_alignment_with_object_heads(self):
        # Regression: object (str) heads used a per-element Python dict
        # loop; the factorized path must join them identically.
        values = bat_from_pairs("str", "dbl", [("b", 1.0), ("a", 2.0), ("c", 4.0)])
        groups = bat_from_pairs("str", "oid", [("a", 0), ("b", 1), ("c", 1)])
        assert grouped_sum(values, groups).tail_list() == [2.0, 5.0]

    def test_alignment_with_object_heads_missing_group(self):
        values = bat_from_pairs("str", "dbl", [("a", 1.0), ("zz", 2.0)])
        groups = bat_from_pairs("str", "oid", [("a", 0), ("b", 0)])
        with pytest.raises(KernelError, match="zz"):
            grouped_sum(values, groups)

    def test_alignment_missing_numeric_head_rejected(self):
        values = bat_from_pairs("oid", "dbl", [(1, 1.0), (42, 2.0)])
        groups = bat_from_pairs("oid", "oid", [(1, 0), (2, 0)])
        with pytest.raises(KernelError, match="42"):
            grouped_sum(values, groups)

    def test_alignment_duplicate_heads_last_wins(self):
        # Duplicate grouping heads: the last entry decides, matching the
        # historical dict-based join.
        values = bat_from_pairs("oid", "dbl", [(5, 1.0), (7, 2.0), (5, 4.0)])
        groups = bat_from_pairs("oid", "oid", [(5, 0), (5, 1), (7, 1)])
        assert grouped_sum(values, groups, 2).tail_list() == [0.0, 7.0]

    def test_alignment_object_heads_with_nil_falls_back(self):
        # None among str heads defeats numpy ordering; the dict
        # fallback must still align correctly.
        values = bat_from_pairs("str", "dbl", [("a", 1.0), ("b", 2.0), ("b", 3.0)])
        groups = bat_from_pairs("str", "oid", [("a", 0), ("b", 1), (None, 1)])
        assert grouped_sum(values, groups).tail_list() == [1.0, 5.0]
