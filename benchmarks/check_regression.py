"""CI benchmark-regression gate over BENCH_fragments.json artifacts.

Compares the current benchmark run against the previous run's artifact
(downloaded by CI when one exists) and fails when any smoke-mode median
regresses beyond the threshold.  Rows are matched on the full
(op, n, backend, dtype) key; rows present on only one side are
reported but never fail the gate (benchmarks come and go as the
operator set grows).

The gate is deliberately forgiving: CI runners are shared and noisy,
so the default threshold is 2.5x on the *median* (medians absorb
scheduler spikes that best-of numbers do not).  A genuinely intended
slowdown ships by putting ``[bench-skip]`` in the commit message,
which makes CI skip this step entirely.

Usage:
    python benchmarks/check_regression.py CURRENT.json [PREVIOUS.json]
        [--threshold 2.5]

Exit status 0 = no regression (or nothing to compare), 1 = regression.
"""

import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 2.5


def load_rows(path):
    """Benchmark rows from *path*, or None when the file is missing or
    unreadable (a first run has no previous artifact to compare)."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError) as error:
        print(f"note: cannot read {path}: {error}")
        return None
    rows = document.get("rows", [])
    if not isinstance(rows, list):
        print(f"note: {path} has no row list")
        return None
    return rows


def row_key(row):
    return (row.get("op"), row.get("n"), row.get("backend"), row.get("dtype"))


def index_rows(rows):
    indexed = {}
    for row in rows:
        if row.get("mode") != "smoke":
            continue
        median = row.get("median_ms")
        if isinstance(median, (int, float)) and median > 0:
            indexed[row_key(row)] = float(median)
    return indexed


def compare(current, previous, threshold):
    """(regressions, improvements, unmatched) between two row indexes."""
    regressions = []
    improvements = []
    for key, previous_ms in previous.items():
        current_ms = current.get(key)
        if current_ms is None:
            continue
        ratio = current_ms / previous_ms
        if ratio > threshold:
            regressions.append((key, previous_ms, current_ms, ratio))
        elif ratio < 1 / threshold:
            improvements.append((key, previous_ms, current_ms, ratio))
    unmatched = sorted(set(previous) - set(current))
    return regressions, improvements, unmatched


def describe(key):
    op, n, backend, dtype = key
    return f"{op} n={n} backend={backend} dtype={dtype}"


def main(argv):
    threshold = DEFAULT_THRESHOLD
    args = []
    position = 0
    while position < len(argv):
        if argv[position] == "--threshold":
            if position + 1 >= len(argv):
                print("error: --threshold needs a value")
                return 2
            threshold = float(argv[position + 1])
            position += 2
        else:
            args.append(argv[position])
            position += 1
    if not args:
        print("usage: check_regression.py CURRENT.json [PREVIOUS.json]")
        return 2
    current_rows = load_rows(args[0])
    if current_rows is None:
        print("FAIL: the current benchmark artifact is unreadable")
        return 1
    if len(args) < 2:
        print("no previous artifact given; nothing to compare -- pass")
        return 0
    previous_rows = load_rows(args[1])
    if previous_rows is None:
        print("no previous artifact available; nothing to compare -- pass")
        return 0
    current = index_rows(current_rows)
    previous = index_rows(previous_rows)
    if not previous:
        print("previous artifact has no smoke rows; nothing to compare -- pass")
        return 0
    regressions, improvements, unmatched = compare(current, previous, threshold)
    print(
        f"compared {len(set(current) & set(previous))} smoke rows "
        f"(threshold {threshold}x on median wall time)"
    )
    for key, previous_ms, current_ms, ratio in sorted(improvements):
        print(
            f"  improved  {describe(key)}: "
            f"{previous_ms:.2f} -> {current_ms:.2f} ms ({ratio:.2f}x)"
        )
    for key in unmatched:
        print(f"  unmatched {describe(key)}: present only in the previous run")
    if regressions:
        for key, previous_ms, current_ms, ratio in sorted(regressions):
            print(
                f"  REGRESSED {describe(key)}: "
                f"{previous_ms:.2f} -> {current_ms:.2f} ms ({ratio:.2f}x)"
            )
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{threshold}x; if intended, put [bench-skip] in the commit message"
        )
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
