"""E12 -- concurrent query-service latency and throughput.

Drives a live :class:`repro.service.server.MirrorService` (asyncio
front door, bounded executor, admission control) over real TCP sockets
and measures:

* **Point-lookup scaling**: p50/p99 latency and aggregate throughput
  of a small MIL select under N in {1, 8, 32} concurrent clients.
* **Mixed workload / anti-starvation**: the same point lookups while
  one client runs a heavy multi-statement sort pipeline.  The bounded
  executor (admission ``max_inflight`` slots, one occupied by the
  sort) must keep point-lookup p99 in the same regime instead of
  queueing everything behind the sort -- the row pair
  ``service_point`` vs ``service_mixed_point`` in the JSON artifact is
  the proof, and CI gates both through ``check_regression.py``.

Rows follow the BENCH_fragments.json schema (op, n, backend, dtype,
median_ms, mode) so the one regression gate covers both artifacts;
the service rows additionally carry ``p99_ms`` and ``qps``.

Standalone report:  python benchmarks/bench_service.py
Fast smoke mode:    BENCH_FAST=1 python benchmarks/bench_service.py
JSON artifact:      BENCH_FAST=1 python benchmarks/bench_service.py \\
                        --json BENCH_service.json
CI service smoke:   python benchmarks/bench_service.py --smoke-clients 16
"""

import json
import os
import platform
import sys
import threading
import time

import numpy as np

from repro.core.mirror import MirrorDBMS
from repro.monet.bat import BAT, Column, VoidColumn
from repro.service import ServiceClient, ServiceConfig, ServiceThread

FAST = bool(os.environ.get("BENCH_FAST"))
POINT_N = 100_000 if not FAST else 20_000
HEAVY_N = 2_000_000 if not FAST else 300_000
REQUESTS_PER_CLIENT = 40 if not FAST else 12
CLIENT_COUNTS = (1, 8, 32)
MAX_INFLIGHT = max(2, min(4, (os.cpu_count() or 2)))

POINT_MIL = 'bat("pts").select(100, 220);'
#: Many statements: wall-clock heavy, checkpointed between statements.
HEAVY_MIL = "\n".join(
    [f'h{i} := tsort(bat("heavy"));' for i in range(8)] + ["count(h7);"]
)

_JSON_ROWS = []


def _record(op, n, stats):
    _JSON_ROWS.append(
        {
            "op": op,
            "n": int(n),
            "backend": "service",
            "dtype": "int",
            "median_ms": round(stats["p50_ms"], 4),
            "p99_ms": round(stats["p99_ms"], 4),
            "qps": round(stats["qps"], 1),
            "mode": "smoke" if FAST else "full",
        }
    )


def write_json(path):
    document = {
        "schema": 1,
        "mode": "smoke" if FAST else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "max_inflight": MAX_INFLIGHT,
        "rows": _JSON_ROWS,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
    print(f"wrote {len(_JSON_ROWS)} benchmark rows to {path}")


def make_db() -> MirrorDBMS:
    db = MirrorDBMS()
    rng = np.random.default_rng(11)
    db.pool.register(
        "pts",
        BAT(
            VoidColumn(0, POINT_N),
            Column("int", rng.integers(0, 10_000, POINT_N).astype(np.int64)),
        ),
    )
    db.pool.register(
        "heavy",
        BAT(
            VoidColumn(0, HEAVY_N),
            Column("int", rng.integers(0, 1_000_000, HEAVY_N).astype(np.int64)),
        ),
    )
    return db


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _run_clients(address, n_clients, requests_each):
    """Fire point lookups from *n_clients* threads; returns latency
    stats in milliseconds plus aggregate throughput."""
    latencies = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def client_run():
        try:
            with ServiceClient(*address) as client:
                barrier.wait(timeout=60)
                mine = []
                for _ in range(requests_each):
                    start = time.perf_counter()
                    client.mil(POINT_MIL)
                    mine.append((time.perf_counter() - start) * 1000)
                with lock:
                    latencies.extend(mine)
        except Exception as exc:  # pragma: no cover - reported below
            with lock:
                errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=client_run) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if errors:
        raise RuntimeError(f"{len(errors)} client(s) failed: {errors[:3]}")
    latencies.sort()
    return {
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "qps": len(latencies) / wall if wall > 0 else float("inf"),
        "count": len(latencies),
    }


def bench_point_scaling(service):
    print(f"\npoint lookups over TCP ({POINT_N} BUNs base, "
          f"{REQUESTS_PER_CLIENT} req/client, max_inflight={MAX_INFLIGHT})")
    print(f"{'clients':>8} {'p50 ms':>9} {'p99 ms':>9} {'qps':>9}")
    for n_clients in CLIENT_COUNTS:
        stats = _run_clients(service.address, n_clients, REQUESTS_PER_CLIENT)
        _record("service_point", n_clients, stats)
        print(
            f"{n_clients:>8} {stats['p50_ms']:>9.2f} "
            f"{stats['p99_ms']:>9.2f} {stats['qps']:>9.1f}"
        )


def bench_mixed_workload(service):
    """Point lookups while one heavy sort pipeline hogs a slot: the
    admission controller must keep the lookups flowing."""
    n_clients = 8
    print(f"\nmixed workload: {n_clients} point-lookup clients + 1 heavy "
          f"sort client ({HEAVY_N} BUNs x8 statements)")
    heavy_done = threading.Event()
    heavy_wall = {}

    def heavy_run():
        try:
            with ServiceClient(*service.address, timeout=600) as client:
                start = time.perf_counter()
                client.mil(HEAVY_MIL, deadline_ms=600_000)
                heavy_wall["seconds"] = time.perf_counter() - start
        finally:
            heavy_done.set()

    heavy = threading.Thread(target=heavy_run)
    heavy.start()
    time.sleep(0.05)  # let the sort occupy its slot
    stats = _run_clients(service.address, n_clients, REQUESTS_PER_CLIENT)
    heavy.join()
    _record("service_mixed_point", n_clients, stats)
    print(f"{'clients':>8} {'p50 ms':>9} {'p99 ms':>9} {'qps':>9}")
    print(
        f"{n_clients:>8} {stats['p50_ms']:>9.2f} "
        f"{stats['p99_ms']:>9.2f} {stats['qps']:>9.1f}"
    )
    if "seconds" in heavy_wall:
        print(f"  heavy sort pipeline: {heavy_wall['seconds']:.2f}s wall")
    print(
        "  point-lookup p99 stayed bounded while the sort ran "
        f"(p99 {stats['p99_ms']:.2f} ms)"
    )
    return stats


def run_smoke(n_clients):
    """CI service smoke: N concurrent clients, every response correct,
    clean shutdown, zero leaked threads or sessions."""
    db = make_db()
    before = {t.name for t in threading.enumerate()}
    config = ServiceConfig(
        max_inflight=MAX_INFLIGHT, max_queue=4 * n_clients, queue_timeout=60
    )
    with ServiceThread(db, config) as service:
        stats = _run_clients(service.address, n_clients, 5)
        assert stats["count"] == n_clients * 5, stats
        report = service.service.status()
        assert report["queries_served"] >= n_clients * 5, report
        # Session reaping runs on the event loop after the close
        # handshake; give it a beat before requiring an empty registry.
        reap_deadline = time.monotonic() + 10
        while service.service.sessions and time.monotonic() < reap_deadline:
            time.sleep(0.05)
        assert not service.service.sessions, service.service.status()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        leaked = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith(("mirror-query", "mirror-service"))
        ]
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked service threads: {leaked}"
    after = {t.name for t in threading.enumerate()}
    assert after <= before, f"leaked threads: {sorted(after - before)}"
    session_temps = [n for n in db.pool._all_names() if n.startswith("@")]
    assert not session_temps, f"leaked session temps: {session_temps}"
    print(
        f"service smoke PASS: {n_clients} concurrent clients, "
        f"{stats['count']} queries (p99 {stats['p99_ms']:.2f} ms), "
        "clean shutdown, zero leaked threads/sessions"
    )


def main(argv):
    json_path = None
    smoke_clients = None
    position = 0
    while position < len(argv):
        if argv[position] == "--json" and position + 1 < len(argv):
            json_path = argv[position + 1]
            position += 2
        elif argv[position] == "--smoke-clients" and position + 1 < len(argv):
            smoke_clients = int(argv[position + 1])
            position += 2
        else:
            print(f"unknown argument {argv[position]!r}")
            return 2
    if smoke_clients is not None:
        run_smoke(smoke_clients)
        return 0
    db = make_db()
    config = ServiceConfig(
        max_inflight=MAX_INFLIGHT, max_queue=256, queue_timeout=120
    )
    with ServiceThread(db, config) as service:
        bench_point_scaling(service)
        bench_mixed_workload(service)
    if json_path:
        write_json(json_path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
