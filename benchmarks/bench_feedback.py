"""E9 -- Relevance feedback improves retrieval across iterations.

"The user may provide relevance feedback for these images; this
relevance feedback is used to improve the current query."
(section 5.2.)  Replays ground-truth feedback sessions against the
synthetic library and reports precision@k per round, plus the cost of
one feedback round.

Expected shape: precision@k non-decreasing over rounds for the target
class; a feedback round costs about one extra ranking query.

Standalone report:  python benchmarks/bench_feedback.py
"""

import pytest

from repro.core.library import DigitalLibrary
from repro.core.session import RetrievalSession
from repro.multimedia.webrobot import WebRobot
from repro.workloads import best_of

LIBRARY_SIZE = 48
TARGET = "sunset_beach"
TEXT_QUERY = "red sunset over the beach"

#: Deliberately hard setting: only 35% of images annotated (weak
#: thesaurus) and coarse clustering (4 classes for 6 scene types), so
#: the initial formulation is poor and feedback has room to help.


def _build_library():
    robot = WebRobot(seed=33, annotated_fraction=0.35)
    library = DigitalLibrary(max_classes=4, seed=2)
    library.ingest(robot.crawl(LIBRARY_SIZE))
    library.run_daemons()
    return library


def _run_session(library, rounds=3, k=10):
    session = RetrievalSession(library, k=k)
    results = session.start(TEXT_QUERY)
    precisions = [session.precision_at(4, TARGET)]
    for _ in range(rounds - 1):
        relevant = [r.url for r in results if r.true_class == TARGET]
        nonrelevant = [r.url for r in results if r.true_class != TARGET]
        results = session.give_feedback(relevant, nonrelevant)
        precisions.append(session.precision_at(4, TARGET))
    return precisions


@pytest.fixture(scope="module")
def library():
    return _build_library()


def test_feedback_round_cost(benchmark, library):
    session = RetrievalSession(library, k=10)
    results = session.start(TEXT_QUERY)
    relevant = [r.url for r in results if r.true_class == TARGET]
    nonrelevant = [r.url for r in results if r.true_class != TARGET]

    def round_():
        return session.give_feedback(relevant, nonrelevant)

    benchmark(round_)


def test_initial_query_cost(benchmark, library):
    def start():
        return RetrievalSession(library, k=10).start(TEXT_QUERY)

    results = benchmark(start)
    assert results


def test_precision_does_not_collapse(library):
    precisions = _run_session(library)
    assert precisions[-1] >= precisions[0] - 0.25
    assert all(0.0 <= p <= 1.0 for p in precisions)


def report():
    from repro.evaluation import session_precision_table

    library = _build_library()
    session = RetrievalSession(library, k=10)
    results = session.start(TEXT_QUERY)
    for _ in range(3):
        relevant = [r.url for r in results if r.true_class == TARGET]
        nonrelevant = [r.url for r in results if r.true_class != TARGET]
        results = session.give_feedback(relevant, nonrelevant)
    table = session_precision_table(session, TARGET, ks=(2, 4, 8))
    print(f"E9: feedback sessions on {LIBRARY_SIZE} images, "
          f"target class {TARGET!r}")
    header = "".join(f"{'P@' + str(k):>8}" for k in sorted(table))
    print(f"{'round':>6}{header}")
    rounds = len(next(iter(table.values())))
    for index in range(rounds):
        row = "".join(f"{table[k][index]:>8.2f}" for k in sorted(table))
        print(f"{index:>6}{row}")
    session = RetrievalSession(library, k=10)
    results = session.start(TEXT_QUERY)
    relevant = [r.url for r in results if r.true_class == TARGET]
    nonrelevant = [r.url for r in results if r.true_class != TARGET]
    elapsed = best_of(lambda: session.give_feedback(relevant, nonrelevant))
    print(f"one feedback round: {elapsed * 1000:.1f} ms")


if __name__ == "__main__":
    report()
