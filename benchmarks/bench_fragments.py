"""E11 -- fragmented vs monolithic kernel and MIL execution.

Measures the hot operators of the fragmented BAT subsystem
(:mod:`repro.monet.fragments`) against their monolithic counterparts:
select (equality + range), join (value probe against a shared build
side), IR posting-list scoring, and a whole MIL pipeline
(``select -> join -> sum``) executed fragment-aware by the MIL
interpreter, at 10^5 .. 10^7 BUNs.

A calibration pass measures real operator timings at several fragment
sizes and serial/parallel floors and installs the winners via
:func:`repro.monet.fragments.set_default_tuning`, replacing the static
constants of the seed with cores-plus-measurement-derived values.

The calibration also decides the *executor backend* per dtype: numeric
operators keep the thread pool (numpy releases the GIL), while the
GIL-bound object-dtype (str) predicates -- likeselect, str selects,
string membership -- are timed under both the thread and the process
backend (:mod:`repro.monet.fragments` ``ProcessBackend``) and the
winner, plus the measured BUN crossover, is installed via
``set_default_tuning(backend=..., process_min=...)``.

Every section records machine-readable rows (op, size, backend, dtype,
median wall ms); ``--json PATH`` writes them as a JSON document that
CI uploads as an artifact on every run and feeds to
``benchmarks/check_regression.py`` to gate performance regressions.

Standalone report:  python benchmarks/bench_fragments.py
Fast smoke mode:    BENCH_FAST=1 python benchmarks/bench_fragments.py
MIL pipeline only:  BENCH_FAST=1 python benchmarks/bench_fragments.py --mil
Sort/unique only:   BENCH_FAST=1 python benchmarks/bench_fragments.py --sort
Set operators only: BENCH_FAST=1 python benchmarks/bench_fragments.py --setops
String (backend) only: BENCH_FAST=1 python benchmarks/bench_fragments.py --strings
Grace join only:    BENCH_FAST=1 python benchmarks/bench_fragments.py --join
Append path only:   BENCH_FAST=1 python benchmarks/bench_fragments.py --append
Calibration only:   python benchmarks/bench_fragments.py --calibrate
JSON artifact:      BENCH_FAST=1 python benchmarks/bench_fragments.py \\
                        --json BENCH_fragments.json
"""

import json
import os
import platform
import sys
import time

import numpy as np
import pytest

from repro.ir.index import InvertedIndex
from repro.monet import fragments as fr
from repro.monet import kernel
from repro.monet.bat import BAT, Column, VoidColumn, bat_from_pairs
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import FragmentationPolicy, fragment_bat
from repro.monet.mil import MILInterpreter

FAST = bool(os.environ.get("BENCH_FAST"))
N = 100_000 if not FAST else 20_000
WORKERS = max(2, os.cpu_count() or 1)


def _policy(n):
    """One fragment per two worker slots, floored at the default size:
    keeps per-fragment dispatch overhead negligible relative to the
    numpy work while still saturating the shared pool (>= 2 threads)."""
    return FragmentationPolicy(
        target_size=max(fr.DEFAULT_FRAGMENT_SIZE, -(-n // (2 * WORKERS)))
    )


def _int_bat(n, *, distinct=1000, seed=0):
    rng = np.random.default_rng(seed)
    return BAT(VoidColumn(0, n), Column("int", rng.integers(0, distinct, n)))


def _join_sides(n, *, seed=2):
    rng = np.random.default_rng(seed)
    left = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, n // 2, n)))
    right = BAT(
        Column("oid", rng.permutation(n // 2).astype(np.int64)),
        Column("dbl", rng.random(n // 2)),
        hkey=True,
    )
    return left, right


def _index(n_docs, postings_per_doc, *, seed=3):
    rng = np.random.default_rng(seed)
    vocabulary = [f"term{i}" for i in range(500)]
    documents = []
    for _ in range(n_docs):
        terms = rng.choice(len(vocabulary), size=postings_per_doc, replace=False)
        documents.append({vocabulary[t]: int(rng.integers(1, 6)) for t in terms})
    return documents


#: Machine-readable result rows accumulated by every report section;
#: ``--json PATH`` writes them out (op, size, backend, dtype, median
#: wall ms) so CI can archive a perf trajectory and gate regressions.
_JSON_ROWS = []


def _record(op, n, backend, dtype, stats):
    _JSON_ROWS.append(
        {
            "op": op,
            "n": int(n),
            "backend": backend,
            "dtype": dtype,
            "median_ms": round(stats["median_ms"], 4),
            "best_ms": round(stats["best_ms"], 4),
            "mode": "smoke" if FAST else "full",
        }
    )


def write_json(path):
    document = {
        "schema": 1,
        "mode": "smoke" if FAST else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "rows": _JSON_ROWS,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
    print(f"wrote {len(_JSON_ROWS)} benchmark rows to {path}")


def _measure(fn, repeats):
    """Best and median wall milliseconds over *repeats* timed runs
    (after one warm-up run that also pays one-time fragmentation or
    coalesce costs).  The printed reports keep the historical best-of
    numbers; the JSON rows carry the median, which is what the CI
    regression gate compares (medians are stable under scheduler
    noise, bests are not)."""
    fn()  # warm-up
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    half = len(times) // 2
    if len(times) % 2:
        median = times[half]
    else:
        median = (times[half - 1] + times[half]) / 2
    return {"best_ms": times[0] * 1000, "median_ms": median * 1000}


def _timed(fn, repeats):
    return _measure(fn, repeats)["best_ms"]


# ----------------------------------------------------------------------
# MIL pipeline: the fragment-aware interpreter end to end
# ----------------------------------------------------------------------

#: select -> join -> aggregate, the canonical Mirror ranking shape.
MIL_PIPELINE = (
    's := bat("fact").select(oid(50), oid(800));'
    ' j := s.join(bat("dim"));'
    ' sum(j);'
)


def _mil_pools(n, *, seed=5):
    """(monolithic pool+interpreter, fragmented pool+interpreter) over
    one fact BAT of *n* oid keys and a 1000-row dimension."""
    rng = np.random.default_rng(seed)
    fact = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, 1000, n)))
    dim = bat_from_pairs(
        "oid", "dbl", [(i, float(i) * 0.5) for i in rng.permutation(1000)]
    )
    policy = _policy(n)
    mono_pool = BATBufferPool()
    mono_pool.register("fact", fact)
    mono_pool.register("dim", dim)
    frag_pool = BATBufferPool()
    frag_pool.register_fragmented("fact", fragment_bat(fact, policy))
    frag_pool.register_fragmented("dim", fragment_bat(dim, policy))
    return (
        MILInterpreter(mono_pool),
        MILInterpreter(frag_pool, fragment_policy=policy),
    )


# ----------------------------------------------------------------------
# Sort/unique pipeline: the fragment-parallel order-sensitive operators
# ----------------------------------------------------------------------

#: distinct + order-by over a duplicate-heavy fact BAT: per-fragment
#: dedup collapses the data before the cross-fragment merge ever sees
#: it, then the (small) survivor set sorts.  This is the canonical
#: shape the merge-based sort/unique operators exist for.
MIL_SORT_PIPELINE = (
    'u := bat("fact").unique;'
    ' s := u.sort;'
    ' count(s);'
)


def _headed_bat(n, *, distinct_heads=500, distinct_tails=40, seed=7):
    """A duplicate-heavy [oid, int] BAT with a materialized head (the
    shape ``sort``/``unique`` actually operate on; void heads are
    trivially sorted and key)."""
    rng = np.random.default_rng(seed)
    return BAT(
        Column("oid", rng.integers(0, distinct_heads, n).astype(np.int64)),
        Column("int", rng.integers(0, distinct_tails, n)),
    )


def _sort_pools(n, *, seed=7):
    """(monolithic, fragmented) interpreters over one duplicate-heavy
    fact BAT of *n* BUNs."""
    fact = _headed_bat(n, seed=seed)
    policy = _policy(n)
    mono_pool = BATBufferPool()
    mono_pool.register("fact", fact)
    frag_pool = BATBufferPool()
    frag_pool.register_fragmented("fact", fragment_bat(fact, policy))
    return (
        MILInterpreter(mono_pool),
        MILInterpreter(frag_pool, fragment_policy=policy),
    )


def _timed_pair(name, n, dtype, mono_case, frag_case, repeats, frag_backend="thread"):
    """Time a monolithic/fragmented case pair, record both as JSON rows
    and print the historical best-of comparison line."""
    mono_stats = _measure(mono_case, repeats)
    frag_stats = _measure(frag_case, repeats)
    _record(name, n, "monolithic", dtype, mono_stats)
    _record(name, n, frag_backend, dtype, frag_stats)
    mono_ms, frag_ms = mono_stats["best_ms"], frag_stats["best_ms"]
    ratio = frag_ms / mono_ms if mono_ms else float("inf")
    print(f"{n:>12,}  {name:<18}{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}")


def _report_sort(sizes, verbose_header=True):
    if verbose_header:
        print(f"E12: fragment-parallel sort/unique (workers={WORKERS})")
        print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")
    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        policy = _policy(n)
        headed = _headed_bat(n)
        fheaded = fragment_bat(headed, policy)
        cases = [
            (
                "unique",
                lambda: kernel.unique(headed),
                lambda: fr.unique(fheaded, workers=WORKERS),
            ),
            (
                "sort",
                lambda: kernel.sort(headed),
                lambda: fr.sort(fheaded, workers=WORKERS),
            ),
        ]
        for name, mono_case, frag_case in cases:
            assert mono_case().to_pairs() == frag_case().to_bat().to_pairs()
            _timed_pair(name, n, "int", mono_case, frag_case, repeats)
        mono, frag = _sort_pools(n)
        mono_value = mono.run(MIL_SORT_PIPELINE).value
        frag_value = frag.run(MIL_SORT_PIPELINE).value
        assert mono_value == frag_value, (mono_value, frag_value)
        _timed_pair(
            "unique+sort (MIL)",
            n,
            "int",
            lambda: mono.run(MIL_SORT_PIPELINE),
            lambda: frag.run(MIL_SORT_PIPELINE),
            repeats,
        )


# ----------------------------------------------------------------------
# Set-operator pipeline: fragment-parallel kunion/kintersect
# ----------------------------------------------------------------------

#: union + distinct + order-by over two half-overlapping fact BATs: the
#: left-head membership build filters the right side fragment-parallel,
#: then kunique + sample-sort run on the union without ever coalescing.
MIL_SETOPS_PIPELINE = (
    'u := kunion(bat("facta"), bat("factb"));'
    ' s := u.kunique.sort;'
    ' count(s);'
)


def _setops_bats(n, *, seed=11):
    """Two [oid, int] fact BATs of *n* BUNs whose head domains overlap
    by about half -- the union genuinely grows and the intersection is
    genuinely selective."""
    rng = np.random.default_rng(seed)
    a = BAT(
        Column("oid", rng.integers(0, n, n).astype(np.int64)),
        Column("int", rng.integers(0, 50, n)),
    )
    b = BAT(
        Column("oid", rng.integers(n // 2, n + n // 2, n).astype(np.int64)),
        Column("int", rng.integers(0, 50, n)),
    )
    return a, b


def _setops_pools(n, *, seed=11):
    """(monolithic, fragmented) interpreters over the two fact BATs."""
    a, b = _setops_bats(n, seed=seed)
    policy = _policy(n)
    mono_pool = BATBufferPool()
    mono_pool.register("facta", a)
    mono_pool.register("factb", b)
    frag_pool = BATBufferPool()
    frag_pool.register_fragmented("facta", fragment_bat(a, policy))
    frag_pool.register_fragmented("factb", fragment_bat(b, policy))
    return (
        MILInterpreter(mono_pool),
        MILInterpreter(frag_pool, fragment_policy=policy),
    )


def _report_setops(sizes, verbose_header=True):
    if verbose_header:
        print(f"E13: fragment-parallel set operators (workers={WORKERS})")
        print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")
    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        policy = _policy(n)
        a, b = _setops_bats(n)
        fa = fragment_bat(a, policy)
        fb = fragment_bat(b, policy)
        cases = [
            (
                "kunion",
                lambda: kernel.kunion(a, b),
                lambda: fr.kunion(fa, fb, workers=WORKERS),
            ),
            (
                "kintersect",
                lambda: kernel.kintersect(a, b),
                lambda: fr.kintersect(fa, fb, workers=WORKERS),
            ),
            (
                "kdiff",
                lambda: kernel.kdiff(a, b),
                lambda: fr.kdiff(fa, fb, workers=WORKERS),
            ),
        ]
        for name, mono_case, frag_case in cases:
            assert mono_case().to_pairs() == frag_case().to_bat().to_pairs()
            _timed_pair(name, n, "oid", mono_case, frag_case, repeats)
        mono, frag = _setops_pools(n)
        mono_value = mono.run(MIL_SETOPS_PIPELINE).value
        frag_value = frag.run(MIL_SETOPS_PIPELINE).value
        assert mono_value == frag_value, (mono_value, frag_value)
        _timed_pair(
            "kunion+sort (MIL)",
            n,
            "oid",
            lambda: mono.run(MIL_SETOPS_PIPELINE),
            lambda: frag.run(MIL_SETOPS_PIPELINE),
            repeats,
        )


# ----------------------------------------------------------------------
# String (object-dtype) operators: the executor-backend benchmark
#
# These are the operators fragmentation could not speed up before the
# process backend existed: likeselect, str equality select and the
# string membership probes run a Python-level scan that holds the GIL,
# so the thread fan-out serializes.  The section times each one
# monolithic vs fragmented-on-threads vs fragmented-on-processes and
# is the measured basis for the per-dtype backend calibration.
# ----------------------------------------------------------------------


def _str_corpus(n, *, seed=17):
    """A realistic annotation-word column: ~120 distinct words with a
    uniform draw and a few percent NILs -- the text-attribute shape of
    the paper's Section 3 retrieval scenario."""
    rng = np.random.default_rng(seed)
    stems = [
        "alpha", "bridge", "castle", "dolphin", "engine", "forest",
        "garden", "harbor", "island", "jungle", "kernel", "lantern",
        "meadow", "nectar", "orchard", "pyramid", "quartz", "river",
        "summit", "tunnel",
    ]
    suffixes = ["", "s", "ing", "ed", "ly", "ation"]
    vocabulary = [stem + suffix for stem in stems for suffix in suffixes]
    picks = rng.integers(0, len(vocabulary), n)
    values = np.empty(n, dtype=object)
    for position, pick in enumerate(picks.tolist()):
        values[position] = vocabulary[pick]
    if n:
        values[rng.random(n) < 0.02] = None
    return values


def _str_bat(n, *, seed=17):
    return BAT(VoidColumn(0, n), Column("str", _str_corpus(n, seed=seed)))


def _str_headed(n, *, seed=19):
    """[str, int] shape for the membership (string-join) operators."""
    return BAT(
        Column("str", _str_corpus(n, seed=seed)),
        Column("int", np.arange(n, dtype=np.int64)),
    )


def _report_strings(sizes, verbose_header=True):
    """likeselect / str select / string membership under the thread and
    process backends.  ``t/p > 1`` means the process backend won; on a
    single-core host expect <= 1 (the offload overhead cannot be bought
    back without real parallel hardware), which is exactly what the
    per-dtype calibration measures and persists."""
    process_ok = fr.get_backend("process").available()
    if verbose_header:
        print(
            "E14: object-dtype operators, thread vs process backend "
            f"(workers={WORKERS}, process backend "
            f"{'available' if process_ok else 'UNAVAILABLE -- thread fallback'})"
        )
        print(
            f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'thread ms':>11}"
            f"{'process ms':>12}{'t/p':>7}"
        )
    saved_min = fr.PROCESS_MIN_BUNS
    fr.PROCESS_MIN_BUNS = 0
    try:
        for n in sizes:
            repeats = 3
            target = _policy(n).target_size
            thread_policy = FragmentationPolicy(
                target_size=target, backend="thread"
            )
            process_policy = FragmentationPolicy(
                target_size=target, backend="process"
            )
            bat = _str_bat(n)
            fb_thread = fragment_bat(bat, thread_policy)
            fb_process = fragment_bat(bat, process_policy)
            left = _str_headed(n)
            fl_thread = fragment_bat(left, thread_policy)
            fl_process = fragment_bat(left, process_policy)
            right = _str_headed(max(1000, n // 4), seed=23)
            cases = [
                (
                    "likeselect",
                    lambda: kernel.likeselect(bat, "ing"),
                    lambda: fr.likeselect(fb_thread, "ing", workers=WORKERS),
                    lambda: fr.likeselect(fb_process, "ing", workers=WORKERS),
                ),
                (
                    "select(str=)",
                    lambda: kernel.select(bat, "rivers"),
                    lambda: fr.select(fb_thread, "rivers", workers=WORKERS),
                    lambda: fr.select(fb_process, "rivers", workers=WORKERS),
                ),
                (
                    "kintersect(str)",
                    lambda: kernel.kintersect(left, right),
                    lambda: fr.kintersect(fl_thread, right, workers=WORKERS),
                    lambda: fr.kintersect(fl_process, right, workers=WORKERS),
                ),
            ]
            for name, mono_case, thread_case, process_case in cases:
                expected = mono_case().to_pairs()
                assert thread_case().to_bat().to_pairs() == expected
                if process_ok:
                    assert process_case().to_bat().to_pairs() == expected
                mono_stats = _measure(mono_case, repeats)
                _record(name, n, "monolithic", "str", mono_stats)
                thread_stats = _measure(thread_case, repeats)
                _record(name, n, "thread", "str", thread_stats)
                if process_ok:
                    process_stats = _measure(process_case, repeats)
                    _record(name, n, "process", "str", process_stats)
                    process_ms = process_stats["best_ms"]
                    speedup = (
                        thread_stats["best_ms"] / process_ms
                        if process_ms
                        else float("inf")
                    )
                    tail = f"{process_ms:>12.2f}{speedup:>7.2f}"
                else:
                    tail = f"{'n/a':>12}{'':>7}"
                print(
                    f"{n:>12,}  {name:<18}{mono_stats['best_ms']:>10.2f}"
                    f"{thread_stats['best_ms']:>11.2f}{tail}"
                )
    finally:
        fr.PROCESS_MIN_BUNS = saved_min


# ----------------------------------------------------------------------
# Grace join: fragmented-right radix-partitioned builds
# ----------------------------------------------------------------------


def _join_str_sides(n, *, seed=29):
    """[void,str] probe side against a keyed [str,dbl] build side: the
    object keyspace routes the radix split through the executor
    backend, which is what the process-backend offload exists for."""
    rng = np.random.default_rng(seed)
    left = BAT(VoidColumn(0, n), Column("str", _str_corpus(n, seed=seed)))
    vocabulary = [
        word
        for word in dict.fromkeys(_str_corpus(4000, seed=seed + 1).tolist())
        if word is not None
    ]
    right = BAT(
        Column("str", np.array(vocabulary, dtype=object)),
        Column("dbl", np.round(rng.random(len(vocabulary)), 3)),
        hkey=True,
    )
    return left, right


def _report_join(sizes, verbose_header=True):
    """Grace join with a *fragmented* right operand: monolithic vs the
    thread and process backends, plus a spill-forced run (every
    partition staged through BBP spill units) to price the
    larger-than-memory path."""
    process_ok = fr.get_backend("process").available()
    if verbose_header:
        print(
            "E15: grace join, fragmented build side "
            f"(workers={WORKERS}, fanout={fr.JOIN_FANOUT}, process backend "
            f"{'available' if process_ok else 'UNAVAILABLE -- thread fallback'})"
        )
        print(
            f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'thread ms':>11}"
            f"{'process ms':>12}{'t/p':>7}"
        )
    saved_min = fr.PROCESS_MIN_BUNS
    fr.PROCESS_MIN_BUNS = 0
    try:
        for n in sizes:
            repeats = 2 if n >= 10**6 else 3
            target = _policy(n).target_size
            thread_policy = FragmentationPolicy(
                target_size=target, backend="thread"
            )
            process_policy = FragmentationPolicy(
                target_size=target, backend="process"
            )
            left, right = _join_sides(n)
            sleft, sright = _join_str_sides(n)
            cases = [
                ("join(oid)", "oid", left, right),
                ("join(str)", "str", sleft, sright),
            ]
            oid_mono_stats = None
            for name, dtype, probe, build in cases:
                fl_thread = fragment_bat(probe, thread_policy)
                fb_thread = fragment_bat(build, thread_policy)
                fl_process = fragment_bat(probe, process_policy)
                fb_process = fragment_bat(build, process_policy)
                expected = kernel.join(probe, build).to_pairs()
                assert fr.join(fl_thread, fb_thread).to_bat().to_pairs() == expected
                mono_stats = _measure(lambda: kernel.join(probe, build), repeats)
                _record(name, n, "monolithic", dtype, mono_stats)
                thread_stats = _measure(
                    lambda: fr.join(fl_thread, fb_thread, workers=WORKERS), repeats
                )
                _record(name, n, "thread", dtype, thread_stats)
                if name == "join(oid)":
                    oid_mono_stats = mono_stats
                if process_ok:
                    assert (
                        fr.join(fl_process, fb_process).to_bat().to_pairs()
                        == expected
                    )
                    process_stats = _measure(
                        lambda: fr.join(fl_process, fb_process, workers=WORKERS),
                        repeats,
                    )
                    _record(name, n, "process", dtype, process_stats)
                    process_ms = process_stats["best_ms"]
                    speedup = (
                        thread_stats["best_ms"] / process_ms
                        if process_ms
                        else float("inf")
                    )
                    tail = f"{process_ms:>12.2f}{speedup:>7.2f}"
                else:
                    tail = f"{'n/a':>12}{'':>7}"
                print(
                    f"{n:>12,}  {name:<18}{mono_stats['best_ms']:>10.2f}"
                    f"{thread_stats['best_ms']:>11.2f}{tail}"
                )
            # Spill-forced: every build partition round-trips through a
            # BBP spill unit, bounding resident build memory to one
            # partition.  Output must stay BUN-identical.
            saved_spill = fr.JOIN_SPILL_BUNS
            fr.JOIN_SPILL_BUNS = 0
            try:
                fl_thread = fragment_bat(left, thread_policy)
                fb_thread = fragment_bat(right, thread_policy)
                expected = kernel.join(left, right).to_pairs()
                assert fr.join(fl_thread, fb_thread).to_bat().to_pairs() == expected
                spill_stats = _measure(
                    lambda: fr.join(fl_thread, fb_thread, workers=WORKERS), repeats
                )
            finally:
                fr.JOIN_SPILL_BUNS = saved_spill
            _record("join-spill", n, "thread", "oid", spill_stats)
            print(
                f"{n:>12,}  {'join-spill(oid)':<18}"
                f"{oid_mono_stats['best_ms']:>10.2f}"
                f"{spill_stats['best_ms']:>11.2f}{'n/a':>12}{'':>7}"
            )
    finally:
        fr.PROCESS_MIN_BUNS = saved_min


# ----------------------------------------------------------------------
# Append path: delta-tail write throughput and read-during-append
# ----------------------------------------------------------------------

#: Rows per append batch in the E16 write-path section.
APPEND_BATCH = 1_000


def _report_append(sizes, verbose_header=True):
    """E16: the write path.  Batched ``BATBufferPool.append`` throughput
    into monolithic and fragmented registrations (copy-on-write delta
    tails), then read latency over a pinned snapshot while a writer
    thread floods the live catalog with batches -- the paper's
    query-while-loading scenario.  The snapshot read should cost the
    same busy as quiet; both rows land in the JSON artifact so the
    regression gate holds the line on each."""
    import threading

    if verbose_header:
        print(f"E16: append-tail write path (workers={WORKERS})")
        print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")
    for n in sizes:
        repeats = 3
        batches = max(2, n // APPEND_BATCH // 10)  # append ~10% of n
        rng = np.random.default_rng(31)
        payloads = [
            rng.integers(0, 1000, APPEND_BATCH).tolist() for _ in range(batches)
        ]
        policy = _policy(n)
        base = _int_bat(n)
        fragmented = fragment_bat(base, policy)

        def mono_case():
            pool = BATBufferPool()
            pool.register("fact", base)
            for payload in payloads:
                pool.append("fact", tails=payload)

        def frag_case():
            pool = BATBufferPool()
            pool.register_fragmented("fact", fragmented)
            for payload in payloads:
                pool.append("fact", tails=payload)

        _timed_pair(
            f"append({batches}x{APPEND_BATCH})", n, "int", mono_case, frag_case, repeats
        )

        # Read-during-append: a plan pinned before the writer starts
        # selects against its snapshot while appends race it.
        pool = BATBufferPool()
        pool.register_fragmented("fact", fragmented)
        snapshot = pool.read_snapshot()

        def snapshot_select():
            return fr.select(
                snapshot.lookup_fragments("fact"), 100, 200, workers=WORKERS
            )

        quiet_stats = _measure(snapshot_select, repeats)
        stop = threading.Event()

        def writer():
            position = 0
            while not stop.is_set():
                pool.append("fact", tails=payloads[position % len(payloads)])
                position += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            busy_stats = _measure(snapshot_select, repeats)
        finally:
            stop.set()
            thread.join()
        assert len(snapshot.lookup_fragments("fact")) == n  # still pinned
        _record("select-quiet", n, "thread", "int", quiet_stats)
        _record("select-during-append", n, "thread", "int", busy_stats)
        quiet_ms, busy_ms = quiet_stats["best_ms"], busy_stats["best_ms"]
        ratio = busy_ms / quiet_ms if quiet_ms else float("inf")
        print(
            f"{n:>12,}  {'read-during-append':<18}{quiet_ms:>10.2f}"
            f"{busy_ms:>10.2f}{ratio:>8.2f}"
        )

        # Tombstone deletes and tail patches: the same batched shape as
        # the append rows.  Deletes repeatedly tombstone the front rows
        # (cardinality shrinks by ~10% of n overall); updates patch a
        # disjoint window per batch, so both stay valid against the
        # state the previous batches left behind.
        delete_positions = list(range(APPEND_BATCH))
        patch_windows = [
            list(range(b * APPEND_BATCH, (b + 1) * APPEND_BATCH))
            for b in range(batches)
        ]
        patch_values = rng.integers(0, 1000, APPEND_BATCH).tolist()

        def mono_delete():
            pool = BATBufferPool()
            pool.register("fact", base)
            for _ in range(batches):
                pool.delete("fact", delete_positions)

        def frag_delete():
            pool = BATBufferPool()
            pool.register_fragmented("fact", fragmented)
            for _ in range(batches):
                pool.delete("fact", delete_positions)

        _timed_pair(
            f"delete({batches}x{APPEND_BATCH})", n, "int",
            mono_delete, frag_delete, repeats,
        )

        def mono_update():
            pool = BATBufferPool()
            pool.register("fact", base)
            for window in patch_windows:
                pool.update("fact", window, patch_values)

        def frag_update():
            pool = BATBufferPool()
            pool.register_fragmented("fact", fragmented)
            for window in patch_windows:
                pool.update("fact", window, patch_values)

        _timed_pair(
            f"update({batches}x{APPEND_BATCH})", n, "int",
            mono_update, frag_update, repeats,
        )

        _report_group_commit(n)


#: Total append records pushed through the armed WAL per group-commit
#: bench case (divisible by every writer count probed).
WAL_RECORDS = 64


def _report_group_commit(n):
    """Group-commit WAL: the same number of append records pushed by 1
    vs 8 concurrent writers through a WAL-armed pool under a fixed
    group window.  Two rows per writer count land in the JSON artifact:
    wall milliseconds per record, and the ``wal_fsyncs / wal_records``
    counter ratio -- fewer fsyncs than records at 8 writers is the
    group commit observably working, and the regression gate holds the
    line on both."""
    import tempfile
    import threading

    from repro.monet import bbp as bbp_module

    payload = list(range(APPEND_BATCH))
    saved_window = bbp_module.WAL_GROUP_MS
    bbp_module.WAL_GROUP_MS = 4.0
    try:
        for writers in (1, 8):
            with tempfile.TemporaryDirectory() as wal_dir:
                pool = BATBufferPool()
                for i in range(writers):
                    pool.register(f"w{i}", _int_bat(APPEND_BATCH, seed=i))
                pool.save(wal_dir)  # arms the write-ahead log
                per_writer = WAL_RECORDS // writers
                barrier = threading.Barrier(writers)
                errors = []

                def work(i):
                    try:
                        barrier.wait(timeout=30)
                        for _ in range(per_writer):
                            pool.append(f"w{i}", tails=payload)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [
                    threading.Thread(target=work, args=(i,))
                    for i in range(writers)
                ]
                start = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                elapsed_ms = (time.perf_counter() - start) * 1000
                assert not errors, errors[:3]
                assert pool.wal_records == WAL_RECORDS
            per_record_ms = elapsed_ms / pool.wal_records
            fsync_ratio = pool.wal_fsyncs / pool.wal_records
            _record(
                "wal-append-per-record", n, f"{writers}w", "int",
                {"median_ms": per_record_ms, "best_ms": per_record_ms},
            )
            _record(
                "wal-fsync-per-record", n, f"{writers}w", "int",
                {"median_ms": fsync_ratio, "best_ms": fsync_ratio},
            )
            print(
                f"{n:>12,}  {f'wal-append {writers}w':<18}"
                f"{per_record_ms:>10.2f}"
                f"{pool.wal_fsyncs:>7}/{pool.wal_records:<3}"
                f"{fsync_ratio:>7.2f}"
            )
    finally:
        bbp_module.WAL_GROUP_MS = saved_window


# ----------------------------------------------------------------------
# Calibration: measured tuning instead of static constants
# ----------------------------------------------------------------------


def calibrate(verbose=True):
    """Measure operator cost across fragment sizes and the
    serial/parallel crossover, then install the winners as the module
    defaults (:func:`repro.monet.fragments.set_default_tuning`),
    including the per-dtype executor backend (threads for numeric,
    processes for object-dtype predicates above a measured BUN
    threshold -- see :func:`_calibrate_backend`).

    Returns ``(fragment_size, parallel_min, merge_fanout, backend,
    process_min, join_fanout, join_spill)``.
    """
    n = 200_000 if FAST else 2_000_000
    candidates = [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
    if FAST:
        candidates = candidates[:3]
    repeats = 2 if FAST else 3
    ints = _int_bat(n)
    if verbose:
        print(f"calibration: select over {n:,} BUNs (workers={WORKERS})")
        print(f"{'fragment size':>16}{'select ms':>12}")
    best_size, best_ms = candidates[0], float("inf")
    for size in candidates:
        fb = fragment_bat(ints, FragmentationPolicy(target_size=size))
        ms = _timed(lambda: fr.select(fb, 100, 200, workers=WORKERS), repeats)
        if verbose:
            print(f"{size:>16,}{ms:>12.2f}")
        if ms < best_ms:
            best_size, best_ms = size, ms
    # Parallel floor: smallest BAT where fragment fan-out is not slower
    # than the monolithic operator (bounded by [best_size, 8x]).
    parallel_min = 8 * best_size
    for floor in (best_size, 2 * best_size, 4 * best_size):
        small = _int_bat(2 * floor)
        fb = fragment_bat(small, FragmentationPolicy(target_size=floor))
        mono_ms = _timed(lambda: kernel.select(small, 100, 200), repeats)
        frag_ms = _timed(lambda: fr.select(fb, 100, 200, workers=WORKERS), repeats)
        if frag_ms <= mono_ms * 1.05:
            parallel_min = 2 * floor
            break
    fr.set_default_tuning(fragment_size=best_size, parallel_min=parallel_min)
    # Merge fan-out: time the fragmented (sample-sort) sort under a few
    # partition caps and keep the fastest.  MERGE_FANOUT is read live by
    # the merge phase, so installing a candidate is enough to measure it.
    sort_n = min(n, 1_000_000)
    headed = _headed_bat(sort_n, distinct_heads=max(1000, sort_n // 4))
    fheaded = fragment_bat(headed, FragmentationPolicy(target_size=best_size))
    fanouts = list(dict.fromkeys([4, 8, 16, 32, max(16, 4 * WORKERS)]))
    if verbose:
        print(f"calibration: sort over {sort_n:,} BUNs")
        print(f"{'merge fanout':>16}{'sort ms':>12}")
    best_fanout, best_sort_ms = fanouts[0], float("inf")
    for fanout in fanouts:
        fr.set_default_tuning(merge_fanout=fanout)
        ms = _timed(lambda: fr.sort(fheaded, workers=WORKERS), repeats)
        if verbose:
            print(f"{fanout:>16,}{ms:>12.2f}")
        if ms < best_sort_ms:
            best_fanout, best_sort_ms = fanout, ms
    fr.set_default_tuning(merge_fanout=best_fanout)
    # Join radix fan-out: time the grace join (fragmented build side)
    # under a few widths and keep the fastest.  JOIN_FANOUT is read
    # live by the partitioner, so installing a candidate is enough to
    # measure it.  The spill threshold has no in-memory crossover to
    # measure, so the current (env- or persistence-derived) value is
    # what persists.
    join_n = min(n, 1_000_000)
    jleft, jright = _join_sides(join_n)
    join_policy = FragmentationPolicy(target_size=best_size)
    fjleft = fragment_bat(jleft, join_policy)
    fjright = fragment_bat(jright, join_policy)
    join_fanouts = list(dict.fromkeys([1, 4, fr.JOIN_FANOUT]))
    if verbose:
        print(f"calibration: join over {join_n:,} BUNs")
        print(f"{'join fanout':>16}{'join ms':>12}")
    best_join_fanout, best_join_ms = join_fanouts[0], float("inf")
    for fanout in join_fanouts:
        fr.set_default_tuning(join_fanout=fanout)
        ms = _timed(
            lambda: fr.join(fjleft, fjright, workers=WORKERS), repeats
        )
        if verbose:
            print(f"{fanout:>16,}{ms:>12.2f}")
        if ms < best_join_ms:
            best_join_fanout, best_join_ms = fanout, ms
    fr.set_default_tuning(join_fanout=best_join_fanout)
    backend, process_min = _calibrate_backend(repeats, best_size, verbose=verbose)
    fr.set_default_tuning(backend=backend, process_min=process_min)
    if verbose:
        print(
            f"calibrated: fragment_size={best_size:,} "
            f"parallel_min={parallel_min:,} merge_fanout={best_fanout} "
            f"backend={backend} process_min={process_min:,} "
            f"join_fanout={best_join_fanout} "
            f"join_spill={fr.JOIN_SPILL_BUNS:,} "
            "(installed as defaults)"
        )
    return (
        best_size,
        parallel_min,
        best_fanout,
        backend,
        process_min,
        best_join_fanout,
        fr.JOIN_SPILL_BUNS,
    )


def _calibrate_backend(repeats, fragment_size, *, verbose=True):
    """Per-dtype executor backend: time the canonical GIL-bound str
    predicate (likeselect) fragmented on threads vs on processes.

    Numeric operators never leave the thread pool (numpy's kernels
    release the GIL there, and the shared-memory export would be pure
    overhead), so the decision is made on object-dtype work only: if
    processes win at the headline size, the backend switches to
    ``process`` and the smallest measured size where they already win
    becomes the offload threshold ``process_min``; otherwise the
    backend stays ``thread``."""
    if not fr.get_backend("process").available():
        if verbose:
            print("calibration: process backend unavailable; keeping threads")
        return "thread", fr.PROCESS_MIN_BUNS
    n = 100_000 if FAST else 1_000_000
    saved_min = fr.PROCESS_MIN_BUNS
    fr.PROCESS_MIN_BUNS = 0
    try:
        if verbose:
            print(f"calibration: str likeselect over {n:,} BUNs")
            print(f"{'n':>16}{'thread ms':>12}{'process ms':>12}")

        def time_both(size):
            bat = _str_bat(size)
            thread_fb = fragment_bat(
                bat, FragmentationPolicy(target_size=fragment_size, backend="thread")
            )
            process_fb = fragment_bat(
                bat, FragmentationPolicy(target_size=fragment_size, backend="process")
            )
            thread_ms = _timed(
                lambda: fr.likeselect(thread_fb, "ing", workers=WORKERS), repeats
            )
            process_ms = _timed(
                lambda: fr.likeselect(process_fb, "ing", workers=WORKERS), repeats
            )
            if verbose:
                print(f"{size:>16,}{thread_ms:>12.2f}{process_ms:>12.2f}")
            return thread_ms, process_ms

        thread_ms, process_ms = time_both(n)
        if process_ms >= thread_ms:
            return "thread", saved_min
        # Processes win at the headline size: the threshold is the
        # smallest probed size where they already break even.
        process_min = n
        for size in (16 * 1024, 64 * 1024, 256 * 1024):
            if size >= n:
                break
            small_thread_ms, small_process_ms = time_both(size)
            if small_process_ms <= small_thread_ms:
                process_min = size
                break
        return "process", process_min
    finally:
        fr.PROCESS_MIN_BUNS = saved_min


# ----------------------------------------------------------------------
# pytest-benchmark cases
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def ints():
    return _int_bat(N)


@pytest.fixture(scope="module")
def ints_fragmented(ints):
    return fragment_bat(ints, _policy(N))


@pytest.fixture(scope="module")
def join_sides():
    return _join_sides(N)


@pytest.fixture(scope="module")
def left_fragmented(join_sides):
    left, _ = join_sides
    return fragment_bat(left, _policy(N))


@pytest.fixture(scope="module")
def mil_interpreters():
    return _mil_pools(N)


@pytest.fixture(scope="module")
def headed():
    return _headed_bat(N)


@pytest.fixture(scope="module")
def headed_fragmented(headed):
    return fragment_bat(headed, _policy(N))


def test_select_monolithic(benchmark, ints):
    result = benchmark(kernel.select, ints, 100, 200)
    assert len(result) > 0


def test_select_fragmented(benchmark, ints_fragmented):
    result = benchmark(fr.select, ints_fragmented, 100, 200)
    assert len(result) > 0


def test_join_monolithic(benchmark, join_sides):
    left, right = join_sides
    result = benchmark(kernel.join, left, right)
    assert len(result) == N


def test_join_fragmented(benchmark, left_fragmented, join_sides):
    _, right = join_sides
    result = benchmark(fr.join, left_fragmented, right)
    assert len(result) == N


def test_mil_pipeline_monolithic(benchmark, mil_interpreters):
    mono, _ = mil_interpreters
    result = benchmark(mono.run, MIL_PIPELINE)
    assert result.value > 0


def test_mil_pipeline_fragmented(benchmark, mil_interpreters):
    _, frag = mil_interpreters
    result = benchmark(frag.run, MIL_PIPELINE)
    assert result.value > 0


def test_unique_monolithic(benchmark, headed):
    result = benchmark(kernel.unique, headed)
    assert len(result) > 0


def test_unique_fragmented(benchmark, headed_fragmented):
    result = benchmark(fr.unique, headed_fragmented)
    assert len(result) > 0


def test_sort_monolithic(benchmark, headed):
    result = benchmark(kernel.sort, headed)
    assert len(result) == N


def test_sort_fragmented(benchmark, headed_fragmented):
    result = benchmark(fr.sort, headed_fragmented)
    assert len(result) == N


# ----------------------------------------------------------------------
# Standalone report
# ----------------------------------------------------------------------


def _report_mil(sizes, verbose_header=True):
    if verbose_header:
        print(f"E11: fragment-aware MIL pipeline (workers={WORKERS})")
        print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")
    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        mono, frag = _mil_pools(n)
        mono_value = mono.run(MIL_PIPELINE).value
        frag_value = frag.run(MIL_PIPELINE).value
        assert abs(mono_value - frag_value) <= 1e-6 * max(1.0, abs(mono_value))
        _timed_pair(
            "mil-pipeline",
            n,
            "oid",
            lambda: mono.run(MIL_PIPELINE),
            lambda: frag.run(MIL_PIPELINE),
            repeats,
        )


def report():
    calibrate()
    sizes = [10**4, 10**5] if FAST else [10**5, 10**6, 10**7]
    print(f"E11: monolithic vs fragmented execution (workers={WORKERS})")
    print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")

    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        policy = _policy(n)
        ints = _int_bat(n)
        fints = fragment_bat(ints, policy)
        left, right = _join_sides(n)
        fleft = fragment_bat(left, policy)
        cases = [
            (
                "select(=)",
                lambda: kernel.select(ints, 7),
                lambda: fr.select(fints, 7),
            ),
            (
                "select(range)",
                lambda: kernel.select(ints, 100, 200),
                lambda: fr.select(fints, 100, 200),
            ),
            (
                "join",
                lambda: kernel.join(left, right),
                lambda: fr.join(fleft, right),
            ),
        ]
        for name, mono, frag in cases:
            _timed_pair(name, n, "int", mono, frag, repeats)

        # IR scoring: postings scale with documents.
        n_docs = max(100, n // 100)
        index = InvertedIndex(_index(n_docs, 20))
        query = ["term1", "term42", "term123", "term400"]
        _timed_pair(
            "ir-score",
            index.posting_count,
            "int",
            lambda: index.score_sum(query),
            lambda: index.score_sum_parallel(
                query, fragment_size=_policy(index.posting_count).target_size
            ),
            repeats,
        )

    # The fragment-aware MIL interpreter, end to end (>= 1M BUNs in the
    # full run; the FAST smoke keeps CI quick).
    mil_sizes = [10**5] if FAST else [10**6, 10**7]
    _report_mil(mil_sizes)
    _report_sort([10**5] if FAST else [10**6])
    _report_setops([10**5] if FAST else [10**6])
    _report_strings([5 * 10**4] if FAST else [10**6])
    _report_join([5 * 10**4] if FAST else [10**6])
    _report_append([5 * 10**4] if FAST else [10**6])


if __name__ == "__main__":
    json_path = None
    if "--json" in sys.argv:
        index = sys.argv.index("--json")
        if index + 1 >= len(sys.argv) or sys.argv[index + 1].startswith("--"):
            sys.exit("--json needs an output path")
        json_path = sys.argv[index + 1]
    if "--calibrate" in sys.argv:
        calibrate()
    elif "--mil" in sys.argv:
        calibrate(verbose=False)
        _report_mil([10**5] if FAST else [10**6])
    elif "--sort" in sys.argv:
        calibrate(verbose=False)
        _report_sort([10**5] if FAST else [10**6])
    elif "--setops" in sys.argv:
        calibrate(verbose=False)
        _report_setops([10**5] if FAST else [10**6])
    elif "--strings" in sys.argv:
        calibrate(verbose=False)
        _report_strings([5 * 10**4] if FAST else [10**6])
    elif "--join" in sys.argv:
        calibrate(verbose=False)
        _report_join([5 * 10**4] if FAST else [10**6])
    elif "--append" in sys.argv:
        calibrate(verbose=False)
        _report_append([5 * 10**4] if FAST else [10**6])
    else:
        report()
    if json_path:
        write_json(json_path)
