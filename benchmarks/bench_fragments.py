"""E11 -- fragmented vs monolithic kernel execution.

Measures the hot operators of the fragmented BAT subsystem
(:mod:`repro.monet.fragments`) against their monolithic counterparts:
select (equality + range), join (value probe against a shared build
side), and IR posting-list scoring, at 10^5 .. 10^7 BUNs.

Standalone report:  python benchmarks/bench_fragments.py
Fast smoke mode:    BENCH_FAST=1 python benchmarks/bench_fragments.py
"""

import os

import numpy as np
import pytest

from repro.ir.index import InvertedIndex
from repro.monet import fragments as fr
from repro.monet import kernel
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.fragments import FragmentationPolicy, fragment_bat

FAST = bool(os.environ.get("BENCH_FAST"))
N = 100_000 if not FAST else 20_000
WORKERS = max(2, os.cpu_count() or 1)


def _policy(n):
    """One fragment per two worker slots, floored at the default size:
    keeps per-fragment dispatch overhead negligible relative to the
    numpy work while still saturating the shared pool (>= 2 threads)."""
    return FragmentationPolicy(target_size=max(65536, -(-n // (2 * WORKERS))))


def _int_bat(n, *, distinct=1000, seed=0):
    rng = np.random.default_rng(seed)
    return BAT(VoidColumn(0, n), Column("int", rng.integers(0, distinct, n)))


def _join_sides(n, *, seed=2):
    rng = np.random.default_rng(seed)
    left = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, n // 2, n)))
    right = BAT(
        Column("oid", rng.permutation(n // 2).astype(np.int64)),
        Column("dbl", rng.random(n // 2)),
        hkey=True,
    )
    return left, right


def _index(n_docs, postings_per_doc, *, seed=3):
    rng = np.random.default_rng(seed)
    vocabulary = [f"term{i}" for i in range(500)]
    documents = []
    for _ in range(n_docs):
        terms = rng.choice(len(vocabulary), size=postings_per_doc, replace=False)
        documents.append({vocabulary[t]: int(rng.integers(1, 6)) for t in terms})
    return documents


@pytest.fixture(scope="module")
def ints():
    return _int_bat(N)


@pytest.fixture(scope="module")
def ints_fragmented(ints):
    return fragment_bat(ints, _policy(N))


@pytest.fixture(scope="module")
def join_sides():
    return _join_sides(N)


@pytest.fixture(scope="module")
def left_fragmented(join_sides):
    left, _ = join_sides
    return fragment_bat(left, _policy(N))


def test_select_monolithic(benchmark, ints):
    result = benchmark(kernel.select, ints, 100, 200)
    assert len(result) > 0


def test_select_fragmented(benchmark, ints_fragmented):
    result = benchmark(fr.select, ints_fragmented, 100, 200)
    assert len(result) > 0


def test_join_monolithic(benchmark, join_sides):
    left, right = join_sides
    result = benchmark(kernel.join, left, right)
    assert len(result) == N


def test_join_fragmented(benchmark, left_fragmented, join_sides):
    _, right = join_sides
    result = benchmark(fr.join, left_fragmented, right)
    assert len(result) == N


def report():
    import time

    sizes = [10**4, 10**5] if FAST else [10**5, 10**6, 10**7]
    print(f"E11: monolithic vs fragmented execution (workers={WORKERS})")
    print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")

    def timed(fn, repeats):
        fn()  # warm-up (also pays one-time fragmentation/coalesce costs)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1000

    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        policy = _policy(n)
        ints = _int_bat(n)
        fints = fragment_bat(ints, policy)
        left, right = _join_sides(n)
        fleft = fragment_bat(left, policy)
        cases = [
            (
                "select(=)",
                lambda: kernel.select(ints, 7),
                lambda: fr.select(fints, 7),
            ),
            (
                "select(range)",
                lambda: kernel.select(ints, 100, 200),
                lambda: fr.select(fints, 100, 200),
            ),
            (
                "join",
                lambda: kernel.join(left, right),
                lambda: fr.join(fleft, right),
            ),
        ]
        for name, mono, frag in cases:
            mono_ms = timed(mono, repeats)
            frag_ms = timed(frag, repeats)
            ratio = frag_ms / mono_ms if mono_ms else float("inf")
            print(f"{n:>12,}  {name:<18}{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}")

        # IR scoring: postings scale with documents.
        n_docs = max(100, n // 100)
        index = InvertedIndex(_index(n_docs, 20))
        query = ["term1", "term42", "term123", "term400"]
        mono_ms = timed(lambda: index.score_sum(query), repeats)
        frag_ms = timed(
            lambda: index.score_sum_parallel(
                query, fragment_size=_policy(index.posting_count).target_size
            ),
            repeats,
        )
        ratio = frag_ms / mono_ms if mono_ms else float("inf")
        print(
            f"{index.posting_count:>12,}  {'ir-score':<18}"
            f"{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}"
        )


if __name__ == "__main__":
    report()
