"""E11 -- fragmented vs monolithic kernel and MIL execution.

Measures the hot operators of the fragmented BAT subsystem
(:mod:`repro.monet.fragments`) against their monolithic counterparts:
select (equality + range), join (value probe against a shared build
side), IR posting-list scoring, and a whole MIL pipeline
(``select -> join -> sum``) executed fragment-aware by the MIL
interpreter, at 10^5 .. 10^7 BUNs.

A calibration pass measures real operator timings at several fragment
sizes and serial/parallel floors and installs the winners via
:func:`repro.monet.fragments.set_default_tuning`, replacing the static
constants of the seed with cores-plus-measurement-derived values.

Standalone report:  python benchmarks/bench_fragments.py
Fast smoke mode:    BENCH_FAST=1 python benchmarks/bench_fragments.py
MIL pipeline only:  BENCH_FAST=1 python benchmarks/bench_fragments.py --mil
Sort/unique only:   BENCH_FAST=1 python benchmarks/bench_fragments.py --sort
Set operators only: BENCH_FAST=1 python benchmarks/bench_fragments.py --setops
Calibration only:   python benchmarks/bench_fragments.py --calibrate
"""

import os
import sys
import time

import numpy as np
import pytest

from repro.ir.index import InvertedIndex
from repro.monet import fragments as fr
from repro.monet import kernel
from repro.monet.bat import BAT, Column, VoidColumn, bat_from_pairs, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import FragmentationPolicy, fragment_bat
from repro.monet.mil import MILInterpreter

FAST = bool(os.environ.get("BENCH_FAST"))
N = 100_000 if not FAST else 20_000
WORKERS = max(2, os.cpu_count() or 1)


def _policy(n):
    """One fragment per two worker slots, floored at the default size:
    keeps per-fragment dispatch overhead negligible relative to the
    numpy work while still saturating the shared pool (>= 2 threads)."""
    return FragmentationPolicy(
        target_size=max(fr.DEFAULT_FRAGMENT_SIZE, -(-n // (2 * WORKERS)))
    )


def _int_bat(n, *, distinct=1000, seed=0):
    rng = np.random.default_rng(seed)
    return BAT(VoidColumn(0, n), Column("int", rng.integers(0, distinct, n)))


def _join_sides(n, *, seed=2):
    rng = np.random.default_rng(seed)
    left = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, n // 2, n)))
    right = BAT(
        Column("oid", rng.permutation(n // 2).astype(np.int64)),
        Column("dbl", rng.random(n // 2)),
        hkey=True,
    )
    return left, right


def _index(n_docs, postings_per_doc, *, seed=3):
    rng = np.random.default_rng(seed)
    vocabulary = [f"term{i}" for i in range(500)]
    documents = []
    for _ in range(n_docs):
        terms = rng.choice(len(vocabulary), size=postings_per_doc, replace=False)
        documents.append({vocabulary[t]: int(rng.integers(1, 6)) for t in terms})
    return documents


def _timed(fn, repeats):
    fn()  # warm-up (also pays one-time fragmentation/coalesce costs)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000


# ----------------------------------------------------------------------
# MIL pipeline: the fragment-aware interpreter end to end
# ----------------------------------------------------------------------

#: select -> join -> aggregate, the canonical Mirror ranking shape.
MIL_PIPELINE = (
    's := bat("fact").select(oid(50), oid(800));'
    ' j := s.join(bat("dim"));'
    ' sum(j);'
)


def _mil_pools(n, *, seed=5):
    """(monolithic pool+interpreter, fragmented pool+interpreter) over
    one fact BAT of *n* oid keys and a 1000-row dimension."""
    rng = np.random.default_rng(seed)
    fact = BAT(VoidColumn(0, n), Column("oid", rng.integers(0, 1000, n)))
    dim = bat_from_pairs(
        "oid", "dbl", [(i, float(i) * 0.5) for i in rng.permutation(1000)]
    )
    policy = _policy(n)
    mono_pool = BATBufferPool()
    mono_pool.register("fact", fact)
    mono_pool.register("dim", dim)
    frag_pool = BATBufferPool()
    frag_pool.register_fragmented("fact", fragment_bat(fact, policy))
    frag_pool.register_fragmented("dim", fragment_bat(dim, policy))
    return (
        MILInterpreter(mono_pool),
        MILInterpreter(frag_pool, fragment_policy=policy),
    )


# ----------------------------------------------------------------------
# Sort/unique pipeline: the fragment-parallel order-sensitive operators
# ----------------------------------------------------------------------

#: distinct + order-by over a duplicate-heavy fact BAT: per-fragment
#: dedup collapses the data before the cross-fragment merge ever sees
#: it, then the (small) survivor set sorts.  This is the canonical
#: shape the merge-based sort/unique operators exist for.
MIL_SORT_PIPELINE = (
    'u := bat("fact").unique;'
    ' s := u.sort;'
    ' count(s);'
)


def _headed_bat(n, *, distinct_heads=500, distinct_tails=40, seed=7):
    """A duplicate-heavy [oid, int] BAT with a materialized head (the
    shape ``sort``/``unique`` actually operate on; void heads are
    trivially sorted and key)."""
    rng = np.random.default_rng(seed)
    return BAT(
        Column("oid", rng.integers(0, distinct_heads, n).astype(np.int64)),
        Column("int", rng.integers(0, distinct_tails, n)),
    )


def _sort_pools(n, *, seed=7):
    """(monolithic, fragmented) interpreters over one duplicate-heavy
    fact BAT of *n* BUNs."""
    fact = _headed_bat(n, seed=seed)
    policy = _policy(n)
    mono_pool = BATBufferPool()
    mono_pool.register("fact", fact)
    frag_pool = BATBufferPool()
    frag_pool.register_fragmented("fact", fragment_bat(fact, policy))
    return (
        MILInterpreter(mono_pool),
        MILInterpreter(frag_pool, fragment_policy=policy),
    )


def _report_sort(sizes, verbose_header=True):
    if verbose_header:
        print(f"E12: fragment-parallel sort/unique (workers={WORKERS})")
        print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")
    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        policy = _policy(n)
        headed = _headed_bat(n)
        fheaded = fragment_bat(headed, policy)
        cases = [
            (
                "unique",
                lambda: kernel.unique(headed),
                lambda: fr.unique(fheaded, workers=WORKERS),
            ),
            (
                "sort",
                lambda: kernel.sort(headed),
                lambda: fr.sort(fheaded, workers=WORKERS),
            ),
        ]
        for name, mono_case, frag_case in cases:
            assert mono_case().to_pairs() == frag_case().to_bat().to_pairs()
            mono_ms = _timed(mono_case, repeats)
            frag_ms = _timed(frag_case, repeats)
            ratio = frag_ms / mono_ms if mono_ms else float("inf")
            print(
                f"{n:>12,}  {name:<18}{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}"
            )
        mono, frag = _sort_pools(n)
        mono_value = mono.run(MIL_SORT_PIPELINE).value
        frag_value = frag.run(MIL_SORT_PIPELINE).value
        assert mono_value == frag_value, (mono_value, frag_value)
        mono_ms = _timed(lambda: mono.run(MIL_SORT_PIPELINE), repeats)
        frag_ms = _timed(lambda: frag.run(MIL_SORT_PIPELINE), repeats)
        ratio = frag_ms / mono_ms if mono_ms else float("inf")
        print(
            f"{n:>12,}  {'unique+sort (MIL)':<18}"
            f"{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}"
        )


# ----------------------------------------------------------------------
# Set-operator pipeline: fragment-parallel kunion/kintersect
# ----------------------------------------------------------------------

#: union + distinct + order-by over two half-overlapping fact BATs: the
#: left-head membership build filters the right side fragment-parallel,
#: then kunique + sample-sort run on the union without ever coalescing.
MIL_SETOPS_PIPELINE = (
    'u := kunion(bat("facta"), bat("factb"));'
    ' s := u.kunique.sort;'
    ' count(s);'
)


def _setops_bats(n, *, seed=11):
    """Two [oid, int] fact BATs of *n* BUNs whose head domains overlap
    by about half -- the union genuinely grows and the intersection is
    genuinely selective."""
    rng = np.random.default_rng(seed)
    a = BAT(
        Column("oid", rng.integers(0, n, n).astype(np.int64)),
        Column("int", rng.integers(0, 50, n)),
    )
    b = BAT(
        Column("oid", rng.integers(n // 2, n + n // 2, n).astype(np.int64)),
        Column("int", rng.integers(0, 50, n)),
    )
    return a, b


def _setops_pools(n, *, seed=11):
    """(monolithic, fragmented) interpreters over the two fact BATs."""
    a, b = _setops_bats(n, seed=seed)
    policy = _policy(n)
    mono_pool = BATBufferPool()
    mono_pool.register("facta", a)
    mono_pool.register("factb", b)
    frag_pool = BATBufferPool()
    frag_pool.register_fragmented("facta", fragment_bat(a, policy))
    frag_pool.register_fragmented("factb", fragment_bat(b, policy))
    return (
        MILInterpreter(mono_pool),
        MILInterpreter(frag_pool, fragment_policy=policy),
    )


def _report_setops(sizes, verbose_header=True):
    if verbose_header:
        print(f"E13: fragment-parallel set operators (workers={WORKERS})")
        print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")
    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        policy = _policy(n)
        a, b = _setops_bats(n)
        fa = fragment_bat(a, policy)
        fb = fragment_bat(b, policy)
        cases = [
            (
                "kunion",
                lambda: kernel.kunion(a, b),
                lambda: fr.kunion(fa, fb, workers=WORKERS),
            ),
            (
                "kintersect",
                lambda: kernel.kintersect(a, b),
                lambda: fr.kintersect(fa, fb, workers=WORKERS),
            ),
            (
                "kdiff",
                lambda: kernel.kdiff(a, b),
                lambda: fr.kdiff(fa, fb, workers=WORKERS),
            ),
        ]
        for name, mono_case, frag_case in cases:
            assert mono_case().to_pairs() == frag_case().to_bat().to_pairs()
            mono_ms = _timed(mono_case, repeats)
            frag_ms = _timed(frag_case, repeats)
            ratio = frag_ms / mono_ms if mono_ms else float("inf")
            print(
                f"{n:>12,}  {name:<18}{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}"
            )
        mono, frag = _setops_pools(n)
        mono_value = mono.run(MIL_SETOPS_PIPELINE).value
        frag_value = frag.run(MIL_SETOPS_PIPELINE).value
        assert mono_value == frag_value, (mono_value, frag_value)
        mono_ms = _timed(lambda: mono.run(MIL_SETOPS_PIPELINE), repeats)
        frag_ms = _timed(lambda: frag.run(MIL_SETOPS_PIPELINE), repeats)
        ratio = frag_ms / mono_ms if mono_ms else float("inf")
        print(
            f"{n:>12,}  {'kunion+sort (MIL)':<18}"
            f"{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}"
        )


# ----------------------------------------------------------------------
# Calibration: measured tuning instead of static constants
# ----------------------------------------------------------------------


def calibrate(verbose=True):
    """Measure operator cost across fragment sizes and the
    serial/parallel crossover, then install the winners as the module
    defaults (:func:`repro.monet.fragments.set_default_tuning`).

    Returns ``(fragment_size, parallel_min, merge_fanout)``."""
    n = 200_000 if FAST else 2_000_000
    candidates = [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
    if FAST:
        candidates = candidates[:3]
    repeats = 2 if FAST else 3
    ints = _int_bat(n)
    if verbose:
        print(f"calibration: select over {n:,} BUNs (workers={WORKERS})")
        print(f"{'fragment size':>16}{'select ms':>12}")
    best_size, best_ms = candidates[0], float("inf")
    for size in candidates:
        fb = fragment_bat(ints, FragmentationPolicy(target_size=size))
        ms = _timed(lambda: fr.select(fb, 100, 200, workers=WORKERS), repeats)
        if verbose:
            print(f"{size:>16,}{ms:>12.2f}")
        if ms < best_ms:
            best_size, best_ms = size, ms
    # Parallel floor: smallest BAT where fragment fan-out is not slower
    # than the monolithic operator (bounded by [best_size, 8x]).
    parallel_min = 8 * best_size
    for floor in (best_size, 2 * best_size, 4 * best_size):
        small = _int_bat(2 * floor)
        fb = fragment_bat(small, FragmentationPolicy(target_size=floor))
        mono_ms = _timed(lambda: kernel.select(small, 100, 200), repeats)
        frag_ms = _timed(lambda: fr.select(fb, 100, 200, workers=WORKERS), repeats)
        if frag_ms <= mono_ms * 1.05:
            parallel_min = 2 * floor
            break
    fr.set_default_tuning(fragment_size=best_size, parallel_min=parallel_min)
    # Merge fan-out: time the fragmented (sample-sort) sort under a few
    # partition caps and keep the fastest.  MERGE_FANOUT is read live by
    # the merge phase, so installing a candidate is enough to measure it.
    sort_n = min(n, 1_000_000)
    headed = _headed_bat(sort_n, distinct_heads=max(1000, sort_n // 4))
    fheaded = fragment_bat(headed, FragmentationPolicy(target_size=best_size))
    fanouts = list(dict.fromkeys([4, 8, 16, 32, max(16, 4 * WORKERS)]))
    if verbose:
        print(f"calibration: sort over {sort_n:,} BUNs")
        print(f"{'merge fanout':>16}{'sort ms':>12}")
    best_fanout, best_sort_ms = fanouts[0], float("inf")
    for fanout in fanouts:
        fr.set_default_tuning(merge_fanout=fanout)
        ms = _timed(lambda: fr.sort(fheaded, workers=WORKERS), repeats)
        if verbose:
            print(f"{fanout:>16,}{ms:>12.2f}")
        if ms < best_sort_ms:
            best_fanout, best_sort_ms = fanout, ms
    fr.set_default_tuning(merge_fanout=best_fanout)
    if verbose:
        print(
            f"calibrated: fragment_size={best_size:,} "
            f"parallel_min={parallel_min:,} merge_fanout={best_fanout} "
            "(installed as defaults)"
        )
    return best_size, parallel_min, best_fanout


# ----------------------------------------------------------------------
# pytest-benchmark cases
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def ints():
    return _int_bat(N)


@pytest.fixture(scope="module")
def ints_fragmented(ints):
    return fragment_bat(ints, _policy(N))


@pytest.fixture(scope="module")
def join_sides():
    return _join_sides(N)


@pytest.fixture(scope="module")
def left_fragmented(join_sides):
    left, _ = join_sides
    return fragment_bat(left, _policy(N))


@pytest.fixture(scope="module")
def mil_interpreters():
    return _mil_pools(N)


@pytest.fixture(scope="module")
def headed():
    return _headed_bat(N)


@pytest.fixture(scope="module")
def headed_fragmented(headed):
    return fragment_bat(headed, _policy(N))


def test_select_monolithic(benchmark, ints):
    result = benchmark(kernel.select, ints, 100, 200)
    assert len(result) > 0


def test_select_fragmented(benchmark, ints_fragmented):
    result = benchmark(fr.select, ints_fragmented, 100, 200)
    assert len(result) > 0


def test_join_monolithic(benchmark, join_sides):
    left, right = join_sides
    result = benchmark(kernel.join, left, right)
    assert len(result) == N


def test_join_fragmented(benchmark, left_fragmented, join_sides):
    _, right = join_sides
    result = benchmark(fr.join, left_fragmented, right)
    assert len(result) == N


def test_mil_pipeline_monolithic(benchmark, mil_interpreters):
    mono, _ = mil_interpreters
    result = benchmark(mono.run, MIL_PIPELINE)
    assert result.value > 0


def test_mil_pipeline_fragmented(benchmark, mil_interpreters):
    _, frag = mil_interpreters
    result = benchmark(frag.run, MIL_PIPELINE)
    assert result.value > 0


def test_unique_monolithic(benchmark, headed):
    result = benchmark(kernel.unique, headed)
    assert len(result) > 0


def test_unique_fragmented(benchmark, headed_fragmented):
    result = benchmark(fr.unique, headed_fragmented)
    assert len(result) > 0


def test_sort_monolithic(benchmark, headed):
    result = benchmark(kernel.sort, headed)
    assert len(result) == N


def test_sort_fragmented(benchmark, headed_fragmented):
    result = benchmark(fr.sort, headed_fragmented)
    assert len(result) == N


# ----------------------------------------------------------------------
# Standalone report
# ----------------------------------------------------------------------


def _report_mil(sizes, verbose_header=True):
    if verbose_header:
        print(f"E11: fragment-aware MIL pipeline (workers={WORKERS})")
        print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")
    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        mono, frag = _mil_pools(n)
        mono_ms = _timed(lambda: mono.run(MIL_PIPELINE), repeats)
        frag_ms = _timed(lambda: frag.run(MIL_PIPELINE), repeats)
        mono_value = mono.run(MIL_PIPELINE).value
        frag_value = frag.run(MIL_PIPELINE).value
        assert abs(mono_value - frag_value) <= 1e-6 * max(1.0, abs(mono_value))
        ratio = frag_ms / mono_ms if mono_ms else float("inf")
        print(
            f"{n:>12,}  {'mil-pipeline':<18}{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}"
        )


def report():
    calibrate()
    sizes = [10**4, 10**5] if FAST else [10**5, 10**6, 10**7]
    print(f"E11: monolithic vs fragmented execution (workers={WORKERS})")
    print(f"{'n':>12}  {'operator':<18}{'mono ms':>10}{'frag ms':>10}{'ratio':>8}")

    for n in sizes:
        repeats = 2 if n >= 10**7 else 5
        policy = _policy(n)
        ints = _int_bat(n)
        fints = fragment_bat(ints, policy)
        left, right = _join_sides(n)
        fleft = fragment_bat(left, policy)
        cases = [
            (
                "select(=)",
                lambda: kernel.select(ints, 7),
                lambda: fr.select(fints, 7),
            ),
            (
                "select(range)",
                lambda: kernel.select(ints, 100, 200),
                lambda: fr.select(fints, 100, 200),
            ),
            (
                "join",
                lambda: kernel.join(left, right),
                lambda: fr.join(fleft, right),
            ),
        ]
        for name, mono, frag in cases:
            mono_ms = _timed(mono, repeats)
            frag_ms = _timed(frag, repeats)
            ratio = frag_ms / mono_ms if mono_ms else float("inf")
            print(f"{n:>12,}  {name:<18}{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}")

        # IR scoring: postings scale with documents.
        n_docs = max(100, n // 100)
        index = InvertedIndex(_index(n_docs, 20))
        query = ["term1", "term42", "term123", "term400"]
        mono_ms = _timed(lambda: index.score_sum(query), repeats)
        frag_ms = _timed(
            lambda: index.score_sum_parallel(
                query, fragment_size=_policy(index.posting_count).target_size
            ),
            repeats,
        )
        ratio = frag_ms / mono_ms if mono_ms else float("inf")
        print(
            f"{index.posting_count:>12,}  {'ir-score':<18}"
            f"{mono_ms:>10.2f}{frag_ms:>10.2f}{ratio:>8.2f}"
        )

    # The fragment-aware MIL interpreter, end to end (>= 1M BUNs in the
    # full run; the FAST smoke keeps CI quick).
    mil_sizes = [10**5] if FAST else [10**6, 10**7]
    _report_mil(mil_sizes)
    _report_sort([10**5] if FAST else [10**6])
    _report_setops([10**5] if FAST else [10**6])


if __name__ == "__main__":
    if "--calibrate" in sys.argv:
        calibrate()
    elif "--mil" in sys.argv:
        calibrate(verbose=False)
        _report_mil([10**5] if FAST else [10**6])
    elif "--sort" in sys.argv:
        calibrate(verbose=False)
        _report_sort([10**5] if FAST else [10**6])
    elif "--setops" in sys.argv:
        calibrate(verbose=False)
        _report_setops([10**5] if FAST else [10**6])
    else:
        report()
