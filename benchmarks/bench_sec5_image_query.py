"""E3 -- The section 5.2 content ranking query (visual words).

``map[sum(THIS)](map[getBL(THIS.image, query, stats)](Internal))``
over CONTREP<Image> representations of synthetic visual words, with
cluster-vocabulary size as the second axis (more clusters = rarer
words = fewer matched postings).

Expected shape: query cost drops as the vocabulary grows (selectivity
effect), identical engine path to the text query -- the point of the
design is that image retrieval *is* text retrieval over cluster words.

Standalone report:  python benchmarks/bench_sec5_image_query.py
"""

import pytest

from repro.workloads import SECTION5_QUERY, best_of, build_internal_db

N = 3000


def _query_for(clusters):
    return [f"rgb_{i % clusters}" for i in range(4)] + [
        f"gabor_{i % clusters}" for i in range(2)
    ]


@pytest.fixture(scope="module")
def workload():
    db, stats, _ = build_internal_db(N, clusters=40)
    return db, stats


def test_content_ranking(benchmark, workload):
    db, stats = workload
    params = {"query": _query_for(40), "stats": stats}
    result = benchmark(db.query, SECTION5_QUERY, params)
    assert len(result.value) == N


def test_content_ranking_with_projection(benchmark, workload):
    db, stats = workload
    query = (
        "map[tuple(source = THIS.source, "
        "score = sum(getBL(THIS.image, query, stats)))](ImageLibraryInternal);"
    )
    params = {"query": _query_for(40), "stats": stats}
    result = benchmark(db.query, query, params)
    assert len(result.value) == N


def test_dual_code_combination(benchmark, workload):
    """Both CONTREPs in one query: annotation + image evidence."""
    db, stats = workload
    text_stats = db.stats("ImageLibraryInternal", "annotation")
    query = (
        "map[tuple(source = THIS.source, "
        "t = sum(getBL(THIS.annotation, tq, tstats)), "
        "v = sum(getBL(THIS.image, vq, vstats)))](ImageLibraryInternal);"
    )
    params = {
        "tq": ["sunset", "sea"],
        "tstats": text_stats,
        "vq": _query_for(40),
        "vstats": stats,
    }
    result = benchmark(db.query, query, params)
    assert len(result.value) == N


def report():
    print(f"E3: section 5.2 content ranking at N={N}")
    print(f"{'clusters':>10}{'postings hit':>14}{'query ms':>10}")
    for clusters in (10, 40, 160):
        db, stats, rows = build_internal_db(N, clusters=clusters)
        params = {"query": _query_for(clusters), "stats": stats}
        hits = sum(
            1
            for row in rows
            for token in set(row["image"])
            if token in set(params["query"])
        )
        elapsed = best_of(lambda: db.query(SECTION5_QUERY, params))
        print(f"{clusters:>10}{hits:>14}{elapsed * 1000:>10.1f}")


if __name__ == "__main__":
    report()
