"""E7 -- Integrated IR + data retrieval vs a two-system handoff.

"...the resulting system is an efficient integration of information
and data retrieval" (section 3).  The integrated path runs ONE
prepared Moa query combining selection, ranking and projection inside
the DBMS; the baseline simulates the classic two-system architecture:
a standalone IR engine ranks *everything*, ships the full ranked list
across the system boundary (marshalled, as any out-of-process
IR-engine/DBMS coupling must), and the application filters and joins
afterwards.

Expected shape: the integrated query's cost falls with predicate
selectivity (the DBMS prunes before ranking and never ships unfiltered
results); the two-system baseline pays full ranking + full transfer
regardless of how selective the structured predicate is.

Standalone report:  python benchmarks/bench_integration.py
"""

import pickle

import pytest

from repro.core.mirror import MirrorDBMS
from repro.ir.index import InvertedIndex
from repro.moa.structures.contrep import ContentRepresentation
from repro.workloads import best_of, synth_annotations

N = 4000
QUERY_TERMS = ["sunset", "sea"]

DDL = """
define Lib as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation,
    Atomic<int>: year
  >>;
"""

INTEGRATED = (
    "map[tuple(source = THIS.source, "
    "score = sum(getBL(THIS.annotation, query, stats)))]("
    "select[THIS.year >= {year}](Lib));"
)


def _build():
    db = MirrorDBMS()
    db.define(DDL)
    base = synth_annotations(N)
    rows = [
        {**row, "year": 1990 + (index % 10)} for index, row in enumerate(base)
    ]
    db.replace("Lib", rows)
    stats = db.stats("Lib", "annotation")
    # The standalone IR engine of the two-system baseline.
    reps = [
        ContentRepresentation.from_value(r["annotation"], "Text") for r in rows
    ]
    ir_engine = InvertedIndex([r.terms for r in reps])
    return db, stats, rows, ir_engine


def _two_system(rows, ir_engine, year):
    """Classic architecture: the IR engine ranks the whole collection,
    the complete ranked list crosses the process boundary (marshalled),
    and the application filters/joins the structured predicate."""
    scores = ir_engine.score_sum(QUERY_TERMS)
    ranked = [
        (rows[i]["source"], float(scores[i])) for i in range(len(rows))
    ]
    # The inter-system wire: the full result set is serialized out of
    # the IR engine and back into the application, unconditionally.
    ranked = pickle.loads(pickle.dumps(ranked))
    return [
        {"source": source, "score": score}
        for (source, score), row in zip(ranked, rows)
        if row["year"] >= year
    ]


@pytest.fixture(scope="module")
def workload():
    return _build()


def test_integrated_selective(benchmark, workload):
    db, stats, _, _ = workload
    params = {"query": QUERY_TERMS, "stats": stats}
    query = INTEGRATED.format(year=1998)  # keeps 2 of 10 years
    result = benchmark(db.query, query, params)
    assert 0 < len(result.value) < N


def test_integrated_unselective(benchmark, workload):
    db, stats, _, _ = workload
    params = {"query": QUERY_TERMS, "stats": stats}
    query = INTEGRATED.format(year=1990)  # keeps everything
    result = benchmark(db.query, query, params)
    assert len(result.value) == N


def test_two_system_baseline(benchmark, workload):
    _, _, rows, ir_engine = workload
    result = benchmark(_two_system, rows, ir_engine, 1998)
    assert 0 < len(result) < N


def test_results_agree(workload):
    db, stats, rows, ir_engine = workload
    params = {"query": QUERY_TERMS, "stats": stats}
    integrated = db.query(INTEGRATED.format(year=1998), params).value
    baseline = _two_system(rows, ir_engine, 1998)
    assert len(integrated) == len(baseline)
    for a, b in zip(integrated, baseline):
        assert a["source"] == b["source"]
        assert abs(a["score"] - b["score"]) < 1e-9


def report():
    db, stats, rows, ir_engine = _build()
    params = {"query": QUERY_TERMS, "stats": stats}
    print(f"E7: integrated query vs two-system handoff (N={N})")
    print(f"{'selectivity':>12}{'integrated ms':>15}{'two-system ms':>15}")
    for year, label in ((1990, "100%"), (1995, "50%"), (1998, "20%"), (1999, "10%")):
        # Prepared-query path: the amortized cost of the integrated
        # architecture (compile once, run per request).
        compiled = db.executor.prepare(INTEGRATED.format(year=year), params)
        integrated = best_of(lambda: db.executor.run_compiled(compiled, params))
        baseline = best_of(lambda: _two_system(rows, ir_engine, year))
        print(f"{label:>12}{integrated * 1000:>15.1f}{baseline * 1000:>15.1f}")


if __name__ == "__main__":
    report()
