"""E10 -- BAT kernel microbenchmarks (substrate sanity).

The Mirror architecture's performance case rests on the BAT kernel
doing whole-column work; this bench pins the per-operator costs that
every other experiment builds on.

Standalone report:  python benchmarks/bench_kernel.py
Fast smoke mode:    BENCH_FAST=1 python benchmarks/bench_kernel.py
"""

import os

import numpy as np
import pytest

from repro.monet import kernel
from repro.monet.aggregates import grouped_sum
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.groups import group
from repro.monet.multiplex import multiplex

N = 20_000 if os.environ.get("BENCH_FAST") else 100_000


def _int_bat(n, *, distinct=1000, seed=0):
    rng = np.random.default_rng(seed)
    return BAT(VoidColumn(0, n), Column("int", rng.integers(0, distinct, n)))


def _dbl_bat(n, *, seed=1):
    rng = np.random.default_rng(seed)
    return BAT(VoidColumn(0, n), Column("dbl", rng.random(n)))


@pytest.fixture(scope="module")
def ints():
    return _int_bat(N)


@pytest.fixture(scope="module")
def dbls():
    return _dbl_bat(N)


@pytest.fixture(scope="module")
def join_sides():
    rng = np.random.default_rng(2)
    left = BAT(VoidColumn(0, N), Column("oid", rng.integers(0, N // 2, N)))
    right = BAT(
        Column("oid", np.arange(N // 2, dtype=np.int64)),
        Column("dbl", rng.random(N // 2)),
        hkey=True,
        hsorted=True,
    )
    return left, right


def test_select_equality(benchmark, ints):
    result = benchmark(kernel.select, ints, 7)
    assert len(result) > 0


def test_select_range(benchmark, ints):
    result = benchmark(kernel.select, ints, 100, 200)
    assert len(result) > 0


def test_join_value(benchmark, join_sides):
    left, right = join_sides
    result = benchmark(kernel.join, left, right)
    assert len(result) == N


def test_fetchjoin_positional(benchmark, join_sides):
    left, _ = join_sides
    dense = BAT(VoidColumn(0, N // 2), Column("dbl", np.random.default_rng(3).random(N // 2)))
    result = benchmark(kernel.fetchjoin, left, dense)
    assert len(result) == N


def test_semijoin(benchmark, ints):
    other = BAT(VoidColumn(0, N // 4), Column("int", np.zeros(N // 4, dtype=np.int64)))
    result = benchmark(kernel.semijoin, ints, other)
    assert len(result) == N // 4


def test_group(benchmark, ints):
    result = benchmark(group, ints)
    assert len(result) == N


def test_grouped_sum(benchmark, ints, dbls):
    grouping = group(ints)
    result = benchmark(grouped_sum, dbls, grouping)
    assert len(result) == 1000


def test_multiplex_arith(benchmark, dbls):
    result = benchmark(multiplex, "+", dbls, dbls)
    assert len(result) == N


def test_sort(benchmark, ints):
    shuffled = ints.reverse()
    result = benchmark(kernel.sort, shuffled)
    assert len(result) == N


def test_topn(benchmark, dbls):
    result = benchmark(kernel.topn, dbls, 10)
    assert len(result) == 10


def report():
    import time

    print(f"E10: BAT kernel operator costs at n={N:,}")
    print(f"{'operator':<22}{'ms':>10}")
    ints = _int_bat(N)
    dbls = _dbl_bat(N)
    grouping = group(ints)
    cases = [
        ("select(=)", lambda: kernel.select(ints, 7)),
        ("select(range)", lambda: kernel.select(ints, 100, 200)),
        ("group", lambda: group(ints)),
        ("{sum}", lambda: grouped_sum(dbls, grouping)),
        ("[+]", lambda: multiplex("+", dbls, dbls)),
        ("sort", lambda: kernel.sort(ints.reverse())),
        ("topn(10)", lambda: kernel.topn(dbls, 10)),
    ]
    for name, fn in cases:
        start = time.perf_counter()
        for _ in range(5):
            fn()
        elapsed = (time.perf_counter() - start) / 5
        print(f"{name:<22}{elapsed * 1000:>10.2f}")


if __name__ == "__main__":
    report()
