"""E5 -- Algebraic optimization pays off (section 2 claim).

"...provides an excellent basis for algebraic query optimization."
Optimized = AST rewrites (map fusion, select pushdown, folding) +
lazy column loading + MIL-level CSE.  Unoptimized = none of those
(eager column materialization, no rewrites, no CSE).

Expected shape: the optimized configuration wins on every query in the
battery; dead-column elimination dominates on wide tuples, CSE on
queries with repeated getBL subexpressions.

Standalone report:  python benchmarks/bench_optimizer.py
"""

import pytest

from repro.core.mirror import MirrorDBMS

from repro.workloads import synth_annotations

N = 3000

WIDE_DDL = """
define Wide as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation,
    Atomic<int>: a, Atomic<int>: b, Atomic<int>: c,
    Atomic<int>: d, Atomic<int>: e, Atomic<int>: f
  >>;
"""

#: (name, query) battery; `query`/`stats` params bound where needed.
BATTERY = [
    (
        "narrow-projection",
        "map[THIS.a](select[THIS.b > 500](Wide));",
    ),
    (
        "fused-maps",
        "map[THIS + 1](map[THIS * 2](map[THIS.a](Wide)));",
    ),
    (
        "repeated-getbl",
        "map[tuple(s1 = sum(getBL(THIS.annotation, query, stats)), "
        "s2 = sum(getBL(THIS.annotation, query, stats)))](Wide);",
    ),
    (
        "pushdown",
        "select[THIS.k > 500](map[tuple(k = THIS.a, s = THIS.source)](Wide));",
    ),
]


def _build():
    db = MirrorDBMS()
    db.define(WIDE_DDL)
    base = synth_annotations(N)
    rows = []
    for index, row in enumerate(base):
        rows.append(
            {
                "source": row["source"],
                "annotation": row["annotation"],
                "a": index % 1000,
                "b": (index * 7) % 1000,
                "c": index,
                "d": index,
                "e": index,
                "f": index,
            }
        )
    db.replace("Wide", rows)
    stats = db.stats("Wide", "annotation")
    params = {"query": ["sunset", "sea"], "stats": stats}
    return db, params


@pytest.fixture(scope="module")
def workload():
    return _build()


@pytest.mark.parametrize("name,query", BATTERY, ids=[n for n, _ in BATTERY])
def test_optimized(benchmark, workload, name, query):
    db, params = workload
    benchmark(db.query, query, params)


@pytest.mark.parametrize("name,query", BATTERY, ids=[n for n, _ in BATTERY])
def test_unoptimized(benchmark, workload, name, query):
    db, params = workload
    benchmark(
        db.query, query, params,
        optimize=False, eager_columns=True, cse=False,
    )


def test_optimizer_shrinks_plans(workload):
    db, params = workload
    for name, query in BATTERY:
        optimized = db.executor.prepare(query, params)
        unoptimized = db.executor.prepare(
            query, params, optimize=False, eager_columns=True, cse=False
        )
        assert optimized.statements <= unoptimized.statements, name


def report():
    from repro.workloads import best_of

    db, params = _build()
    print(f"E5: optimized vs unoptimized plans (N={N})")
    print(f"{'query':<18}{'opt ms':>10}{'unopt ms':>10}{'speedup':>9}"
          f"{'opt stmts':>11}{'unopt stmts':>12}")
    for name, query in BATTERY:
        optimized = best_of(lambda: db.query(query, params))
        unoptimized = best_of(
            lambda: db.query(
                query, params, optimize=False, eager_columns=True, cse=False
            )
        )
        o = db.executor.prepare(query, params)
        u = db.executor.prepare(
            query, params, optimize=False, eager_columns=True, cse=False
        )
        print(
            f"{name:<18}{optimized * 1000:>10.1f}{unoptimized * 1000:>10.1f}"
            f"{unoptimized / optimized:>8.1f}x{o.statements:>11}{u.statements:>12}"
        )


if __name__ == "__main__":
    report()
