"""E2 -- The section 3 ranking query (text retrieval in the DBMS).

``map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib))``
as published, measured end-to-end plus split into prepare (parse/
typecheck/optimize/compile) and run (MIL execution + reconstruction),
with the query length as a second axis.

Expected shape: run time scales with the number of matched postings
(so with query length), prepare is a small constant.

Standalone report:  python benchmarks/bench_sec3_text_query.py
"""

import pytest

from repro.workloads import SECTION3_QUERY, best_of, build_text_db

N = 5000
SHORT_QUERY = ["sunset"]
MEDIUM_QUERY = ["sunset", "sea", "mountain"]
LONG_QUERY = ["sunset", "sea", "mountain", "forest", "city", "desert",
              "ocean", "river"]


@pytest.fixture(scope="module")
def workload():
    db, stats, _ = build_text_db(N)
    return db, stats


def test_end_to_end_short(benchmark, workload):
    db, stats = workload
    params = {"query": SHORT_QUERY, "stats": stats}
    result = benchmark(db.query, SECTION3_QUERY, params)
    assert len(result.value) == N


def test_end_to_end_medium(benchmark, workload):
    db, stats = workload
    params = {"query": MEDIUM_QUERY, "stats": stats}
    result = benchmark(db.query, SECTION3_QUERY, params)
    assert len(result.value) == N


def test_end_to_end_long(benchmark, workload):
    db, stats = workload
    params = {"query": LONG_QUERY, "stats": stats}
    result = benchmark(db.query, SECTION3_QUERY, params)
    assert len(result.value) == N


def test_prepare_only(benchmark, workload):
    db, stats = workload
    params = {"query": MEDIUM_QUERY, "stats": stats}
    compiled = benchmark(db.executor.prepare, SECTION3_QUERY, params)
    assert compiled.statements > 0


def test_run_prepared(benchmark, workload):
    db, stats = workload
    params = {"query": MEDIUM_QUERY, "stats": stats}
    compiled = db.executor.prepare(SECTION3_QUERY, params)
    result = benchmark(db.executor.run_compiled, compiled, params)
    assert len(result.value) == N


def report():
    db, stats, _ = build_text_db(N)
    print(f"E2: section 3 ranking query at N={N}")
    print(f"{'query len':>10}{'end-to-end ms':>15}{'prepare ms':>12}{'run ms':>10}")
    for terms in (SHORT_QUERY, MEDIUM_QUERY, LONG_QUERY):
        params = {"query": terms, "stats": stats}
        total = best_of(lambda: db.query(SECTION3_QUERY, params))
        prepare = best_of(lambda: db.executor.prepare(SECTION3_QUERY, params))
        compiled = db.executor.prepare(SECTION3_QUERY, params)
        run = best_of(lambda: db.executor.run_compiled(compiled, params))
        print(
            f"{len(terms):>10}{total * 1000:>15.1f}{prepare * 1000:>12.1f}"
            f"{run * 1000:>10.1f}"
        )


if __name__ == "__main__":
    report()
