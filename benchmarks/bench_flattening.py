"""E4 -- Flattening vs tuple-at-a-time interpretation ([BWK98] claim).

"Moa ... allows often for set-at-a-time processing of complex query
expressions" backed by [BWK98] "Flattening an object algebra to provide
performance".  The claim reproduced here: the compiled MIL plan beats
the tuple-at-a-time reference interpreter on the paper's own ranking
query, and the gap *grows* with collection size.

Expected shape: compiled wins by an order of magnitude at a few
thousand documents; the speedup curve rises with N.

Standalone report:  python benchmarks/bench_flattening.py
"""

import pytest

from repro.workloads import (
    SECTION3_QUERY,
    build_text_db,
    interpreter_data,
)

N = 2000
QUERY_TERMS = ["sunset", "sea", "mountain"]


@pytest.fixture(scope="module")
def workload():
    db, stats, rows = build_text_db(N)
    data = interpreter_data(rows)
    params = {"query": QUERY_TERMS, "stats": stats}
    return db, data, params


def test_compiled_set_at_a_time(benchmark, workload):
    db, _, params = workload
    result = benchmark(db.query, SECTION3_QUERY, params)
    assert len(result.value) == N


def test_interpreted_tuple_at_a_time(benchmark, workload):
    db, data, params = workload
    result = benchmark(
        db.executor.execute_interpreted, SECTION3_QUERY, data, params
    )
    assert len(result) == N


def test_compiled_beats_interpreted(workload):
    """The headline assertion, measured inline (shape, not absolutes)."""
    import time

    db, data, params = workload
    start = time.perf_counter()
    db.query(SECTION3_QUERY, params)
    compiled = time.perf_counter() - start
    start = time.perf_counter()
    db.executor.execute_interpreted(SECTION3_QUERY, data, params)
    interpreted = time.perf_counter() - start
    assert compiled < interpreted, (
        f"flattening must win: compiled {compiled:.3f}s vs "
        f"interpreted {interpreted:.3f}s"
    )


def _best_of(fn, repetitions=3):
    import time

    fn()  # warmup
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def report():
    print("E4: compiled (set-at-a-time) vs interpreted (tuple-at-a-time)")
    print(f"{'N':>8}{'compiled ms':>14}{'interpreted ms':>16}{'speedup':>10}")
    for n in (250, 1000, 4000, 16000):
        db, stats, rows = build_text_db(n)
        data = interpreter_data(rows)
        params = {"query": QUERY_TERMS, "stats": stats}
        compiled = _best_of(lambda: db.query(SECTION3_QUERY, params))
        interpreted = _best_of(
            lambda: db.executor.execute_interpreted(SECTION3_QUERY, data, params)
        )
        print(
            f"{n:>8}{compiled * 1000:>14.1f}{interpreted * 1000:>16.1f}"
            f"{interpreted / compiled:>10.1f}x"
        )


if __name__ == "__main__":
    report()
