"""E6 -- Design for scalability: ranking cost vs collection size.

"The focus of this work is aimed at design for scalability"
(section 1).  The reproduction measures the full compiled ranking
pipeline at doubling collection sizes and asserts the growth is
near-linear (no quadratic blowup anywhere in the flattened plan).

Expected shape: time per document roughly flat as N doubles 1k -> 16k.

Standalone report:  python benchmarks/bench_ir_scaling.py
"""

import pytest

from repro.workloads import SECTION3_QUERY, best_of, build_text_db

QUERY_TERMS = ["sunset", "sea", "mountain", "forest"]

SIZES = (1000, 2000, 4000, 8000)


@pytest.fixture(scope="module", params=SIZES)
def sized_db(request):
    db, stats, _ = build_text_db(request.param)
    return request.param, db, stats


def test_ranking_at_size(benchmark, sized_db):
    n, db, stats = sized_db
    params = {"query": QUERY_TERMS, "stats": stats}
    result = benchmark(db.query, SECTION3_QUERY, params)
    assert len(result.value) == n


def test_growth_is_subquadratic():
    """Doubling N must not quadruple time (shape assertion)."""
    times = {}
    for n in (1000, 8000):
        db, stats, _ = build_text_db(n)
        params = {"query": QUERY_TERMS, "stats": stats}
        times[n] = best_of(lambda: db.query(SECTION3_QUERY, params))
    ratio = times[8000] / times[1000]
    assert ratio < 8 * 4, f"8x data took {ratio:.1f}x time"


def report():
    print("E6: ranking cost vs collection size (compiled pipeline)")
    print(f"{'N':>8}{'total ms':>10}{'us/doc':>9}")
    for n in (1000, 2000, 4000, 8000, 16000, 32000):
        db, stats, _ = build_text_db(n)
        params = {"query": QUERY_TERMS, "stats": stats}
        elapsed = best_of(lambda: db.query(SECTION3_QUERY, params))
        print(f"{n:>8}{elapsed * 1000:>10.1f}{elapsed / n * 1e6:>9.2f}")


if __name__ == "__main__":
    report()
