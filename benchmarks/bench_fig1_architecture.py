"""E1 -- Figure 1: the open distributed architecture end to end.

Runs the whole federation -- web robot, media server, segmentation +
six feature daemons, AutoClass, thesaurus, metadata database -- and
reports the per-stage cost plus the ORB traffic the distribution
model implies.

Expected shape: feature extraction dominates (it touches every pixel
through six extractors), clustering second, the database loads small;
ORB call volume scales linearly with library size.

Standalone report:  python benchmarks/bench_fig1_architecture.py
"""


from repro.core.library import DigitalLibrary
from repro.multimedia.webrobot import WebRobot
from repro.workloads import best_of

LIBRARY_SIZE = 12


def _crawl(count=LIBRARY_SIZE):
    return WebRobot(seed=31, annotated_fraction=0.8).crawl(count)


def _fresh_library():
    return DigitalLibrary(max_classes=5, seed=4)


def test_ingest(benchmark):
    items = _crawl()

    def ingest():
        library = _fresh_library()
        library.ingest(items)
        return library

    library = benchmark(ingest)
    assert library.mirror.count("ImageLibrary") == LIBRARY_SIZE


def test_full_pipeline(benchmark):
    items = _crawl()

    def pipeline():
        library = _fresh_library()
        library.ingest(items)
        return library.run_daemons()

    summary = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert summary["images"] == LIBRARY_SIZE


def test_query_after_pipeline(benchmark):
    library = _fresh_library()
    library.ingest(_crawl())
    library.run_daemons()
    results = benchmark(library.query_content, "sunset beach", 5)
    assert isinstance(results, list)


def report():
    import time

    print(f"E1: Figure-1 federation over {LIBRARY_SIZE} images")
    items = _crawl()
    library = _fresh_library()

    start = time.perf_counter()
    library.ingest(items)
    ingest = time.perf_counter() - start

    start = time.perf_counter()
    summary = library.run_daemons()
    pipeline = time.perf_counter() - start

    query = best_of(lambda: library.query_content("sunset beach", 5))

    print(f"{'stage':<26}{'ms':>10}")
    print(f"{'ingest (robot -> media)':<26}{ingest * 1000:>10.1f}")
    print(f"{'daemon pipeline':<26}{pipeline * 1000:>10.1f}")
    print(f"{'content query':<26}{query * 1000:>10.1f}")
    print()
    print("federation summary:")
    for key, value in summary.items():
        print(f"    {key:24s} {value}")
    print(f"    {'orb_traffic_bytes':24s} {library.orb.traffic_bytes()}")
    calls = {}
    for record in library.orb.calls:
        calls[record.object_name] = calls.get(record.object_name, 0) + 1
    print("ORB calls per daemon:")
    for name, count in sorted(calls.items()):
        print(f"    {name:24s} {count}")


if __name__ == "__main__":
    report()
