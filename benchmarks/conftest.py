"""Benchmark-suite conftest: re-export the shared workload generators.

The real generators live in :mod:`repro.workloads` (they are part of
the library's public benchmark harness); this conftest exists so bench
modules can also be collected by pytest from the repository root.
"""

from repro.workloads import (  # noqa: F401
    SECTION3_QUERY,
    SECTION5_QUERY,
    TRADITIONAL_DDL,
    build_internal_db,
    build_text_db,
    interpreter_data,
    synth_annotations,
    visual_word_rows,
)
