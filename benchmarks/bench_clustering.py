"""E8 -- AutoClass clustering of the feature spaces (section 5.1).

"These feature spaces are then clustered using the public domain
clustering package AutoClass."  The ablation DESIGN.md calls out:
Bayesian mixture classification (the AutoClass substitute, with model
selection) vs plain k-means, on genuine feature vectors extracted from
synthetic scenes.

Expected shape: AutoClass costs more (EM + model search) but finds a
class count close to the true number of scene classes and clusters at
least as purely; k-means is the cheap baseline.

Standalone report:  python benchmarks/bench_clustering.py
"""

import numpy as np
import pytest

from repro.clustering.autoclass import AutoClass
from repro.clustering.kmeans import KMeans
from repro.multimedia.features import FEATURE_EXTRACTORS
from repro.multimedia.synth import class_names, generate_scene
from repro.workloads import best_of

IMAGES_PER_CLASS = 8


def _feature_matrix(extractor_name):
    """Feature vectors + ground-truth labels over all scene classes."""
    rng = np.random.default_rng(13)
    extractor = FEATURE_EXTRACTORS[extractor_name]
    vectors = []
    labels = []
    for label, name in enumerate(class_names()):
        for _ in range(IMAGES_PER_CLASS):
            image = generate_scene(name, rng=rng)
            vectors.append(extractor(image))
            labels.append(label)
    return np.asarray(vectors), np.asarray(labels)


def _purity(pred, truth):
    total = 0
    for cluster in np.unique(pred):
        members = truth[pred == cluster]
        total += np.bincount(members).max()
    return total / len(truth)


@pytest.fixture(scope="module")
def rgb_space():
    return _feature_matrix("rgb")


@pytest.fixture(scope="module")
def gabor_space():
    return _feature_matrix("gabor")


def test_autoclass_rgb(benchmark, rgb_space):
    data, truth = rgb_space
    model = benchmark(AutoClass(2, 8, seed=0).fit, data)
    assert _purity(model.predict(data), truth) > 0.5


def test_kmeans_rgb(benchmark, rgb_space):
    data, truth = rgb_space
    result = benchmark(KMeans(6, seed=0).fit, data)
    assert _purity(result.labels, truth) > 0.5


def test_autoclass_gabor(benchmark, gabor_space):
    data, _ = gabor_space
    model = benchmark(AutoClass(2, 8, seed=0).fit, data)
    assert model.n_classes >= 2


def test_autoclass_purity_at_least_kmeans(rgb_space):
    data, truth = rgb_space
    autoclass = AutoClass(2, 8, seed=0).fit(data)
    kmeans = KMeans(6, seed=0).fit(data)
    assert _purity(autoclass.predict(data), truth) >= (
        _purity(kmeans.labels, truth) - 0.15
    )


def report():
    print("E8: clustering feature spaces "
          f"({len(class_names())} true classes, "
          f"{IMAGES_PER_CLASS} images each)")
    print(f"{'space':<10}{'algo':<11}{'k found':>8}{'purity':>8}{'fit ms':>9}")
    for space in ("rgb", "hsv", "gabor", "laws"):
        data, truth = _feature_matrix(space)
        for algo_name, fit in (
            ("autoclass", lambda d: AutoClass(2, 8, seed=0).fit(d)),
            ("kmeans", lambda d: KMeans(6, seed=0).fit(d)),
        ):
            model = fit(data)
            elapsed = best_of(lambda: fit(data), repetitions=1)
            k = getattr(model, "n_classes", None)
            pred = model.predict(data) if hasattr(model, "predict") else model.labels
            print(
                f"{space:<10}{algo_name:<11}{k:>8}"
                f"{_purity(pred, truth):>8.2f}{elapsed * 1000:>9.1f}"
            )


if __name__ == "__main__":
    report()
