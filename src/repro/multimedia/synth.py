"""Procedural scene generator: the stand-in for the web robot's crawl.

The paper's demo library holds real web images; offline we synthesize
images from a fixed set of *scene classes*.  Each class prescribes a
vertical composition of colored bands (sky/horizon/ground), a
characteristic texture (orientation + frequency of a sinusoidal
grating, so the Gabor/texture extractors genuinely discriminate), and
an annotation vocabulary.  Ground truth (the generating class) travels
with every image, which is what lets EXPERIMENTS.md measure retrieval
quality (precision@k) instead of eyeballing screenshots.

Determinism: everything derives from an integer seed through
``numpy.random.default_rng``; the same seed reproduces the same
library byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.multimedia.image import Image


@dataclass(frozen=True)
class SceneSpec:
    """Recipe for one scene class."""

    name: str
    #: vertical bands top->bottom: (fraction, (r, g, b) base color)
    bands: Tuple[Tuple[float, Tuple[int, int, int]], ...]
    #: sinusoidal grating: (orientation radians, cycles per image, amplitude)
    texture: Tuple[float, float, float]
    #: words used to annotate images of this class
    vocabulary: Tuple[str, ...]
    #: per-pixel gaussian noise sigma
    noise: float = 8.0


SCENE_CLASSES: Dict[str, SceneSpec] = {
    "sunset_beach": SceneSpec(
        name="sunset_beach",
        bands=(
            (0.35, (240, 120, 60)),   # orange sky
            (0.15, (250, 180, 90)),   # glow
            (0.25, (60, 90, 160)),    # sea
            (0.25, (210, 190, 140)),  # sand
        ),
        texture=(0.0, 6.0, 18.0),     # horizontal waves
        vocabulary=("sunset", "beach", "sea", "orange", "sky", "waves", "sand"),
    ),
    "forest": SceneSpec(
        name="forest",
        bands=(
            (0.25, (140, 180, 220)),  # pale sky
            (0.55, (40, 110, 50)),    # canopy
            (0.20, (70, 60, 40)),     # ground
        ),
        texture=(np.pi / 2, 14.0, 22.0),  # vertical trunks
        vocabulary=("forest", "green", "trees", "leaves", "wood", "nature"),
    ),
    "mountain": SceneSpec(
        name="mountain",
        bands=(
            (0.30, (150, 180, 230)),  # sky
            (0.40, (120, 120, 130)),  # rock
            (0.30, (230, 235, 240)),  # snow field
        ),
        texture=(np.pi / 4, 10.0, 16.0),  # diagonal ridges
        vocabulary=("mountain", "snow", "rock", "peak", "alpine", "sky"),
    ),
    "city_night": SceneSpec(
        name="city_night",
        bands=(
            (0.45, (20, 20, 45)),     # night sky
            (0.35, (40, 40, 60)),     # skyline
            (0.20, (15, 15, 25)),     # street
        ),
        texture=(np.pi / 2, 24.0, 30.0),  # window grids
        vocabulary=("city", "night", "skyline", "lights", "buildings", "urban"),
    ),
    "ocean": SceneSpec(
        name="ocean",
        bands=(
            (0.40, (130, 170, 220)),  # day sky
            (0.60, (30, 80, 150)),    # open water
        ),
        texture=(0.0, 9.0, 20.0),     # horizontal swell
        vocabulary=("ocean", "sea", "blue", "water", "waves", "horizon"),
    ),
    "desert": SceneSpec(
        name="desert",
        bands=(
            (0.35, (170, 200, 240)),  # sky
            (0.65, (220, 180, 110)),  # dunes
        ),
        texture=(np.pi / 8, 5.0, 14.0),  # gentle dune ripples
        vocabulary=("desert", "sand", "dunes", "dry", "yellow", "heat"),
    ),
}


def generate_scene(
    class_name: str,
    *,
    rng: Optional[np.random.Generator] = None,
    size: Tuple[int, int] = (64, 64),
) -> Image:
    """Render one image of scene class *class_name*."""
    spec = SCENE_CLASSES.get(class_name)
    if spec is None:
        raise KeyError(
            f"unknown scene class {class_name!r}; known: {sorted(SCENE_CLASSES)}"
        )
    rng = rng or np.random.default_rng(0)
    height, width = size
    canvas = np.zeros((height, width, 3), dtype=np.float64)
    top = 0
    for fraction, color in spec.bands:
        band_height = max(1, int(round(fraction * height)))
        bottom = min(height, top + band_height)
        jitter = rng.normal(0.0, 6.0, size=3)
        canvas[top:bottom, :] = np.asarray(color, dtype=np.float64) + jitter
        top = bottom
    if top < height:
        canvas[top:height, :] = canvas[top - 1, :]

    orientation, cycles, amplitude = spec.texture
    ys, xs = np.mgrid[0:height, 0:width]
    phase = rng.uniform(0, 2 * np.pi)
    wave = np.sin(
        2
        * np.pi
        * cycles
        * (np.cos(orientation) * ys / height + np.sin(orientation) * xs / width)
        + phase
    )
    canvas += amplitude * wave[:, :, None]
    canvas += rng.normal(0.0, spec.noise, size=canvas.shape)
    return Image(np.clip(canvas, 0, 255).astype(np.uint8))


def annotate_scene(
    class_name: str,
    rng: Optional[np.random.Generator] = None,
    *,
    words: int = 5,
) -> str:
    """Draw an annotation sentence from the class vocabulary."""
    spec = SCENE_CLASSES[class_name]
    rng = rng or np.random.default_rng(0)
    count = min(words, len(spec.vocabulary))
    chosen = list(rng.choice(spec.vocabulary, size=count, replace=False))
    return "a photo of " + " ".join(chosen)


def class_names() -> List[str]:
    return sorted(SCENE_CLASSES)
