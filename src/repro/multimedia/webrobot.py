"""The simulated web robot.

"The digital library constructed for the demo consists of images
collected by a simple web robot.  Some of the images in the library are
annotated with text."  (Mirror paper, section 5.1.)

:class:`WebRobot` deterministically "crawls" a synthetic web: it yields
:class:`CrawledImage` items with a URL, the image, the generating scene
class (ground truth for evaluation) and -- for a configurable fraction
-- a textual annotation drawn from the class vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.multimedia.image import Image
from repro.multimedia.synth import SCENE_CLASSES, annotate_scene, generate_scene


@dataclass
class CrawledImage:
    """One item brought home by the robot."""

    url: str
    image: Image
    true_class: str
    annotation: Optional[str] = None

    @property
    def annotated(self) -> bool:
        return self.annotation is not None


class WebRobot:
    """Deterministic synthetic crawler.

    Parameters
    ----------
    seed:
        Master seed; identical seeds reproduce identical crawls.
    annotated_fraction:
        Fraction of images that carry a textual annotation (the paper
        says only *some* are annotated).
    classes:
        Scene classes to crawl; defaults to all.
    size:
        Image dimensions.
    """

    def __init__(
        self,
        seed: int = 42,
        *,
        annotated_fraction: float = 0.7,
        classes: Optional[Sequence[str]] = None,
        size: Tuple[int, int] = (64, 64),
    ):
        if not 0.0 <= annotated_fraction <= 1.0:
            raise ValueError("annotated_fraction must lie in [0, 1]")
        self.seed = seed
        self.annotated_fraction = annotated_fraction
        self.classes = list(classes) if classes else sorted(SCENE_CLASSES)
        for name in self.classes:
            if name not in SCENE_CLASSES:
                raise KeyError(f"unknown scene class {name!r}")
        self.size = size

    def crawl(self, count: int) -> List[CrawledImage]:
        """Fetch *count* images, classes round-robin balanced."""
        rng = np.random.default_rng(self.seed)
        out: List[CrawledImage] = []
        for index in range(count):
            class_name = self.classes[index % len(self.classes)]
            image = generate_scene(class_name, rng=rng, size=self.size)
            annotation = None
            if rng.random() < self.annotated_fraction:
                annotation = annotate_scene(class_name, rng)
            out.append(
                CrawledImage(
                    url=f"http://synthetic.web/{class_name}/{index:05d}.ppm",
                    image=image,
                    true_class=class_name,
                    annotation=annotation,
                )
            )
        return out

    def stream(self, count: int) -> Iterator[CrawledImage]:
        """Generator variant of :meth:`crawl`."""
        yield from self.crawl(count)
