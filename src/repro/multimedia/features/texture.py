"""The four texture feature extractors (MeasTex reference algorithms).

MeasTex shipped reference implementations of the canonical texture
families of the late 90s; we rebuild the four the Mirror demo used
conceptually: Gabor energies, grey-level co-occurrence (Haralick)
statistics, autocorrelation, and Laws texture-energy masks.  All run on
the luminance plane and return fixed-length float vectors.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.multimedia.image import Image


def _convolve2d_same(plane: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """FFT-based 'same' 2-D convolution (no scipy dependency needed)."""
    ph, pw = plane.shape
    kh, kw = kernel.shape
    fh, fw = ph + kh - 1, pw + kw - 1
    spectrum = np.fft.rfft2(plane, s=(fh, fw)) * np.fft.rfft2(kernel, s=(fh, fw))
    full = np.fft.irfft2(spectrum, s=(fh, fw))
    top = (kh - 1) // 2
    left = (kw - 1) // 2
    return full[top : top + ph, left : left + pw]


# ----------------------------------------------------------------------
# 1. Gabor filter bank
# ----------------------------------------------------------------------


def gabor_kernel(
    frequency: float,
    orientation: float,
    *,
    sigma: float = 2.5,
    size: int = 11,
) -> np.ndarray:
    """Real (cosine) Gabor kernel with given spatial *frequency*
    (cycles/pixel) and *orientation* (radians)."""
    half = size // 2
    ys, xs = np.mgrid[-half : half + 1, -half : half + 1]
    rotated = xs * np.cos(orientation) + ys * np.sin(orientation)
    envelope = np.exp(-(xs**2 + ys**2) / (2.0 * sigma**2))
    carrier = np.cos(2.0 * np.pi * frequency * rotated)
    kernel = envelope * carrier
    return kernel - kernel.mean()


def gabor_features(
    image: Image,
    frequencies: Sequence[float] = (0.1, 0.2, 0.35),
    orientations: int = 4,
) -> np.ndarray:
    """Mean absolute response energy per (frequency, orientation) pair;
    ``len(frequencies) * orientations`` dimensions, the classic Gabor
    texture signature."""
    plane = image.grayscale()
    plane = plane - plane.mean()
    out: List[float] = []
    for frequency in frequencies:
        for k in range(orientations):
            theta = np.pi * k / orientations
            response = _convolve2d_same(plane, gabor_kernel(frequency, theta))
            out.append(float(np.abs(response).mean()))
    features = np.asarray(out)
    norm = np.linalg.norm(features)
    return features / norm if norm > 0 else features


# ----------------------------------------------------------------------
# 2. Grey-level co-occurrence (Haralick)
# ----------------------------------------------------------------------


def glcm_matrix(
    plane: np.ndarray, levels: int, offset: Tuple[int, int]
) -> np.ndarray:
    """Normalized, symmetrized co-occurrence matrix of quantized *plane*
    for displacement *offset* = (dy, dx)."""
    quantized = np.minimum(
        (plane.astype(np.float64) * levels / 256.0).astype(np.int64), levels - 1
    )
    dy, dx = offset
    height, width = quantized.shape
    a = quantized[max(0, -dy) : height - max(0, dy), max(0, -dx) : width - max(0, dx)]
    b = quantized[max(0, dy) : height - max(0, -dy), max(0, dx) : width - max(0, -dx)]
    codes = a.ravel() * levels + b.ravel()
    matrix = np.bincount(codes, minlength=levels * levels).astype(np.float64)
    matrix = matrix.reshape(levels, levels)
    matrix = matrix + matrix.T
    total = matrix.sum()
    return matrix / total if total > 0 else matrix


def glcm_features(
    image: Image,
    levels: int = 8,
    offsets: Sequence[Tuple[int, int]] = ((0, 1), (1, 0), (1, 1), (1, -1)),
) -> np.ndarray:
    """Haralick statistics (contrast, energy, homogeneity, correlation,
    entropy) per offset; ``5 * len(offsets)`` dimensions."""
    plane = image.grayscale()
    i_idx, j_idx = np.mgrid[0:levels, 0:levels].astype(np.float64)
    out: List[float] = []
    for offset in offsets:
        p = glcm_matrix(plane, levels, offset)
        contrast = float(((i_idx - j_idx) ** 2 * p).sum())
        energy = float((p**2).sum())
        homogeneity = float((p / (1.0 + np.abs(i_idx - j_idx))).sum())
        mu_i = float((i_idx * p).sum())
        mu_j = float((j_idx * p).sum())
        var_i = float(((i_idx - mu_i) ** 2 * p).sum())
        var_j = float(((j_idx - mu_j) ** 2 * p).sum())
        if var_i > 0 and var_j > 0:
            correlation = float(
                (((i_idx - mu_i) * (j_idx - mu_j) * p).sum())
                / np.sqrt(var_i * var_j)
            )
        else:
            correlation = 0.0
        nonzero = p[p > 0]
        entropy = float(-(nonzero * np.log(nonzero)).sum())
        out.extend([contrast, energy, homogeneity, correlation, entropy])
    return np.asarray(out)


# ----------------------------------------------------------------------
# 3. Autocorrelation
# ----------------------------------------------------------------------


def autocorrelation_features(
    image: Image,
    offsets: Sequence[Tuple[int, int]] = (
        (0, 1), (0, 2), (0, 4), (1, 0), (2, 0), (4, 0), (1, 1), (2, 2),
    ),
) -> np.ndarray:
    """Normalized autocorrelation of the luminance plane at the given
    displacements; ``len(offsets)`` dimensions in [-1, 1]."""
    plane = image.grayscale()
    plane = plane - plane.mean()
    denominator = float((plane * plane).sum())
    if denominator <= 0:
        return np.zeros(len(offsets))
    out: List[float] = []
    height, width = plane.shape
    for dy, dx in offsets:
        a = plane[max(0, -dy) : height - max(0, dy), max(0, -dx) : width - max(0, dx)]
        b = plane[max(0, dy) : height - max(0, -dy), max(0, dx) : width - max(0, -dx)]
        out.append(float((a * b).sum() / denominator))
    return np.asarray(out)


# ----------------------------------------------------------------------
# 4. Laws texture-energy masks
# ----------------------------------------------------------------------

_LAWS_1D = {
    "L5": np.array([1, 4, 6, 4, 1], dtype=np.float64),       # level
    "E5": np.array([-1, -2, 0, 2, 1], dtype=np.float64),     # edge
    "S5": np.array([-1, 0, 2, 0, -1], dtype=np.float64),     # spot
    "R5": np.array([1, -4, 6, -4, 1], dtype=np.float64),     # ripple
}

#: The standard 2-D mask pairs (excluding the L5L5 DC mask).
_LAWS_PAIRS = [
    ("L5", "E5"), ("L5", "S5"), ("L5", "R5"),
    ("E5", "E5"), ("E5", "S5"), ("E5", "R5"),
    ("S5", "S5"), ("S5", "R5"), ("R5", "R5"),
]


def laws_features(image: Image) -> np.ndarray:
    """Mean absolute texture energy per Laws mask pair (9 dimensions,
    symmetrized: the VH and HV responses are averaged)."""
    plane = image.grayscale()
    plane = plane - plane.mean()
    out: List[float] = []
    for a, b in _LAWS_PAIRS:
        mask_vh = np.outer(_LAWS_1D[a], _LAWS_1D[b])
        energy = np.abs(_convolve2d_same(plane, mask_vh)).mean()
        if a != b:
            mask_hv = np.outer(_LAWS_1D[b], _LAWS_1D[a])
            energy = 0.5 * (
                energy + np.abs(_convolve2d_same(plane, mask_hv)).mean()
            )
        out.append(float(energy))
    features = np.asarray(out)
    norm = np.linalg.norm(features)
    return features / norm if norm > 0 else features
