"""Colour-histogram feature daemons (the paper's two colour extractors).

Both return L1-normalized histograms so segment size does not dominate
clustering distance.
"""

from __future__ import annotations

import numpy as np

from repro.multimedia.image import Image


def rgb_histogram(image: Image, bins: int = 4) -> np.ndarray:
    """Joint RGB histogram with *bins* levels per channel
    (``bins**3``-dimensional, L1-normalized)."""
    if bins < 1:
        raise ValueError("bins must be positive")
    pixels = image.pixels.reshape(-1, 3)
    quantized = (pixels.astype(np.int64) * bins) // 256
    codes = (quantized[:, 0] * bins + quantized[:, 1]) * bins + quantized[:, 2]
    hist = np.bincount(codes, minlength=bins**3).astype(np.float64)
    total = hist.sum()
    return hist / total if total > 0 else hist


def rgb_to_hsv(pixels: np.ndarray) -> np.ndarray:
    """Vectorized RGB->HSV for an (n, 3) uint8 array; returns floats
    with h in [0, 1), s in [0, 1], v in [0, 1]."""
    rgb = pixels.astype(np.float64) / 255.0
    r, g, b = rgb[:, 0], rgb[:, 1], rgb[:, 2]
    maxc = rgb.max(axis=1)
    minc = rgb.min(axis=1)
    v = maxc
    delta = maxc - minc
    s = np.where(maxc > 0, delta / np.where(maxc > 0, maxc, 1.0), 0.0)
    h = np.zeros(len(rgb))
    mask = delta > 0
    rmax = mask & (maxc == r)
    gmax = mask & (maxc == g) & ~rmax
    bmax = mask & ~rmax & ~gmax
    safe_delta = np.where(delta > 0, delta, 1.0)
    h[rmax] = ((g - b)[rmax] / safe_delta[rmax]) % 6.0
    h[gmax] = (b - r)[gmax] / safe_delta[gmax] + 2.0
    h[bmax] = (r - g)[bmax] / safe_delta[bmax] + 4.0
    h = h / 6.0
    return np.stack([h, s, v], axis=1)


def hsv_histogram(
    image: Image,
    hue_bins: int = 8,
    saturation_bins: int = 3,
    value_bins: int = 3,
) -> np.ndarray:
    """Joint HSV histogram (the perceptual colour daemon);
    ``hue_bins * saturation_bins * value_bins`` dimensions."""
    hsv = rgb_to_hsv(image.pixels.reshape(-1, 3))
    h = np.minimum((hsv[:, 0] * hue_bins).astype(np.int64), hue_bins - 1)
    s = np.minimum((hsv[:, 1] * saturation_bins).astype(np.int64), saturation_bins - 1)
    v = np.minimum((hsv[:, 2] * value_bins).astype(np.int64), value_bins - 1)
    codes = (h * saturation_bins + s) * value_bins + v
    size = hue_bins * saturation_bins * value_bins
    hist = np.bincount(codes, minlength=size).astype(np.float64)
    total = hist.sum()
    return hist / total if total > 0 else hist
