"""Feature extraction daemphases: two colour and four texture extractors.

"At the moment of writing, we have implemented two color histogram
daemons.  In addition, we use the four reference implementations of
texture algorithms provided by the MeasTex framework."  (Mirror paper,
section 5.1.)

Colour (:mod:`repro.multimedia.features.color`):

* RGB histogram
* HSV histogram

Texture (:mod:`repro.multimedia.features.texture`), the four canonical
families of the MeasTex era:

* Gabor filter-bank energies
* Grey-level co-occurrence (Haralick) statistics
* Autocorrelation features
* Laws texture-energy masks

Every extractor maps an :class:`repro.multimedia.image.Image` (or
segment image) to a fixed-length ``numpy`` vector; names and
dimensionalities are exposed via :data:`FEATURE_EXTRACTORS`.
"""

from repro.multimedia.features.color import hsv_histogram, rgb_histogram
from repro.multimedia.features.texture import (
    autocorrelation_features,
    gabor_features,
    glcm_features,
    laws_features,
)

#: name -> extractor callable(Image) -> np.ndarray
FEATURE_EXTRACTORS = {
    "rgb": rgb_histogram,
    "hsv": hsv_histogram,
    "gabor": gabor_features,
    "glcm": glcm_features,
    "autocorr": autocorrelation_features,
    "laws": laws_features,
}

__all__ = [
    "rgb_histogram",
    "hsv_histogram",
    "gabor_features",
    "glcm_features",
    "autocorrelation_features",
    "laws_features",
    "FEATURE_EXTRACTORS",
]
