"""Multimedia substrate: images, segmentation, feature extraction.

The Mirror demo's digital library is fed by "images collected by a
simple web robot" with daemons for segmentation and feature extraction
(paper, section 5.1).  We have no network and no MeasTex corpus, so
this package provides the synthetic equivalent (see DESIGN.md §2):

* :mod:`repro.multimedia.image` -- the Image value type + PPM I/O;
* :mod:`repro.multimedia.synth` -- a procedural scene generator with
  ground-truth scene classes and correlated annotations;
* :mod:`repro.multimedia.webrobot` -- the simulated crawl;
* :mod:`repro.multimedia.segmentation` -- grid and region-merge
  segmentation ("one of the daemons segments the images");
* :mod:`repro.multimedia.features` -- two colour-histogram extractors
  and the four MeasTex-style texture extractors (Gabor, GLCM,
  autocorrelation, Laws masks).
"""

from repro.multimedia.image import Image
from repro.multimedia.synth import SCENE_CLASSES, SceneSpec, generate_scene
from repro.multimedia.webrobot import CrawledImage, WebRobot

__all__ = [
    "Image",
    "SCENE_CLASSES",
    "SceneSpec",
    "generate_scene",
    "WebRobot",
    "CrawledImage",
]
