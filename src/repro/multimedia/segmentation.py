"""Image segmentation ("one of the daemons segments the images").

Two segmenters are provided:

* :func:`grid_segment` -- fixed regular grid; fast, deterministic,
  the default for the pipeline benchmarks;
* :func:`region_merge_segment` -- a simple region-growing segmentation:
  start from grid cells and greedily merge color-similar neighbours
  with union-find, producing variable-sized coherent regions (closer in
  spirit to the demo's segmentation daemon).

A :class:`Segment` carries its bounding box and pixel block; feature
extractors consume segments, matching the paper's intermediate schema
(``image_segments`` with per-segment RGB/Gabor vectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.multimedia.image import Image


@dataclass
class Segment:
    """One image region: bounding box (top, left, bottom, right) and
    the pixel block covering it."""

    bbox: Tuple[int, int, int, int]
    image: Image

    @property
    def area(self) -> int:
        top, left, bottom, right = self.bbox
        return (bottom - top) * (right - left)


def grid_segment(image: Image, rows: int = 2, cols: int = 2) -> List[Segment]:
    """Split *image* into a rows x cols grid of segments."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs at least 1x1 cells")
    height, width = image.shape
    row_edges = np.linspace(0, height, rows + 1, dtype=int)
    col_edges = np.linspace(0, width, cols + 1, dtype=int)
    segments: List[Segment] = []
    for r in range(rows):
        for c in range(cols):
            top, bottom = int(row_edges[r]), int(row_edges[r + 1])
            left, right = int(col_edges[c]), int(col_edges[c + 1])
            if bottom <= top or right <= left:
                continue
            segments.append(
                Segment(
                    bbox=(top, left, bottom, right),
                    image=image.crop(top, left, bottom, right),
                )
            )
    return segments


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def region_merge_segment(
    image: Image,
    *,
    cell: int = 8,
    threshold: float = 28.0,
) -> List[Segment]:
    """Region-growing segmentation by merging color-similar grid cells.

    The image is tiled into ``cell x cell`` blocks; adjacent blocks
    whose mean colors differ by less than *threshold* (Euclidean in
    RGB) are merged.  Each resulting region is returned as the segment
    of its bounding box.
    """
    height, width = image.shape
    rows = max(1, height // cell)
    cols = max(1, width // cell)
    means = np.zeros((rows, cols, 3))
    for r in range(rows):
        for c in range(cols):
            block = image.pixels[
                r * cell : min((r + 1) * cell, height),
                c * cell : min((c + 1) * cell, width),
            ]
            means[r, c] = block.reshape(-1, 3).mean(axis=0)
    uf = _UnionFind(rows * cols)
    for r in range(rows):
        for c in range(cols):
            here = r * cols + c
            if c + 1 < cols:
                if np.linalg.norm(means[r, c] - means[r, c + 1]) < threshold:
                    uf.union(here, here + 1)
            if r + 1 < rows:
                if np.linalg.norm(means[r, c] - means[r + 1, c]) < threshold:
                    uf.union(here, here + cols)
    regions: Dict[int, List[Tuple[int, int]]] = {}
    for r in range(rows):
        for c in range(cols):
            root = uf.find(r * cols + c)
            regions.setdefault(root, []).append((r, c))
    segments: List[Segment] = []
    for cells in regions.values():
        rs = [r for r, _ in cells]
        cs = [c for _, c in cells]
        top = min(rs) * cell
        left = min(cs) * cell
        bottom = min(height, (max(rs) + 1) * cell)
        right = min(width, (max(cs) + 1) * cell)
        segments.append(
            Segment(
                bbox=(top, left, bottom, right),
                image=image.crop(top, left, bottom, right),
            )
        )
    segments.sort(key=lambda s: s.bbox)
    return segments
