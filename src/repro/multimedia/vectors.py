"""Vector <-> string encoding for ``Atomic<Vector>`` attributes.

The paper's *intermediate* schema (section 5.2) carries per-segment
feature vectors as ``Atomic<Vector>`` attributes between the feature
daemons and the clustering step.  The Monet substitute has no native
array atom, so ``Vector`` rides on the ``str`` atom with a canonical
space-separated decimal encoding (see DESIGN.md §2); these helpers are
the single place that encoding lives.

Round-trip accuracy: ``repr``-based formatting, so float64 values
survive exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np


def encode_vector(vector: Iterable[float]) -> str:
    """Serialize *vector* as the canonical Atomic<Vector> string."""
    return " ".join(repr(float(v)) for v in vector)


def decode_vector(text: Optional[str]) -> np.ndarray:
    """Inverse of :func:`encode_vector`; NIL/empty -> empty vector."""
    if not text:
        return np.zeros(0)
    return np.asarray([float(part) for part in text.split()], dtype=np.float64)


def encode_matrix(matrix: np.ndarray) -> List[str]:
    """One encoded string per row of a feature matrix."""
    return [encode_vector(row) for row in np.atleast_2d(matrix)]


def decode_matrix(texts: Iterable[str]) -> np.ndarray:
    """Stack decoded vectors back into an (n, d) matrix.

    All rows must agree on dimensionality (they come from one feature
    space); raises ``ValueError`` otherwise.
    """
    rows = [decode_vector(t) for t in texts]
    if not rows:
        return np.zeros((0, 0))
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValueError("vectors of mixed dimensionality")
    return np.stack(rows)
