"""The Image value type: an RGB raster plus PPM serialization.

Media objects travel between the web robot, the media server and the
feature daemons as raw bytes (the Mirror media server "is a web
server"); PPM (P6) is the wire format because it is trivially
self-contained and binary-exact.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Image:
    """An 8-bit RGB image backed by a (height, width, 3) uint8 array."""

    __slots__ = ("pixels",)

    def __init__(self, pixels: np.ndarray):
        pixels = np.asarray(pixels)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError("Image needs a (height, width, 3) array")
        if pixels.dtype != np.uint8:
            pixels = np.clip(pixels, 0, 255).astype(np.uint8)
        self.pixels = pixels

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.height, self.width)

    def crop(self, top: int, left: int, bottom: int, right: int) -> "Image":
        """Sub-image [top:bottom, left:right] (no copy)."""
        if not (0 <= top < bottom <= self.height and 0 <= left < right <= self.width):
            raise ValueError(
                f"crop ({top},{left},{bottom},{right}) outside "
                f"{self.height}x{self.width}"
            )
        return Image(self.pixels[top:bottom, left:right])

    def grayscale(self) -> np.ndarray:
        """Luminance as float64 in [0, 255] (ITU-R 601 weights)."""
        rgb = self.pixels.astype(np.float64)
        return 0.299 * rgb[:, :, 0] + 0.587 * rgb[:, :, 1] + 0.114 * rgb[:, :, 2]

    def mean_color(self) -> np.ndarray:
        """Mean (r, g, b) as float64."""
        return self.pixels.reshape(-1, 3).astype(np.float64).mean(axis=0)

    def __eq__(self, other) -> bool:
        return isinstance(other, Image) and np.array_equal(self.pixels, other.pixels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Image({self.height}x{self.width})"

    # ------------------------------------------------------------------
    # PPM (P6) serialization
    # ------------------------------------------------------------------
    def to_ppm(self) -> bytes:
        """Serialize as binary PPM."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        return header + self.pixels.tobytes()

    @classmethod
    def from_ppm(cls, data: bytes) -> "Image":
        """Parse binary PPM bytes (as produced by :meth:`to_ppm`)."""
        if not data.startswith(b"P6"):
            raise ValueError("not a binary PPM (P6) stream")
        # Parse the three header tokens (width, height, maxval),
        # skipping comments.
        position = 2
        tokens = []
        while len(tokens) < 3:
            while position < len(data) and data[position : position + 1].isspace():
                position += 1
            if data[position : position + 1] == b"#":
                while position < len(data) and data[position : position + 1] != b"\n":
                    position += 1
                continue
            start = position
            while position < len(data) and not data[position : position + 1].isspace():
                position += 1
            tokens.append(data[start:position])
        position += 1  # single whitespace after maxval
        width, height, maxval = (int(t) for t in tokens)
        if maxval != 255:
            raise ValueError(f"unsupported PPM maxval {maxval}")
        expected = width * height * 3
        raster = data[position : position + expected]
        if len(raster) != expected:
            raise ValueError("truncated PPM raster")
        pixels = np.frombuffer(raster, dtype=np.uint8).reshape(height, width, 3)
        return cls(pixels.copy())
