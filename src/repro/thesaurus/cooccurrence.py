"""Document-level co-occurrence statistics between two vocabularies.

The thesaurus construction pairs each document's *text terms* (from the
annotation CONTREP) with its *visual words* (from the image CONTREP)
and counts, over the collection, how often word w and cluster c occur
in the same document.  These counts feed the EMIM association scores in
:mod:`repro.thesaurus.assoc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple


@dataclass
class CooccurrenceCounts:
    """Joint and marginal document frequencies of two vocabularies."""

    document_count: int = 0
    left_df: Dict[str, int] = field(default_factory=dict)
    right_df: Dict[str, int] = field(default_factory=dict)
    joint: Dict[Tuple[str, str], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Tuple[Sequence[str], Sequence[str]]],
    ) -> "CooccurrenceCounts":
        """Count over (left-terms, right-terms) document pairs."""
        counts = cls()
        for left_terms, right_terms in documents:
            counts.add_document(left_terms, right_terms)
        return counts

    def add_document(
        self, left_terms: Sequence[str], right_terms: Sequence[str]
    ) -> None:
        """Incorporate one document (presence-based: duplicates within a
        document count once, standard association-thesaurus practice)."""
        self.document_count += 1
        left_set: Set[str] = set(left_terms)
        right_set: Set[str] = set(right_terms)
        for w in left_set:
            self.left_df[w] = self.left_df.get(w, 0) + 1
        for c in right_set:
            self.right_df[c] = self.right_df.get(c, 0) + 1
        for w in left_set:
            for c in right_set:
                key = (w, c)
                self.joint[key] = self.joint.get(key, 0) + 1

    # ------------------------------------------------------------------
    def joint_count(self, left: str, right: str) -> int:
        return self.joint.get((left, right), 0)

    def left_vocabulary(self) -> List[str]:
        return sorted(self.left_df)

    def right_vocabulary(self) -> List[str]:
        return sorted(self.right_df)

    def pairs_for_left(self, left: str) -> List[Tuple[str, int]]:
        """(right-term, joint count) pairs co-occurring with *left*."""
        return sorted(
            (
                (c, n)
                for (w, c), n in self.joint.items()
                if w == left and n > 0
            ),
            key=lambda item: (-item[1], item[0]),
        )
