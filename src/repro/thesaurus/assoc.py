"""The EMIM association thesaurus (PhraseFinder style).

"Following the observation used in PhraseFinder [JC94], an association
thesaurus can be seen as measuring the belief in a concept (instead of
in a document) given the query."  (Mirror paper, section 5.2.)

Association strength between annotation word *w* and visual cluster *c*
is scored with expected mutual information (EMIM) over their document
co-occurrence;  :meth:`AssociationThesaurus.expand` turns a text query
into the visual-cluster query the CONTREP<Image> ranking consumes --
the paper's query-formulation step.

The thesaurus is *adaptable*: relevance feedback can strengthen or
weaken individual (word, cluster) associations
(:meth:`AssociationThesaurus.reinforce`), implementing the learning
hook the paper flags as ongoing work ("we are investigating machine
learning techniques to adapt the thesaurus").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.thesaurus.cooccurrence import CooccurrenceCounts


@dataclass
class Association:
    """One thesaurus entry: word -> cluster with its belief score."""

    word: str
    cluster: str
    score: float


class AssociationThesaurus:
    """Word -> visual-cluster associations with EMIM scores."""

    def __init__(self, counts: CooccurrenceCounts, *, smoothing: float = 0.5):
        self.counts = counts
        self.smoothing = smoothing
        #: multiplicative feedback adjustments, keyed (word, cluster)
        self._adjustments: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    def emim(self, word: str, cluster: str) -> float:
        """Expected mutual information between presence of *word* and
        *cluster* across documents (non-negative, smoothed)."""
        n = self.counts.document_count
        if n == 0:
            return 0.0
        s = self.smoothing
        n_w = self.counts.left_df.get(word, 0)
        n_c = self.counts.right_df.get(cluster, 0)
        n_wc = self.counts.joint_count(word, cluster)
        score = 0.0
        for joint, margin_w, margin_c in (
            (n_wc, n_w, n_c),
            (n_w - n_wc, n_w, n - n_c),
            (n_c - n_wc, n - n_w, n_c),
            (n - n_w - n_c + n_wc, n - n_w, n - n_c),
        ):
            p_joint = (joint + s) / (n + 4 * s)
            p_independent = ((margin_w + 2 * s) / (n + 4 * s)) * (
                (margin_c + 2 * s) / (n + 4 * s)
            )
            if p_joint > 0 and p_independent > 0:
                score += p_joint * math.log(p_joint / p_independent)
        return max(0.0, score)

    def association_score(self, word: str, cluster: str) -> float:
        """EMIM adjusted by any feedback reinforcement."""
        base = self.emim(word, cluster)
        return base * self._adjustments.get((word, cluster), 1.0)

    # ------------------------------------------------------------------
    # Lookup / expansion
    # ------------------------------------------------------------------
    def associate(self, word: str, k: int = 5) -> List[Association]:
        """Top-*k* clusters associated with *word*, best first."""
        candidates = self.counts.pairs_for_left(word)
        scored = [
            Association(word, cluster, self.association_score(word, cluster))
            for cluster, _ in candidates
        ]
        scored = [a for a in scored if a.score > 0.0]
        scored.sort(key=lambda a: (-a.score, a.cluster))
        return scored[:k]

    def expand(
        self,
        words: Sequence[str],
        *,
        per_word: int = 3,
        min_score: float = 0.0,
    ) -> List[str]:
        """Visual-cluster query terms for a text query.

        Returns cluster tokens (duplicates allowed when several words
        agree on a cluster -- repetition acts as term weighting in the
        ranking query, mirroring the belief interpretation of [JC94]).
        """
        out: List[str] = []
        for word in words:
            for association in self.associate(word, k=per_word):
                if association.score > min_score:
                    out.append(association.cluster)
        return out

    # ------------------------------------------------------------------
    # Feedback adaptation (the paper's machine-learning hook)
    # ------------------------------------------------------------------
    def reinforce(
        self, word: str, cluster: str, factor: float
    ) -> None:
        """Multiply the (word, cluster) association by *factor*
        (> 1 strengthens, < 1 weakens; floored at zero)."""
        if factor < 0:
            raise ValueError("reinforcement factor must be non-negative")
        key = (word, cluster)
        self._adjustments[key] = self._adjustments.get(key, 1.0) * factor

    def adjustment(self, word: str, cluster: str) -> float:
        return self._adjustments.get((word, cluster), 1.0)

    # ------------------------------------------------------------------
    def entries(self, *, min_score: float = 0.0) -> List[Association]:
        """All positive associations (diagnostics / persistence)."""
        out: List[Association] = []
        for (word, cluster), joint in sorted(self.counts.joint.items()):
            if joint <= 0:
                continue
            score = self.association_score(word, cluster)
            if score > min_score:
                out.append(Association(word, cluster, score))
        out.sort(key=lambda a: (-a.score, a.word, a.cluster))
        return out
