"""Association thesaurus: the dual-coding bridge between words and
visual clusters.

"We automatically construct a thesaurus, associating words in the
textual annotations to the clusters in the image content
representation.  ...  this thesaurus can be considered an
implementation of Paivio's dual coding theory."  (Mirror paper,
section 5.2.)

* :mod:`repro.thesaurus.cooccurrence` -- document-level co-occurrence
  counting between two vocabularies;
* :mod:`repro.thesaurus.assoc` -- the EMIM-scored association thesaurus
  (PhraseFinder [JC94] style) with query expansion, plus the feedback
  adaptation hook used by :mod:`repro.core.feedback`.
"""

from repro.thesaurus.assoc import AssociationThesaurus
from repro.thesaurus.cooccurrence import CooccurrenceCounts

__all__ = ["AssociationThesaurus", "CooccurrenceCounts"]
