"""Moa's structural type system with open extensibility.

"Structures, such as tuple and (multi-)set, define complex data types
out of the simple base types.  The base types, such as integer and
string, are inherited from the underlying physical database."
(Mirror paper, section 2.)

A :class:`MoaType` is a tree of structure applications over
:class:`AtomicType` leaves.  The *structure registry* is the paper's
extensibility hook: the kernel registers ``Atomic``, ``TUPLE`` and
``SET``; :mod:`repro.moa.structures.list_` adds ``LIST`` ("Henk Ernst
Blok, who added the LIST structure to Moa") and
:mod:`repro.moa.structures.contrep` adds the domain-specific ``CONTREP``
for multimedia retrieval -- *without touching this module*, exactly the
open-system property the paper claims.

Logical base types are names like ``URL``, ``Text``, ``Image``,
``Vector``; each maps onto a physical atom of the Monet substitute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.moa.errors import MoaTypeError

# ----------------------------------------------------------------------
# Logical base types -> physical atoms
# ----------------------------------------------------------------------

#: Logical base-type name -> physical atom name.  ``Vector`` is encoded
#: on a str atom (space-separated components); the multimedia layer
#: provides encode/decode helpers.  This matches the paper's usage: the
#: ``Atomic<Vector>`` attributes only exist in the *intermediate* schema
#: between feature extraction and clustering.
_BASE_TYPES: Dict[str, str] = {
    "int": "int",
    "integer": "int",
    "oid": "oid",
    "float": "dbl",
    "dbl": "dbl",
    "str": "str",
    "string": "str",
    "bit": "bit",
    "bool": "bit",
    "URL": "str",
    "Text": "str",
    "Image": "str",
    "Audio": "str",
    "Video": "str",
    "Vector": "str",
}


def register_base_type(name: str, atom_name: str) -> None:
    """Add a new logical base type backed by physical atom *atom_name*."""
    existing = _BASE_TYPES.get(name)
    if existing is not None and existing != atom_name:
        raise MoaTypeError(
            f"base type {name!r} already maps to atom {existing!r}"
        )
    _BASE_TYPES[name] = atom_name


def base_type_atom(name: str) -> str:
    """Physical atom backing logical base type *name*."""
    try:
        return _BASE_TYPES[name]
    except KeyError:
        raise MoaTypeError(
            f"unknown base type {name!r}; known: {sorted(_BASE_TYPES)}"
        ) from None


def base_type_names() -> List[str]:
    return sorted(_BASE_TYPES)


# ----------------------------------------------------------------------
# Type tree
# ----------------------------------------------------------------------


class MoaType:
    """Abstract base of all Moa types."""

    #: Structure name used in DDL (overridden per subclass).
    structure = "?"

    def render(self) -> str:
        """DDL-style rendering of this type."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()

    def __eq__(self, other) -> bool:
        return isinstance(other, MoaType) and self.render() == other.render()

    def __hash__(self) -> int:
        return hash(self.render())


@dataclass(frozen=True, eq=False)
class AtomicType(MoaType):
    """``Atomic<Base>``: a leaf carrying one base-type value."""

    base: str

    structure = "Atomic"

    def __post_init__(self):
        base_type_atom(self.base)  # validate eagerly

    @property
    def atom(self) -> str:
        """Physical atom name backing this leaf."""
        return base_type_atom(self.base)

    def render(self) -> str:
        return f"Atomic<{self.base}>"


@dataclass(frozen=True, eq=False)
class TupleType(MoaType):
    """``TUPLE<T1: a1, ..., Tn: an>``: named heterogeneous fields."""

    fields: Tuple[Tuple[str, MoaType], ...]

    structure = "TUPLE"

    def __post_init__(self):
        names = [name for name, _ in self.fields]
        if len(names) != len(set(names)):
            raise MoaTypeError(f"duplicate tuple field in {names}")
        if not names:
            raise MoaTypeError("TUPLE needs at least one field")

    def field_names(self) -> List[str]:
        return [name for name, _ in self.fields]

    def field_type(self, name: str) -> MoaType:
        for field_name, field_ty in self.fields:
            if field_name == name:
                return field_ty
        raise MoaTypeError(
            f"tuple has no field {name!r}; fields: {self.field_names()}"
        )

    def has_field(self, name: str) -> bool:
        return any(field_name == name for field_name, _ in self.fields)

    def render(self) -> str:
        inner = ", ".join(f"{ty.render()}: {name}" for name, ty in self.fields)
        return f"TUPLE<{inner}>"


@dataclass(frozen=True, eq=False)
class SetType(MoaType):
    """``SET<T>``: a multi-set of elements (the NF2 collection)."""

    element: MoaType

    structure = "SET"

    def render(self) -> str:
        return f"SET<{self.element.render()}>"


@dataclass(frozen=True, eq=False)
class ListType(MoaType):
    """``LIST<T>``: an order-preserving collection (the structure "Henk
    Ernst Blok ... added to Moa", Acknowledgments).  Registered through
    the same extensibility hook as any third-party structure."""

    element: MoaType

    structure = "LIST"

    def render(self) -> str:
        return f"LIST<{self.element.render()}>"


@dataclass(frozen=True, eq=False)
class StatsType(MoaType):
    """Type of the ``stats`` query parameter: global collection
    statistics for the inference network (df table, collection size,
    average document length)."""

    structure = "STATS"

    def render(self) -> str:
        return "STATS"


# ----------------------------------------------------------------------
# Structure registry (the extensibility hook)
# ----------------------------------------------------------------------

#: A factory receives the raw DDL type arguments -- each either a parsed
#: MoaType or a bare identifier string (for base-type args like ``URL``)
#: -- and returns the constructed type.
StructureFactory = Callable[[Sequence[Union[MoaType, str]]], MoaType]

_STRUCTURES: Dict[str, StructureFactory] = {}


def register_structure(name: str, factory: StructureFactory) -> None:
    """Register structure *name* for DDL parsing and type construction.

    This is Moa's open complex-object extensibility: new structures can
    be added "similar to the well-known principle of base type
    extensibility in object-relational database systems" (section 2).
    """
    if name in _STRUCTURES and _STRUCTURES[name] is not factory:
        raise MoaTypeError(f"structure {name!r} already registered")
    _STRUCTURES[name] = factory


def structure_factory(name: str) -> StructureFactory:
    try:
        return _STRUCTURES[name]
    except KeyError:
        raise MoaTypeError(
            f"unknown structure {name!r}; known: {sorted(_STRUCTURES)}"
        ) from None


def structure_names() -> List[str]:
    return sorted(_STRUCTURES)


def _atomic_factory(args: Sequence[Union[MoaType, str]]) -> MoaType:
    if len(args) != 1 or not isinstance(args[0], str):
        raise MoaTypeError("Atomic takes exactly one base-type name")
    return AtomicType(args[0])


def _set_factory(args: Sequence[Union[MoaType, str]]) -> MoaType:
    if len(args) != 1 or not isinstance(args[0], MoaType):
        raise MoaTypeError("SET takes exactly one element type")
    return SetType(args[0])


def _list_factory(args: Sequence[Union[MoaType, str]]) -> MoaType:
    if len(args) != 1 or not isinstance(args[0], MoaType):
        raise MoaTypeError("LIST takes exactly one element type")
    return ListType(args[0])


def make_tuple_type(fields: Sequence[Tuple[str, MoaType]]) -> TupleType:
    """Public TUPLE constructor used by the DDL parser (TUPLE's fields
    carry names, so it does not fit the positional factory signature)."""
    return TupleType(tuple(fields))


register_structure("Atomic", _atomic_factory)
register_structure("SET", _set_factory)
register_structure("LIST", _list_factory)

# ----------------------------------------------------------------------
# Convenience predicates used across the compiler/typechecker
# ----------------------------------------------------------------------


def is_collection(ty: MoaType) -> bool:
    """SET and LIST (and any structure flagging itself a collection)."""
    return isinstance(ty, (SetType, ListType))


def element_type(ty: MoaType) -> MoaType:
    if isinstance(ty, (SetType, ListType)):
        return ty.element
    raise MoaTypeError(f"{ty.render()} is not a collection type")


def is_numeric_atomic(ty: MoaType) -> bool:
    return isinstance(ty, AtomicType) and ty.atom in ("int", "dbl", "oid", "bit")


def common_numeric(a: MoaType, b: MoaType) -> AtomicType:
    """Numeric promotion for scalar operators."""
    if not (is_numeric_atomic(a) and is_numeric_atomic(b)):
        raise MoaTypeError(
            f"numeric operator applied to {a.render()} and {b.render()}"
        )
    if "dbl" in (a.atom, b.atom):  # type: ignore[union-attr]
        return AtomicType("dbl")
    return AtomicType("int")
