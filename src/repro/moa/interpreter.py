"""Reference tuple-at-a-time interpreter for Moa queries.

This evaluator defines the *semantics* the flattening compiler must
reproduce: it walks the logical AST directly over Python values, one
element at a time -- the classical object-algebra evaluation strategy
that [BWK98] measures against.  It serves two purposes:

* **differential testing**: compiled plans must agree with it on random
  data (``tests/moa/test_compiler_vs_interpreter.py``);
* **benchmark E4**: the paper claims flattening to set-at-a-time BAT
  processing wins -- the interpreter is the tuple-at-a-time baseline.

Data model: a collection value is a list; TUPLE values are dicts;
CONTREP values are :class:`ContentRepresentation`; parameters are bound
by name (query -> list[str], stats -> CollectionStats).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.moa import ast
from repro.moa.errors import MoaRuntimeError
from repro.moa.functions import function_spec

_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Interpreter:
    """Evaluates logical ASTs over Python data."""

    def __init__(
        self,
        data: Dict[str, List[Any]],
        params: Optional[Dict[str, Any]] = None,
    ):
        self.data = data
        self.params = params or {}
        self._this_stack: List[Any] = []
        self._join_stack: List[Dict[int, Any]] = []

    # ------------------------------------------------------------------
    def run(self, node: ast.Expr) -> Any:
        return self.eval(node)

    def eval(self, node: ast.Expr) -> Any:
        if isinstance(node, ast.CollectionRef):
            try:
                return self.data[node.name]
            except KeyError:
                raise MoaRuntimeError(f"no data for collection {node.name!r}") from None
        if isinstance(node, ast.VarRef):
            try:
                return self.params[node.name]
            except KeyError:
                raise MoaRuntimeError(f"unbound parameter {node.name!r}") from None
        if isinstance(node, ast.This):
            return self._this(node.index)
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.AttrAccess):
            base = self.eval(node.base)
            if not isinstance(base, dict):
                raise MoaRuntimeError(f".{node.attr} on non-tuple value")
            return base[node.attr]
        if isinstance(node, ast.Map):
            collection = self.eval(node.over)
            out = []
            for element in collection:
                self._this_stack.append(element)
                try:
                    out.append(self.eval(node.body))
                finally:
                    self._this_stack.pop()
            return out
        if isinstance(node, ast.Select):
            collection = self.eval(node.over)
            out = []
            for element in collection:
                self._this_stack.append(element)
                try:
                    if self.eval(node.pred):
                        out.append(element)
                finally:
                    self._this_stack.pop()
            return out
        if isinstance(node, ast.Join):
            return self._join(node)
        if isinstance(node, ast.Semijoin):
            return self._semijoin(node)
        if isinstance(node, ast.Unnest):
            return self._unnest(node)
        if isinstance(node, ast.Nest):
            return self._nest(node)
        if isinstance(node, ast.TupleCons):
            return {name: self.eval(expr) for name, expr in node.fields}
        if isinstance(node, ast.FuncCall):
            args = [self.eval(a) for a in node.args]
            spec = function_spec(node.name)
            return spec.interpret(args, self)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        raise MoaRuntimeError(f"cannot evaluate {type(node).__name__}")

    # ------------------------------------------------------------------
    def _this(self, index: int) -> Any:
        if index == 0:
            if not self._this_stack:
                raise MoaRuntimeError("THIS outside a map/select body")
            return self._this_stack[-1]
        if not self._join_stack:
            raise MoaRuntimeError(f"THIS{index} outside a join body")
        return self._join_stack[-1][index]

    def _binop(self, node: ast.BinOp) -> Any:
        if node.op == "and":
            return bool(self.eval(node.left)) and bool(self.eval(node.right))
        if node.op == "or":
            return bool(self.eval(node.left)) or bool(self.eval(node.right))
        left = self.eval(node.left)
        right = self.eval(node.right)
        if node.op in _COMPARE:
            return _COMPARE[node.op](left, right)
        if node.op in _ARITH:
            return _ARITH[node.op](left, right)
        raise MoaRuntimeError(f"unknown operator {node.op!r}")

    def _join(self, node: ast.Join) -> List[dict]:
        left = self.eval(node.left)
        right = self.eval(node.right)
        out = []
        for l_elem in left:
            for r_elem in right:
                self._join_stack.append({1: l_elem, 2: r_elem})
                try:
                    if self.eval(node.pred):
                        merged = dict(l_elem)
                        merged.update(r_elem)
                        out.append(merged)
                finally:
                    self._join_stack.pop()
        return out

    def _semijoin(self, node: ast.Semijoin) -> List[Any]:
        left = self.eval(node.left)
        right = self.eval(node.right)
        out = []
        for l_elem in left:
            matched = False
            for r_elem in right:
                self._join_stack.append({1: l_elem, 2: r_elem})
                try:
                    if self.eval(node.pred):
                        matched = True
                finally:
                    self._join_stack.pop()
                if matched:
                    break
            if matched:
                out.append(l_elem)
        return out

    def _unnest(self, node: ast.Unnest) -> List[dict]:
        collection = self.eval(node.over)
        out = []
        for element in collection:
            children = element.get(node.attr) or []
            for child in children:
                merged = {k: v for k, v in element.items() if k != node.attr}
                if isinstance(child, dict):
                    merged.update(child)
                else:
                    merged[node.attr] = child
                out.append(merged)
        return out

    def _nest(self, node: ast.Nest) -> List[dict]:
        collection = self.eval(node.over)
        groups: Dict[Any, List[dict]] = {}
        order: List[Any] = []
        for element in collection:
            key = element[node.key]
            rest = {k: v for k, v in element.items() if k != node.key}
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(rest)
        return [{node.key: key, "group": groups[key]} for key in order]


def interpret(
    node: ast.Expr,
    data: Dict[str, List[Any]],
    params: Optional[Dict[str, Any]] = None,
) -> Any:
    """One-shot evaluation of a logical AST over Python data."""
    return Interpreter(data, params).run(node)
