"""Exception hierarchy for the Moa logical layer."""


class MoaError(Exception):
    """Base class for all Moa-level errors."""


class MoaParseError(MoaError):
    """DDL or query text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class MoaTypeError(MoaError):
    """Type checking failed: unknown attribute, wrong operand type,
    structure misuse (e.g. getBL on a non-CONTREP attribute)."""


class MoaCompileError(MoaError):
    """The flattening compiler met an expression it cannot translate."""


class MoaRuntimeError(MoaError):
    """Execution-time failure in the reference interpreter or executor."""
