"""Type checker / inference for Moa query ASTs.

Annotates every node's ``ty`` slot and resolves bare identifiers into
collection references (schema) or parameter references (``query``,
``stats`` -- bound at execution time).  Returns a *new* tree: the parser
cannot distinguish ``CollectionRef`` from ``VarRef``, so the checker
rewrites nodes as it types them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.moa import ast
from repro.moa.errors import MoaTypeError
from repro.moa.functions import function_spec
from repro.moa.types import (
    AtomicType,
    ListType,
    MoaType,
    SetType,
    TupleType,
    common_numeric,
    element_type,
    is_collection,
    is_numeric_atomic,
    make_tuple_type,
)

_ATOM_TO_BASE = {"int": "int", "dbl": "float", "str": "str", "bit": "bit", "oid": "oid"}

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITHMETIC_OPS = {"+", "-", "*", "/"}
_LOGICAL_OPS = {"and", "or"}


class _Context:
    """Binding context: the THIS stack and join THIS1/THIS2 bindings."""

    def __init__(self):
        self.this_stack: List[MoaType] = []
        self.join_stack: List[Dict[int, MoaType]] = []

    def push_this(self, ty: MoaType):
        self.this_stack.append(ty)

    def pop_this(self):
        self.this_stack.pop()

    def push_join(self, left: MoaType, right: MoaType):
        self.join_stack.append({1: left, 2: right})

    def pop_join(self):
        self.join_stack.pop()

    def this_type(self, index: int) -> MoaType:
        if index == 0:
            if not self.this_stack:
                raise MoaTypeError("THIS used outside a map/select body")
            return self.this_stack[-1]
        if not self.join_stack:
            raise MoaTypeError(f"THIS{index} used outside a join body")
        return self.join_stack[-1][index]


class TypeChecker:
    """Checks one query against a schema and parameter declarations."""

    def __init__(
        self,
        schema: Dict[str, MoaType],
        params: Optional[Dict[str, MoaType]] = None,
    ):
        self.schema = schema
        self.params = params or {}
        self.context = _Context()

    # ------------------------------------------------------------------
    def check(self, node: ast.Expr) -> ast.Expr:
        """Type the tree rooted at *node*; returns the rewritten tree."""
        method = getattr(self, f"_check_{type(node).__name__.lower()}", None)
        if method is None:
            raise MoaTypeError(f"cannot type {type(node).__name__}")
        return method(node)

    # -- leaves ----------------------------------------------------------
    def _check_collectionref(self, node: ast.CollectionRef) -> ast.Expr:
        if node.name in self.schema:
            node.ty = self.schema[node.name]
            return node
        if node.name in self.params:
            rewritten = ast.VarRef(name=node.name, line=node.line)
            rewritten.ty = self.params[node.name]
            return rewritten
        raise MoaTypeError(
            f"unknown name {node.name!r}: not a collection "
            f"({sorted(self.schema)}) nor a declared parameter "
            f"({sorted(self.params)})"
        )

    def _check_varref(self, node: ast.VarRef) -> ast.Expr:
        if node.name not in self.params:
            raise MoaTypeError(f"undeclared parameter {node.name!r}")
        node.ty = self.params[node.name]
        return node

    def _check_this(self, node: ast.This) -> ast.Expr:
        node.ty = self.context.this_type(node.index)
        return node

    def _check_literal(self, node: ast.Literal) -> ast.Expr:
        node.ty = AtomicType(_ATOM_TO_BASE[node.atom])
        return node

    # -- structure access -------------------------------------------------
    def _check_attraccess(self, node: ast.AttrAccess) -> ast.Expr:
        node.base = self.check(node.base)
        base_ty = node.base.ty
        if not isinstance(base_ty, TupleType):
            raise MoaTypeError(
                f"attribute access .{node.attr} on non-tuple {base_ty.render()}"
            )
        node.ty = base_ty.field_type(node.attr)
        return node

    # -- structure operations ----------------------------------------------
    def _check_map(self, node: ast.Map) -> ast.Expr:
        node.over = self.check(node.over)
        over_ty = node.over.ty
        if not is_collection(over_ty):
            raise MoaTypeError(f"map over non-collection {over_ty.render()}")
        self.context.push_this(element_type(over_ty))
        try:
            node.body = self.check(node.body)
        finally:
            self.context.pop_this()
        wrapper = ListType if isinstance(over_ty, ListType) else SetType
        node.ty = wrapper(node.body.ty)
        return node

    def _check_select(self, node: ast.Select) -> ast.Expr:
        node.over = self.check(node.over)
        over_ty = node.over.ty
        if not is_collection(over_ty):
            raise MoaTypeError(f"select over non-collection {over_ty.render()}")
        self.context.push_this(element_type(over_ty))
        try:
            node.pred = self.check(node.pred)
        finally:
            self.context.pop_this()
        if not _is_bit(node.pred.ty):
            raise MoaTypeError(
                f"select predicate must be boolean, got {node.pred.ty.render()}"
            )
        node.ty = over_ty
        return node

    def _check_join(self, node: ast.Join) -> ast.Expr:
        node.left = self.check(node.left)
        node.right = self.check(node.right)
        left_elem = _tuple_element(node.left.ty, "join left")
        right_elem = _tuple_element(node.right.ty, "join right")
        clash = set(left_elem.field_names()) & set(right_elem.field_names())
        if clash:
            raise MoaTypeError(f"join field name clash: {sorted(clash)}")
        self.context.push_join(left_elem, right_elem)
        try:
            node.pred = self.check(node.pred)
        finally:
            self.context.pop_join()
        if not _is_bit(node.pred.ty):
            raise MoaTypeError("join predicate must be boolean")
        merged = make_tuple_type(
            list(left_elem.fields) + list(right_elem.fields)
        )
        node.ty = SetType(merged)
        return node

    def _check_semijoin(self, node: ast.Semijoin) -> ast.Expr:
        node.left = self.check(node.left)
        node.right = self.check(node.right)
        left_elem = _tuple_element(node.left.ty, "semijoin left")
        right_elem = _tuple_element(node.right.ty, "semijoin right")
        self.context.push_join(left_elem, right_elem)
        try:
            node.pred = self.check(node.pred)
        finally:
            self.context.pop_join()
        if not _is_bit(node.pred.ty):
            raise MoaTypeError("semijoin predicate must be boolean")
        node.ty = node.left.ty
        return node

    def _check_unnest(self, node: ast.Unnest) -> ast.Expr:
        node.over = self.check(node.over)
        parent = _tuple_element(node.over.ty, "unnest")
        nested_ty = parent.field_type(node.attr)
        if not is_collection(nested_ty):
            raise MoaTypeError(
                f"unnest attribute {node.attr!r} is not a collection"
            )
        child = element_type(nested_ty)
        kept = [(n, t) for n, t in parent.fields if n != node.attr]
        if isinstance(child, TupleType):
            clash = {n for n, _ in kept} & set(child.field_names())
            if clash:
                raise MoaTypeError(f"unnest field name clash: {sorted(clash)}")
            merged = make_tuple_type(kept + list(child.fields))
        else:
            merged = make_tuple_type(kept + [(node.attr, child)])
        node.ty = SetType(merged)
        return node

    def _check_nest(self, node: ast.Nest) -> ast.Expr:
        node.over = self.check(node.over)
        elem = _tuple_element(node.over.ty, "nest")
        if not elem.has_field(node.key):
            raise MoaTypeError(f"nest key {node.key!r} is not a field")
        rest = [(n, t) for n, t in elem.fields if n != node.key]
        if not rest:
            raise MoaTypeError("nest needs at least one non-key field")
        group_ty = SetType(make_tuple_type(rest))
        node.ty = SetType(
            make_tuple_type([(node.key, elem.field_type(node.key)), ("group", group_ty)])
        )
        return node

    def _check_tuplecons(self, node: ast.TupleCons) -> ast.Expr:
        typed_fields = []
        new_fields = []
        for name, expr in node.fields:
            typed = self.check(expr)
            new_fields.append((name, typed))
            typed_fields.append((name, typed.ty))
        node.fields = new_fields
        node.ty = make_tuple_type(typed_fields)
        return node

    # -- functions and operators -------------------------------------------
    def _check_funccall(self, node: ast.FuncCall) -> ast.Expr:
        node.args = [self.check(a) for a in node.args]
        spec = function_spec(node.name)
        node.ty = spec.typecheck([a.ty for a in node.args])
        return node

    def _check_binop(self, node: ast.BinOp) -> ast.Expr:
        node.left = self.check(node.left)
        node.right = self.check(node.right)
        lt, rt = node.left.ty, node.right.ty
        if node.op in _ARITHMETIC_OPS:
            result = common_numeric(lt, rt)
            node.ty = AtomicType("float") if node.op == "/" else result
            return node
        if node.op in _COMPARISON_OPS:
            if isinstance(lt, AtomicType) and isinstance(rt, AtomicType):
                comparable = (
                    lt.atom == rt.atom
                    or (is_numeric_atomic(lt) and is_numeric_atomic(rt))
                )
                if not comparable:
                    raise MoaTypeError(
                        f"cannot compare {lt.render()} with {rt.render()}"
                    )
                node.ty = AtomicType("bit")
                return node
            raise MoaTypeError("comparison needs atomic operands")
        if node.op in _LOGICAL_OPS:
            if not (_is_bit(lt) and _is_bit(rt)):
                raise MoaTypeError(f"{node.op} needs boolean operands")
            node.ty = AtomicType("bit")
            return node
        raise MoaTypeError(f"unknown operator {node.op!r}")


def _is_bit(ty: Optional[MoaType]) -> bool:
    return isinstance(ty, AtomicType) and ty.atom == "bit"


def _tuple_element(ty: MoaType, where: str) -> TupleType:
    if not is_collection(ty):
        raise MoaTypeError(f"{where} operand is not a collection: {ty.render()}")
    elem = element_type(ty)
    if not isinstance(elem, TupleType):
        raise MoaTypeError(f"{where} elements must be tuples, got {elem.render()}")
    return elem


def typecheck(
    node: ast.Expr,
    schema: Dict[str, MoaType],
    params: Optional[Dict[str, MoaType]] = None,
) -> ast.Expr:
    """Type the query *node* against *schema* and *params*; returns the
    annotated (and possibly rewritten) tree."""
    return TypeChecker(schema, params).check(node)
