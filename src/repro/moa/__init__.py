"""Moa: the structurally object-oriented logical algebra of the Mirror DBMS.

Moa ([BWK98], Mirror paper section 2) gives the Mirror DBMS its logical
data model: *structures* (``TUPLE``, ``SET``, and extensions such as
``LIST`` and the IR-specific ``CONTREP``) compose complex object types
out of ``Atomic`` base types inherited from the physical layer.  Moa
queries (``map``, ``select``, ``join``, aggregates, structure-specific
operations like ``getBL``) are *flattened* into MIL programs over BATs
and executed set-at-a-time by the Monet substitute.

Pipeline::

    DDL text ----ddl.parse_define----> MoaType (schema)
    query text --parser.parse_query--> logical AST
    AST ---------typecheck-----------> typed AST
    typed AST ---optimizer-----------> rewritten AST
    AST ---------compiler------------> MIL program + result shape
    MIL ---------monet.mil-----------> BATs
    BATs --------executor------------> Python values

The package also contains a *reference interpreter*
(:mod:`repro.moa.interpreter`) that evaluates the same logical AST
tuple-at-a-time over plain Python objects.  It defines the semantics the
compiler must match (differential tests in ``tests/moa``) and serves as
the baseline of benchmark E4 (flattening vs. interpretation, the
[BWK98] claim).
"""

from repro.moa.ddl import parse_define, parse_schema
from repro.moa.errors import (
    MoaCompileError,
    MoaError,
    MoaParseError,
    MoaTypeError,
)
from repro.moa.executor import MoaExecutor
from repro.moa.parser import parse_query
from repro.moa.types import (
    AtomicType,
    ListType,
    MoaType,
    SetType,
    StatsType,
    TupleType,
    register_structure,
    structure_names,
)

# Importing the structures package registers the extension structures
# (CONTREP and its getBL operator) with the registries above.
import repro.moa.structures  # noqa: E402,F401  (registration side effect)

__all__ = [
    "parse_define",
    "parse_schema",
    "parse_query",
    "MoaExecutor",
    "MoaType",
    "AtomicType",
    "TupleType",
    "SetType",
    "ListType",
    "StatsType",
    "register_structure",
    "structure_names",
    "MoaError",
    "MoaParseError",
    "MoaTypeError",
    "MoaCompileError",
]
