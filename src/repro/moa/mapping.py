"""Logical-to-physical mapping: how Moa structures become BATs.

This module implements the "translation from the logical data model
into a different physical model" (Mirror paper, section 2) -- the data
independence layer.  Every top-level collection ``Lib`` of type
``SET<TUPLE<...>>`` is decomposed into named BATs in the buffer pool:

========================  =============================================
``Lib.__extent__``        [void position, tuple-oid] -- set membership
``Lib.<a>``               [void tuple-oid, value] -- Atomic attribute
``Lib.<s>.__nest__``      [void child-oid, parent-oid] -- SET/LIST attr
``Lib.<s>.<a>``           [void child-oid, value] -- nested attributes
``Lib.<s>.__value__``     [void child-oid, value] -- SET<Atomic> attr
``Lib.<s>.__index__``     [void child-oid, int] -- LIST order
========================  =============================================

Oids are *dense per collection* (tuple-oid == load position), the Monet
void-head discipline: every attribute access compiles to a positional
``fetchjoin`` instead of a value join.

Extension structures register their own mappers through
:func:`register_mapper`; :mod:`repro.moa.structures.contrep` adds the
inverted-file layout for ``CONTREP`` attributes this way, keeping the
kernel mapping code unaware of IR.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.moa.errors import MoaTypeError
from repro.moa.types import (
    AtomicType,
    ListType,
    MoaType,
    SetType,
    TupleType,
)
from repro.monet.bat import BAT, Column, VoidColumn, dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import FragmentationPolicy, fragment_bat

EXTENT_SUFFIX = "__extent__"
NEST_SUFFIX = "__nest__"
VALUE_SUFFIX = "__value__"
INDEX_SUFFIX = "__index__"

# ----------------------------------------------------------------------
# Fragmentation threshold
# ----------------------------------------------------------------------

#: Active (threshold, policy) pair.  When the threshold is set,
#: attribute BATs with at least that many BUNs are registered
#: fragmented (see :mod:`repro.monet.fragments`); ``None`` disables
#: transparent fragmentation (the seed behaviour).  A ContextVar keeps
#: the setting local to the thread/task doing the load, so concurrent
#: executors with different thresholds cannot cross-contaminate.
_FRAGMENTATION: ContextVar[Tuple[Optional[int], FragmentationPolicy]] = ContextVar(
    "moa_fragmentation", default=(None, FragmentationPolicy())
)


def set_fragment_threshold(
    threshold: Optional[int], policy: Optional[FragmentationPolicy] = None
) -> Optional[int]:
    """Set the fragmentation threshold (and optionally the policy) for
    the current thread/context; returns the previous threshold."""
    previous_threshold, previous_policy = _FRAGMENTATION.get()
    _FRAGMENTATION.set((threshold, policy if policy is not None else previous_policy))
    return previous_threshold


def get_fragment_threshold() -> Optional[int]:
    return _FRAGMENTATION.get()[0]


@contextmanager
def fragmentation(
    threshold: Optional[int], policy: Optional[FragmentationPolicy] = None
):
    """Scoped fragmentation threshold: loads inside the context register
    large attribute BATs fragmented; the previous setting is restored."""
    previous = _FRAGMENTATION.get()
    token = _FRAGMENTATION.set(
        (threshold, policy if policy is not None else previous[1])
    )
    try:
        yield
    finally:
        _FRAGMENTATION.reset(token)


def register_attribute(pool: BATBufferPool, name: str, bat: BAT) -> None:
    """Register an attribute BAT, fragmenting it when it crosses the
    active threshold.  All mapper ``load`` hooks go through here so
    fragmentation stays transparent to the logical layer."""
    threshold, policy = _FRAGMENTATION.get()
    if threshold is not None and len(bat) >= threshold:
        pool.register_fragmented(name, fragment_bat(bat, policy), replace=True)
    else:
        pool.register(name, bat, replace=True)


def append_attribute(pool: BATBufferPool, name: str, tails: Sequence[Any]) -> None:
    """Append tail values to an attribute BAT through the pool's
    copy-on-write/WAL path, promoting a monolithic registration to
    fragments when the append pushes it across the active threshold.
    All mapper ``append`` hooks go through here, mirroring
    :func:`register_attribute`."""
    appended = pool.append(name, tails=list(tails))
    threshold, policy = _FRAGMENTATION.get()
    if (
        threshold is not None
        and not pool.is_fragmented(name)
        and len(appended) >= threshold
    ):
        pool.register_fragmented(
            name, fragment_bat(appended, policy), replace=True
        )


class StructureMapper:
    """Load/reconstruct/append hooks for one structure kind.

    ``load`` receives the attribute values aligned with parent oids
    ``0..len(values)-1`` and must register BATs under *prefix*;
    ``reconstruct`` reads them back into Python values, one per parent.

    ``append`` is the incremental load path: it receives values aligned
    with *new* parent oids ``offset..offset+len(values)-1`` and must
    extend the registered BATs in place via :func:`append_attribute`
    (O(batch), never a reload).  A mapper advertises support with
    ``can_append``; callers must check it for the *whole* type tree
    before appending anything, so an unsupported branch (``False``,
    e.g. CONTREP's inverted file) falls back to reconstruct+reload
    without leaving a half-appended collection behind.

    ``delete``/``update`` are the in-place mutation paths (tombstone /
    patch deltas through ``pool.delete``/``pool.update``): *positions*
    are parent oids, and deletion renumbers the dense oid discipline so
    survivors stay ``0..n-1``.  As with append, ``can_delete`` /
    ``can_update`` gate the whole type tree before the first mutation;
    nested SET/LIST attributes answer ``False`` (child-side compaction
    would need a value join, not a positional gather), so tuples with
    nested members fall back to reconstruct+reload at the collection
    level.
    """

    def load(
        self,
        pool: BATBufferPool,
        prefix: str,
        ty: MoaType,
        values: Sequence[Any],
    ) -> None:
        raise NotImplementedError

    def reconstruct(
        self, pool: BATBufferPool, prefix: str, ty: MoaType, count: int
    ) -> List[Any]:
        raise NotImplementedError

    def can_append(self, ty: MoaType) -> bool:
        return False

    def append(
        self,
        pool: BATBufferPool,
        prefix: str,
        ty: MoaType,
        values: Sequence[Any],
        offset: int,
    ) -> None:
        raise NotImplementedError

    def can_delete(self, ty: MoaType) -> bool:
        return False

    def delete(
        self,
        pool: BATBufferPool,
        prefix: str,
        ty: MoaType,
        positions: Sequence[int],
    ) -> None:
        raise NotImplementedError

    def can_update(self, ty: MoaType) -> bool:
        return False

    def update(
        self,
        pool: BATBufferPool,
        prefix: str,
        ty: MoaType,
        positions: Sequence[int],
        values: Sequence[Any],
    ) -> None:
        raise NotImplementedError


_MAPPERS: Dict[Type[MoaType], StructureMapper] = {}


def register_mapper(type_cls: Type[MoaType], mapper: StructureMapper) -> None:
    """Register the physical mapper for a structure type class."""
    if type_cls in _MAPPERS and type(_MAPPERS[type_cls]) is not type(mapper):
        raise MoaTypeError(f"mapper for {type_cls.__name__} already registered")
    _MAPPERS[type_cls] = mapper


def mapper_for(ty: MoaType) -> StructureMapper:
    for cls in type(ty).__mro__:
        if cls in _MAPPERS:
            return _MAPPERS[cls]
    raise MoaTypeError(f"no physical mapper for {ty.render()}")


# ----------------------------------------------------------------------
# Kernel mappers
# ----------------------------------------------------------------------


class AtomicMapper(StructureMapper):
    """Atomic<B> attribute -> one [void, value] BAT."""

    def load(self, pool, prefix, ty: AtomicType, values):
        register_attribute(pool, prefix, dense_bat(ty.atom, list(values)))

    def reconstruct(self, pool, prefix, ty: AtomicType, count):
        bat = pool.lookup(prefix)
        if len(bat) != count:
            raise MoaTypeError(
                f"{prefix}: expected {count} values, found {len(bat)}"
            )
        return bat.tail_list()

    def can_append(self, ty: AtomicType) -> bool:
        return True

    def append(self, pool, prefix, ty: AtomicType, values, offset):
        append_attribute(pool, prefix, values)

    def can_delete(self, ty: AtomicType) -> bool:
        return True

    def delete(self, pool, prefix, ty: AtomicType, positions):
        pool.delete(prefix, positions)

    def can_update(self, ty: AtomicType) -> bool:
        return True

    def update(self, pool, prefix, ty: AtomicType, positions, values):
        pool.update(prefix, positions, values)


class TupleMapper(StructureMapper):
    """TUPLE attribute: recurse per field under ``prefix.field``."""

    def load(self, pool, prefix, ty: TupleType, values):
        for field_name, field_ty in ty.fields:
            field_values = [_field(v, field_name) for v in values]
            mapper_for(field_ty).load(
                pool, f"{prefix}.{field_name}", field_ty, field_values
            )

    def reconstruct(self, pool, prefix, ty: TupleType, count):
        columns = {
            field_name: mapper_for(field_ty).reconstruct(
                pool, f"{prefix}.{field_name}", field_ty, count
            )
            for field_name, field_ty in ty.fields
        }
        return [
            {name: columns[name][i] for name in columns} for i in range(count)
        ]

    def can_append(self, ty: TupleType) -> bool:
        return all(
            mapper_for(field_ty).can_append(field_ty)
            for _, field_ty in ty.fields
        )

    def append(self, pool, prefix, ty: TupleType, values, offset):
        for field_name, field_ty in ty.fields:
            field_values = [_field(v, field_name) for v in values]
            mapper_for(field_ty).append(
                pool, f"{prefix}.{field_name}", field_ty, field_values, offset
            )

    def can_delete(self, ty: TupleType) -> bool:
        return all(
            mapper_for(field_ty).can_delete(field_ty)
            for _, field_ty in ty.fields
        )

    def delete(self, pool, prefix, ty: TupleType, positions):
        for field_name, field_ty in ty.fields:
            mapper_for(field_ty).delete(
                pool, f"{prefix}.{field_name}", field_ty, positions
            )

    def can_update(self, ty: TupleType) -> bool:
        return all(
            mapper_for(field_ty).can_update(field_ty)
            for _, field_ty in ty.fields
        )

    def update(self, pool, prefix, ty: TupleType, positions, values):
        # Partial updates: only fields present in the value dicts are
        # patched (every dict must carry the same field set -- the DDL
        # SET clause guarantees this).
        touched = set(values[0].keys()) if values else set()
        for field_name, field_ty in ty.fields:
            if field_name not in touched:
                continue
            field_values = [_field(v, field_name) for v in values]
            mapper_for(field_ty).update(
                pool, f"{prefix}.{field_name}", field_ty, positions,
                field_values,
            )


class SetMapper(StructureMapper):
    """Nested SET attribute: __nest__ parent map + element payload."""

    ordered = False

    def load(self, pool, prefix, ty: SetType, values):
        parents: List[int] = []
        elements: List[Any] = []
        indexes: List[int] = []
        for parent_oid, collection in enumerate(values):
            items = list(collection) if collection is not None else []
            for index, item in enumerate(items):
                parents.append(parent_oid)
                elements.append(item)
                indexes.append(index)
        register_attribute(
            pool, f"{prefix}.{NEST_SUFFIX}", dense_bat("oid", parents)
        )
        if self.ordered:
            register_attribute(
                pool, f"{prefix}.{INDEX_SUFFIX}", dense_bat("int", indexes)
            )
        element_ty = ty.element
        if isinstance(element_ty, AtomicType):
            register_attribute(
                pool,
                f"{prefix}.{VALUE_SUFFIX}",
                dense_bat(element_ty.atom, elements),
            )
        else:
            mapper_for(element_ty).load(pool, prefix, element_ty, elements)

    def reconstruct(self, pool, prefix, ty: SetType, count):
        nest = pool.lookup(f"{prefix}.{NEST_SUFFIX}")
        parents = nest.tail_values()
        element_ty = ty.element
        if isinstance(element_ty, AtomicType):
            elements = pool.lookup(f"{prefix}.{VALUE_SUFFIX}").tail_list()
        else:
            elements = mapper_for(element_ty).reconstruct(
                pool, prefix, element_ty, len(nest)
            )
        out: List[List[Any]] = [[] for _ in range(count)]
        if self.ordered:
            order = pool.lookup(f"{prefix}.{INDEX_SUFFIX}").tail_values()
            by_parent: Dict[int, List] = {}
            for child, parent in enumerate(parents):
                by_parent.setdefault(int(parent), []).append(
                    (int(order[child]), elements[child])
                )
            for parent, items in by_parent.items():
                out[parent] = [e for _, e in sorted(items)]
        else:
            for child, parent in enumerate(parents):
                out[int(parent)].append(elements[child])
        return out

    def can_append(self, ty: SetType) -> bool:
        element_ty = ty.element
        if isinstance(element_ty, AtomicType):
            return True
        return mapper_for(element_ty).can_append(element_ty)

    def append(self, pool, prefix, ty: SetType, values, offset):
        # New children pick up oids after the existing ones, so the
        # recursion offset is the current __nest__ cardinality.
        child_base = _attribute_len(pool, f"{prefix}.{NEST_SUFFIX}")
        parents: List[int] = []
        elements: List[Any] = []
        indexes: List[int] = []
        for i, collection in enumerate(values):
            items = list(collection) if collection is not None else []
            for index, item in enumerate(items):
                parents.append(offset + i)
                elements.append(item)
                indexes.append(index)
        append_attribute(pool, f"{prefix}.{NEST_SUFFIX}", parents)
        if self.ordered:
            append_attribute(pool, f"{prefix}.{INDEX_SUFFIX}", indexes)
        element_ty = ty.element
        if isinstance(element_ty, AtomicType):
            append_attribute(pool, f"{prefix}.{VALUE_SUFFIX}", elements)
        else:
            mapper_for(element_ty).append(
                pool, prefix, element_ty, elements, child_base
            )


class ListMapper(SetMapper):
    """LIST attribute: a SET plus an explicit order column."""

    ordered = True


register_mapper(AtomicType, AtomicMapper())
register_mapper(TupleType, TupleMapper())
register_mapper(SetType, SetMapper())
register_mapper(ListType, ListMapper())


def _attribute_len(pool: BATBufferPool, name: str) -> int:
    """Cardinality of an attribute BAT without coalescing fragments."""
    if pool.is_fragmented(name):
        return len(pool.lookup_fragments(name))
    return len(pool.lookup(name))


def _field(value: Any, name: str) -> Any:
    if isinstance(value, dict):
        if name not in value:
            raise MoaTypeError(f"tuple value missing field {name!r}")
        return value[name]
    attr = getattr(value, name, None)
    if attr is None:
        raise MoaTypeError(
            f"cannot read field {name!r} from {type(value).__name__}"
        )
    return attr


# ----------------------------------------------------------------------
# Top-level collections
# ----------------------------------------------------------------------


def load_collection(
    pool: BATBufferPool, name: str, ty: MoaType, values: Sequence[Any]
) -> None:
    """Load a top-level collection: ``SET<TUPLE<...>>`` (or SET of
    atomics) decomposed under *name* plus its extent BAT."""
    if not isinstance(ty, (SetType, ListType)):
        raise MoaTypeError(
            f"top-level collection must be a SET/LIST, got {ty.render()}"
        )
    values = list(values)
    count = len(values)
    extent = BAT(
        VoidColumn(0, count),
        Column("oid", np.arange(count, dtype=np.int64)),
        tkey=True,
        tsorted=True,
    )
    # The extent stays monolithic: it is the spine every reconstruction
    # counts against and its tkey/tsorted flags must survive exactly.
    pool.register(f"{name}.{EXTENT_SUFFIX}", extent, replace=True)
    element_ty = ty.element
    if isinstance(element_ty, AtomicType):
        register_attribute(
            pool,
            f"{name}.{VALUE_SUFFIX}",
            dense_bat(element_ty.atom, values),
        )
    else:
        mapper_for(element_ty).load(pool, name, element_ty, values)


def can_append_collection(ty: MoaType) -> bool:
    """Whether a collection of type *ty* supports the incremental
    append path end to end (every mapper in the type tree implements
    ``append``)."""
    if not isinstance(ty, (SetType, ListType)):
        return False
    element_ty = ty.element
    if isinstance(element_ty, AtomicType):
        return True
    return mapper_for(element_ty).can_append(element_ty)


def append_collection(
    pool: BATBufferPool, name: str, ty: MoaType, values: Sequence[Any]
) -> Optional[int]:
    """Append *values* to an already-loaded collection in O(batch).

    New tuples get the next dense oids; the extent and every attribute
    BAT grow through the pool's copy-on-write append (delta tails, WAL
    logged), so concurrent snapshot readers keep seeing the pre-append
    state.  Returns the new cardinality, or ``None`` when any mapper in
    the type tree lacks an append hook (e.g. CONTREP's inverted file)
    -- the caller must then fall back to reconstruct+reload.  Support
    is checked for the whole tree *before* the first append so the
    fallback never observes a half-appended collection.
    """
    if not can_append_collection(ty):
        return None
    values = list(values)
    base = collection_count(pool, name)
    count = base + len(values)
    if not values:
        return count
    # The extent stays monolithic (see load_collection): appending the
    # next dense oid run keeps its tkey/tsorted flags intact.
    pool.append(f"{name}.{EXTENT_SUFFIX}", tails=list(range(base, count)))
    element_ty = ty.element  # type: ignore[union-attr]
    if isinstance(element_ty, AtomicType):
        append_attribute(pool, f"{name}.{VALUE_SUFFIX}", values)
    else:
        mapper_for(element_ty).append(pool, name, element_ty, values, base)
    return count


def can_delete_collection(ty: MoaType) -> bool:
    """Whether a collection of type *ty* supports positional delete end
    to end (every mapper in the type tree implements ``delete``)."""
    if not isinstance(ty, (SetType, ListType)):
        return False
    element_ty = ty.element
    if isinstance(element_ty, AtomicType):
        return True
    return mapper_for(element_ty).can_delete(element_ty)


def delete_collection(
    pool: BATBufferPool, name: str, ty: MoaType, positions: Sequence[int]
) -> Optional[int]:
    """Delete the tuples at extent *positions* (== dense oids) in
    O(changed fragments).

    Every attribute BAT drops the same positions through the pool's
    tombstone-delta path (``pool.delete``: copy-on-write, WAL logged),
    and the extent is renumbered so surviving oids stay the dense run
    ``0..n-1`` -- the void-head discipline every positional fetchjoin
    relies on.  Returns the new cardinality, or ``None`` when any
    mapper in the type tree lacks a delete hook (nested SET/LIST,
    CONTREP) -- the caller must fall back to reconstruct+reload.
    """
    if not can_delete_collection(ty):
        return None
    positions = sorted({int(p) for p in positions})
    count = collection_count(pool, name)
    if not positions:
        return count
    element_ty = ty.element  # type: ignore[union-attr]
    if isinstance(element_ty, AtomicType):
        pool.delete(f"{name}.{VALUE_SUFFIX}", positions)
    else:
        mapper_for(element_ty).delete(pool, name, element_ty, positions)
    # The extent last: its tail is renumbered back to the dense run so
    # a crash replaying the WAL reproduces the same final state.
    pool.delete(
        f"{name}.{EXTENT_SUFFIX}", positions, renumber_dense_tails=True
    )
    return count - len(positions)


def can_update_collection(ty: MoaType, fields: Optional[Sequence[str]] = None) -> bool:
    """Whether a collection of type *ty* supports positional update.
    With *fields* given (a tuple element's touched field names), only
    those branches of the type tree are checked, so a partial update
    that leaves a nested attribute alone still takes the fast path."""
    if not isinstance(ty, (SetType, ListType)):
        return False
    element_ty = ty.element
    if isinstance(element_ty, AtomicType):
        return True
    if fields is not None and isinstance(element_ty, TupleType):
        by_name = dict(element_ty.fields)
        return all(
            f in by_name and mapper_for(by_name[f]).can_update(by_name[f])
            for f in fields
        )
    return mapper_for(element_ty).can_update(element_ty)


def update_collection(
    pool: BATBufferPool,
    name: str,
    ty: MoaType,
    positions: Sequence[int],
    values: Sequence[Any],
) -> Optional[int]:
    """Patch the tuples at extent *positions* with *values* (aligned;
    for TUPLE elements each value is a dict of the fields to set, all
    dicts carrying the same field set).  Attribute tails are patched
    through the pool's patch-delta path (``pool.update``); untouched
    attributes and fragments are shared by reference.  Returns the
    cardinality, or ``None`` when a touched branch lacks an update
    hook -- the caller must fall back to reconstruct+reload.
    """
    element_ty = ty.element if isinstance(ty, (SetType, ListType)) else None
    fields = None
    if isinstance(element_ty, TupleType) and values:
        first = values[0]
        if isinstance(first, dict):
            fields = list(first.keys())
    if not can_update_collection(ty, fields):
        return None
    count = collection_count(pool, name)
    if not len(positions):
        return count
    if isinstance(element_ty, AtomicType):
        pool.update(f"{name}.{VALUE_SUFFIX}", positions, values)
    else:
        mapper_for(element_ty).update(pool, name, element_ty, positions, values)
    return count


def collection_count(pool: BATBufferPool, name: str) -> int:
    """Cardinality of a loaded collection."""
    return len(pool.lookup(f"{name}.{EXTENT_SUFFIX}"))


def reconstruct_collection(
    pool: BATBufferPool, name: str, ty: MoaType
) -> List[Any]:
    """Read a loaded collection back into Python values (inverse of
    :func:`load_collection`; round-trip tested)."""
    count = collection_count(pool, name)
    element_ty = ty.element  # type: ignore[union-attr]
    if isinstance(element_ty, AtomicType):
        return pool.lookup(f"{name}.{VALUE_SUFFIX}").tail_list()
    return mapper_for(element_ty).reconstruct(pool, name, element_ty, count)


def attribute_bat_names(name: str, ty: MoaType) -> List[str]:
    """All BAT names a collection of type *ty* occupies (catalog tool)."""
    names: List[str] = [f"{name}.{EXTENT_SUFFIX}"]

    def visit(prefix: str, t: MoaType) -> None:
        if isinstance(t, AtomicType):
            names.append(prefix)
            return
        if isinstance(t, TupleType):
            for field_name, field_ty in t.fields:
                visit(f"{prefix}.{field_name}", field_ty)
            return
        if isinstance(t, (SetType, ListType)):
            names.append(f"{prefix}.{NEST_SUFFIX}")
            if isinstance(t, ListType):
                names.append(f"{prefix}.{INDEX_SUFFIX}")
            if isinstance(t.element, AtomicType):
                names.append(f"{prefix}.{VALUE_SUFFIX}")
            else:
                visit(prefix, t.element)
            return
        # Extension structures: ask their mapper if it cooperates.
        mapper = mapper_for(t)
        extra = getattr(mapper, "bat_names", None)
        if extra is not None:
            names.extend(extra(prefix))
        else:  # pragma: no cover - defensive
            names.append(prefix)

    element_ty = ty.element  # type: ignore[union-attr]
    if isinstance(element_ty, AtomicType):
        names.append(f"{name}.{VALUE_SUFFIX}")
    else:
        visit(name, element_ty)
    return names
