"""End-to-end Moa query execution.

``MoaExecutor`` drives the full pipeline of the Mirror DBMS's logical
layer::

    text -> parse -> typecheck -> optimize -> flatten to MIL -> run
         -> reconstruct nested Python values

Parameters are bound by Python value: a ``list[str]`` binds a
``SET<Atomic<str>>`` (the paper's ``query``), a
:class:`repro.ir.stats.CollectionStats` binds ``stats``.  Execution
modes select the benchmark configurations:

* ``optimize=True, eager_columns=False`` -- the real system;
* ``optimize=False, eager_columns=True`` -- the unoptimized plan
  (bench E5);
* :meth:`MoaExecutor.execute_interpreted` -- the tuple-at-a-time
  reference baseline (bench E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.ir.stats import CollectionStats
from repro.moa import ast
from repro.moa.compiler import (
    AtomCol,
    CompiledCollection,
    CompiledQuery,
    CompiledScalar,
    Compiler,
    ConstCol,
    ContrepCols,
    ContrepLazy,
    LazyCol,
    LazyNestedSet,
    NestedSet,
    Rep,
    TupleCols,
)
from repro.moa.errors import MoaRuntimeError, MoaTypeError
from repro.moa.interpreter import Interpreter
from repro.moa.optimizer import optimize as optimize_ast
from repro.moa.parser import parse_query
from repro.moa.typecheck import typecheck
from repro.moa.types import AtomicType, MoaType, SetType, StatsType
from repro.monet.bat import dense_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import FragmentationPolicy
from repro.monet.mil import MILInterpreter


@dataclass
class QueryResult:
    """Outcome of an executed Moa query."""

    value: Any
    plan: str
    operator_counts: Dict[str, int] = field(default_factory=dict)
    compiled: Optional[CompiledQuery] = None
    #: Catalog epoch the plan's snapshot was pinned at (the
    #: transaction's epoch when run through one).
    epoch: Optional[int] = None


def infer_param_type(value: Any) -> MoaType:
    """Moa type of a Python parameter value."""
    if isinstance(value, CollectionStats):
        return StatsType()
    if isinstance(value, (list, tuple)):
        if all(isinstance(v, str) for v in value):
            return SetType(AtomicType("str"))
        if all(isinstance(v, bool) for v in value):
            return SetType(AtomicType("bit"))
        if all(isinstance(v, int) for v in value):
            return SetType(AtomicType("int"))
        if all(isinstance(v, (int, float)) for v in value):
            return SetType(AtomicType("float"))
        raise MoaTypeError("parameter collections must be homogeneous atoms")
    raise MoaTypeError(
        f"cannot infer a Moa type for parameter of type {type(value).__name__}"
    )


class MoaExecutor:
    """Executes Moa queries against a BAT buffer pool.

    ``fragment_threshold`` is the executor's physical-layout knob: when
    set, bulk loads performed through this executor's facade (see
    :meth:`load` and :class:`repro.core.mirror.MirrorDBMS`) register
    attribute BATs of at least that many BUNs as horizontal fragments
    (:mod:`repro.monet.fragments`).  The MIL interpreter executes
    fragment-aware: plans over fragmented attributes run their hot
    operators fragment-parallel end-to-end (``fragment_policy`` is
    threaded through to govern intermediate re-fragmentation), and only
    the final result reconstruction materializes.  The policy also
    carries the *executor backend* choice: ``FragmentationPolicy
    (backend="process")`` pins this executor's plans to the
    process-pool backend for GIL-bound object-dtype (str) predicates,
    while ``backend=None`` (the default) follows the live module
    default (``REPRO_EXECUTOR_BACKEND`` / calibrated tuning persisted
    in the BBP catalog).

    One executor is safe to share across threads: compilation
    snapshots the schema dict, each run builds its own environment, and
    the MIL interpreter instance carries no per-run state.  The only
    caveat is the write path -- :meth:`load` (and the MirrorDBMS DDL /
    bulk-load facade above it) must be externally serialized, which
    :class:`repro.core.mirror.MirrorDBMS` does with its own lock.
    """

    def __init__(
        self,
        pool: BATBufferPool,
        schema: Dict[str, MoaType],
        *,
        fragment_threshold: Optional[int] = None,
        fragment_policy: Optional[FragmentationPolicy] = None,
    ):
        self.pool = pool
        self.schema = schema
        self.fragment_threshold = fragment_threshold
        self.fragment_policy = fragment_policy
        self.mil = MILInterpreter(pool, fragment_policy=fragment_policy)

    def load(self, name: str, ty: MoaType, values: List[Any]) -> None:
        """Load a collection under this executor's fragmentation
        threshold (delegates to :func:`repro.moa.mapping.load_collection`)."""
        from repro.moa.mapping import fragmentation, load_collection

        if self.fragment_threshold is None:
            load_collection(self.pool, name, ty, values)
        else:
            with fragmentation(self.fragment_threshold, self.fragment_policy):
                load_collection(self.pool, name, ty, values)

    def append(self, name: str, ty: MoaType, values: List[Any]) -> Optional[int]:
        """Append tuples to a loaded collection in O(batch) through the
        pool's copy-on-write delta path (delegates to
        :func:`repro.moa.mapping.append_collection`).  Returns the new
        cardinality, or ``None`` when the type tree has a mapper without
        an append hook -- the caller must fall back to a full reload.
        Like :meth:`load`, calls must be externally serialized."""
        from repro.moa.mapping import append_collection, fragmentation

        if self.fragment_threshold is None:
            return append_collection(self.pool, name, ty, values)
        with fragmentation(self.fragment_threshold, self.fragment_policy):
            return append_collection(self.pool, name, ty, values)

    def delete(self, name: str, ty: MoaType, positions: List[int]) -> Optional[int]:
        """Delete the tuples at extent *positions* through the pool's
        tombstone-delta path (delegates to
        :func:`repro.moa.mapping.delete_collection`).  Returns the new
        cardinality, or ``None`` when the type tree has a mapper without
        a delete hook -- the caller must fall back to a full reload.
        Like :meth:`load`, calls must be externally serialized."""
        from repro.moa.mapping import delete_collection

        return delete_collection(self.pool, name, ty, positions)

    def update(
        self, name: str, ty: MoaType, positions: List[int], values: List[Any]
    ) -> Optional[int]:
        """Patch the tuples at extent *positions* through the pool's
        patch-delta path (delegates to
        :func:`repro.moa.mapping.update_collection`).  Returns the
        cardinality, or ``None`` on a type tree without update hooks."""
        from repro.moa.mapping import update_collection

        return update_collection(self.pool, name, ty, positions, values)

    # ------------------------------------------------------------------
    def prepare(
        self,
        query: Union[str, ast.Expr],
        params: Optional[Dict[str, Any]] = None,
        *,
        optimize: bool = True,
        eager_columns: bool = False,
        cse: bool = True,
    ) -> CompiledQuery:
        """Parse/typecheck/optimize/compile without running."""
        params = params or {}
        param_types = {name: infer_param_type(v) for name, v in params.items()}
        node = parse_query(query) if isinstance(query, str) else query
        # Snapshot the schema: the service layer shares one executor
        # across sessions, and a concurrent `define` mutating the dict
        # mid-typecheck must not corrupt this compilation.
        schema = dict(self.schema)
        typed = typecheck(node, schema, param_types)
        if optimize:
            typed = optimize_ast(typed)
            typed = typecheck(typed, schema, param_types)
        compiler = Compiler(
            schema, param_types, eager_columns=eager_columns, cse=cse
        )
        compiled = compiler.compile_query(typed)
        _finalize(compiler, compiled)
        compiled.program = compiler.program()
        return compiled

    def execute(
        self,
        query: Union[str, ast.Expr],
        params: Optional[Dict[str, Any]] = None,
        *,
        optimize: bool = True,
        eager_columns: bool = False,
        cse: bool = True,
        checkpoint: Optional[Callable[[], None]] = None,
        reader: Any = None,
    ) -> QueryResult:
        """Full pipeline: compile, run the MIL plan, reconstruct.

        *checkpoint* is the per-query cancellation/deadline hook passed
        through to the MIL interpreter loop (see
        :meth:`repro.monet.mil.MILInterpreter.run_program`); *reader*
        is an already-pinned catalog snapshot for transaction-scoped
        reads (one epoch across several statements)."""
        params = params or {}
        compiled = self.prepare(
            query,
            params,
            optimize=optimize,
            eager_columns=eager_columns,
            cse=cse,
        )
        return self.run_compiled(
            compiled, params, checkpoint=checkpoint, reader=reader
        )

    def run_compiled(
        self,
        compiled: CompiledQuery,
        params: Optional[Dict[str, Any]] = None,
        *,
        checkpoint: Optional[Callable[[], None]] = None,
        reader: Any = None,
    ) -> QueryResult:
        """Run an already-compiled plan (prepared-query path)."""
        env = self._bind(params or {})
        result = self.mil.run(
            compiled.program, env, checkpoint=checkpoint, reader=reader
        )
        value = _reconstruct_result(compiled.result, result.env)
        return QueryResult(
            value=value,
            plan=compiled.program,
            operator_counts=dict(result.stats),
            compiled=compiled,
            epoch=result.epoch,
        )

    def execute_interpreted(
        self,
        query: Union[str, ast.Expr],
        data: Dict[str, List[Any]],
        params: Optional[Dict[str, Any]] = None,
        *,
        optimize: bool = False,
    ) -> Any:
        """Reference tuple-at-a-time evaluation over Python *data*
        (the [BWK98] baseline; no BATs involved)."""
        params = params or {}
        param_types = {name: infer_param_type(v) for name, v in params.items()}
        node = parse_query(query) if isinstance(query, str) else query
        schema = dict(self.schema)
        typed = typecheck(node, schema, param_types)
        if optimize:
            typed = optimize_ast(typed)
            typed = typecheck(typed, schema, param_types)
        return Interpreter(data, params).run(typed)

    # ------------------------------------------------------------------
    def _bind(self, params: Dict[str, Any]) -> Dict[str, Any]:
        env: Dict[str, Any] = {}
        for name, value in params.items():
            if isinstance(value, CollectionStats):
                env.update(value.mil_bindings(name))
            elif isinstance(value, (list, tuple)):
                atom = infer_param_type(value).element.atom  # type: ignore[union-attr]
                env[name] = dense_bat(atom, list(value))
            else:
                raise MoaTypeError(
                    f"cannot bind parameter {name!r} of type "
                    f"{type(value).__name__}"
                )
        return env


# ----------------------------------------------------------------------
# Result finalization and reconstruction
# ----------------------------------------------------------------------


def _finalize(compiler: Compiler, compiled: CompiledQuery) -> None:
    """Force every lazy/const rep in the result so the executor only
    meets materialized variables."""
    result = compiled.result
    if isinstance(result, CompiledScalar):
        return
    result.elem = _finalize_rep(compiler, result.elem, result.spine, result)


def _finalize_rep(
    compiler: Compiler, rep: Rep, head_source: str, cc: CompiledCollection
) -> Rep:
    if isinstance(rep, AtomCol):
        return rep
    if isinstance(rep, LazyCol):
        var = compiler.emit(f'{rep.gather}.join(bat("{rep.bat_name}"))', "c")
        return AtomCol(var, rep.atom)
    if isinstance(rep, ConstCol):
        from repro.moa.compiler import _literal_mil

        var = compiler.emit(
            f'const({head_source}, "{rep.atom}", {_literal_mil(rep.value, rep.atom)})',
            "c",
        )
        return AtomCol(var, rep.atom)
    if isinstance(rep, TupleCols):
        return TupleCols(
            {
                name: _finalize_rep(compiler, r, head_source, cc)
                for name, r in rep.fields.items()
            }
        )
    if isinstance(rep, LazyNestedSet):
        forced = compiler.force_nested(rep, cc)
        return _finalize_rep(compiler, forced, head_source, cc)
    if isinstance(rep, NestedSet):
        elem = _finalize_rep(compiler, rep.elem, rep.parent, cc)
        return NestedSet(parent=rep.parent, elem=elem)
    if isinstance(rep, ContrepLazy):
        return compiler.force_contrep(rep, cc)
    if isinstance(rep, ContrepCols):
        return rep
    # Extension reps may provide their own materialization hook; the
    # result must again be finalizable (typically AtomCols/TupleCols or
    # a rep with a `reconstruct(env, count)` method).
    finalize_hook = getattr(rep, "finalize_rep", None)
    if finalize_hook is not None:
        return _finalize_rep(compiler, finalize_hook(compiler), head_source, cc)
    if hasattr(rep, "reconstruct"):
        return rep
    raise MoaRuntimeError(f"cannot finalize rep {type(rep).__name__}")


def _reconstruct_result(
    result: Union[CompiledCollection, CompiledScalar], env: Dict[str, Any]
) -> Any:
    if isinstance(result, CompiledScalar):
        return env[result.var]
    count = len(env[result.spine])
    return _reconstruct_rep(result.elem, env, count)


def _reconstruct_rep(rep: Rep, env: Dict[str, Any], count: int) -> List[Any]:
    if isinstance(rep, AtomCol):
        bat = env[rep.var]
        values = bat.tail_list()
        if len(values) != count:
            raise MoaRuntimeError(
                f"column {rep.var} has {len(values)} values, expected {count}"
            )
        return values
    if isinstance(rep, TupleCols):
        columns = {
            name: _reconstruct_rep(r, env, count)
            for name, r in rep.fields.items()
        }
        return [
            {name: columns[name][i] for name in columns} for i in range(count)
        ]
    if isinstance(rep, NestedSet):
        parent_bat = env[rep.parent]
        pair_count = len(parent_bat)
        inner = _reconstruct_rep(rep.elem, env, pair_count)
        out: List[List[Any]] = [[] for _ in range(count)]
        parents = parent_bat.tail_values()
        for pair in range(pair_count):
            out[int(parents[pair])].append(inner[pair])
        return out
    if isinstance(rep, ContrepCols):
        from repro.moa.structures.contrep import ContentRepresentation

        owners = env[rep.owner].tail_values()
        terms = env[rep.term].tail_values()
        tfs = env[rep.tf].tail_values()
        lengths = env[rep.doclen].tail_values()
        per_doc: List[Dict[str, int]] = [dict() for _ in range(count)]
        for i in range(len(owners)):
            per_doc[int(owners[i])][terms[i]] = int(tfs[i])
        return [
            ContentRepresentation(per_doc[i], int(lengths[i]))
            for i in range(count)
        ]
    reconstruct_hook = getattr(rep, "reconstruct", None)
    if reconstruct_hook is not None:
        return reconstruct_hook(env, count)
    raise MoaRuntimeError(f"cannot reconstruct rep {type(rep).__name__}")
