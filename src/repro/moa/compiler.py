"""The flattening compiler: Moa logical algebra -> MIL over BATs.

This is the reproduction of [BWK98] ("Flattening an object algebra to
provide performance"): every Moa expression is translated to a
straight-line MIL program in which each step is a whole-column BAT
operation -- the set-at-a-time execution the Mirror paper builds on.

Compile-time value representations
----------------------------------

A compiled collection is position-aligned: positions are dense
``0..n-1`` and every column representation is (or can be forced into) a
BAT ``[void position, value]``.  The *spine* maps positions back to the
base-collection oids (identity right after a collection scan, a gather
map after selections/joins); it doubles as the gather vector for lazily
loaded columns, which is how dead-column elimination falls out of the
design: a column that is never forced is never loaded.

===============  ======================================================
``AtomCol``      materialized column [void pos, value]
``ConstCol``     compile-time constant (broadcast on demand)
``LazyCol``      unloaded base column + the gather var to load through
``TupleCols``    named field reps
``NestedSet``    pairs table: parent [void pair, parent-pos] + element
``ContrepLazy``  unforced CONTREP attribute (base BAT prefix + gather)
``ContrepCols``  forced CONTREP postings restricted to current spine
===============  ======================================================

Extension functions (``getBL``) register compile hooks via
:func:`repro.moa.functions.register_compile_hook`; the hook receives
the compiler and emits MIL like any kernel operation -- the "new
probabilistic operators at the physical level" of section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.moa import ast
from repro.moa.errors import MoaCompileError
from repro.moa.functions import function_spec
from repro.moa.mapping import EXTENT_SUFFIX, NEST_SUFFIX, VALUE_SUFFIX
from repro.moa.types import AtomicType, ListType, MoaType, SetType, TupleType, is_collection
from repro.monet.multiplex import scalar_op

# ----------------------------------------------------------------------
# Compile-time representations
# ----------------------------------------------------------------------


@dataclass
class AtomCol:
    var: str
    atom: str


@dataclass
class ConstCol:
    value: Any
    atom: str


@dataclass
class LazyCol:
    bat_name: str
    atom: str
    gather: str  # var: BAT [void pos, base-oid]


@dataclass
class TupleCols:
    fields: Dict[str, "Rep"]


@dataclass
class NestedSet:
    parent: str  # var: BAT [void pair-pos, parent-pos]
    elem: "Rep"  # aligned to pair positions


@dataclass
class LazyNestedSet:
    prefix: str  # base BAT prefix (collection.attr)
    elem_ty: MoaType
    gather: str
    ordered: bool = False


@dataclass
class ContrepLazy:
    prefix: str
    gather: str


@dataclass
class ContrepCols:
    owner: str  # [void p, parent-pos]
    term: str  # [void p, str]
    tf: str  # [void p, int]
    doclen: str  # [void pos, int] aligned to current positions


Rep = Union[
    AtomCol, ConstCol, LazyCol, TupleCols, NestedSet, LazyNestedSet,
    ContrepLazy, ContrepCols,
]


@dataclass
class CompiledCollection:
    spine: str  # var: BAT [void pos, base-oid]; the gather vector
    elem: Rep
    ty: MoaType


@dataclass
class CompiledScalar:
    var: str
    atom: str


@dataclass
class CompiledQuery:
    """A finished plan: MIL text plus the shape needed to pull results."""

    program: str
    result: Union[CompiledCollection, CompiledScalar]
    params: Dict[str, MoaType]
    statements: int = 0


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------


class Compiler:
    """Compiles one typed query AST into a MIL program.

    Parameters
    ----------
    schema:
        collection name -> MoaType (for BAT naming).
    params:
        parameter name -> MoaType (runtime-bound; see executor).
    eager_columns:
        load *every* attribute column at collection scans (disables
        dead-column elimination; the "unoptimized" mode of bench E5).
    cse:
        emit-level common-subexpression elimination: identical
        right-hand sides reuse the existing variable.
    """

    def __init__(
        self,
        schema: Dict[str, MoaType],
        params: Optional[Dict[str, MoaType]] = None,
        *,
        eager_columns: bool = False,
        cse: bool = True,
    ):
        self.schema = schema
        self.params = params or {}
        self.eager_columns = eager_columns
        self.cse = cse
        self.lines: List[str] = []
        self._counter = 0
        self._rhs_cache: Dict[str, str] = {}
        self._context: List[CompiledCollection] = []

    # -- emission helpers ------------------------------------------------
    def fresh(self, prefix: str = "t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def emit_raw(self, line: str) -> None:
        self.lines.append(line)

    def emit(self, rhs: str, prefix: str = "t") -> str:
        """Assign *rhs* to a fresh variable; with CSE enabled, identical
        right-hand sides share one variable."""
        if self.cse and rhs in self._rhs_cache:
            return self._rhs_cache[rhs]
        var = self.fresh(prefix)
        self.lines.append(f"{var} := {rhs};")
        if self.cse:
            self._rhs_cache[rhs] = var
        return var

    def program(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    # -- entry point -------------------------------------------------------
    def compile_query(self, node: ast.Expr) -> CompiledQuery:
        result = self.compile_top(node)
        return CompiledQuery(
            program=self.program(),
            result=result,
            params=dict(self.params),
            statements=len(self.lines),
        )

    def compile_top(self, node: ast.Expr) -> Union[CompiledCollection, CompiledScalar]:
        if is_collection(node.ty) if node.ty else False:
            return self.compile_collection(node)
        # Scalar top level: aggregates over a whole collection.
        rep = self._compile_scalar_top(node)
        return rep

    # -- collections -------------------------------------------------------
    def compile_collection(self, node: ast.Expr) -> CompiledCollection:
        if isinstance(node, ast.CollectionRef):
            return self._scan(node)
        if isinstance(node, ast.VarRef):
            return self._param_collection(node)
        if isinstance(node, ast.Map):
            return self._map(node)
        if isinstance(node, ast.Select):
            return self._select(node)
        if isinstance(node, ast.Join):
            return self._join(node)
        if isinstance(node, ast.Semijoin):
            return self._semijoin(node)
        if isinstance(node, ast.Unnest):
            return self._unnest(node)
        if isinstance(node, ast.Nest):
            return self._nest(node)
        raise MoaCompileError(
            f"cannot compile {type(node).__name__} as a collection"
        )

    def _scan(self, node: ast.CollectionRef) -> CompiledCollection:
        name = node.name
        spine = self.emit(f'bat("{name}.{EXTENT_SUFFIX}")', "spine")
        elem_ty = node.ty.element  # type: ignore[union-attr]
        elem = self._rep_for_type(name, elem_ty, spine)
        cc = CompiledCollection(spine=spine, elem=elem, ty=node.ty)
        if self.eager_columns:
            cc = CompiledCollection(
                spine=spine, elem=self._force_deep(cc.elem, spine), ty=node.ty
            )
        return cc

    def _rep_for_type(self, prefix: str, ty: MoaType, gather: str) -> Rep:
        if isinstance(ty, AtomicType):
            return LazyCol(f"{prefix}.{VALUE_SUFFIX}", ty.atom, gather)
        if isinstance(ty, TupleType):
            return TupleCols(
                {
                    fname: self._attr_rep(f"{prefix}.{fname}", fty, gather)
                    for fname, fty in ty.fields
                }
            )
        raise MoaCompileError(f"unsupported element type {ty.render()}")

    def _attr_rep(self, prefix: str, ty: MoaType, gather: str) -> Rep:
        if isinstance(ty, AtomicType):
            return LazyCol(prefix, ty.atom, gather)
        if isinstance(ty, (SetType, ListType)):
            return LazyNestedSet(
                prefix, ty.element, gather, ordered=isinstance(ty, ListType)
            )
        # Extension structures provide their own attribute reps through
        # the compile-rep registry.
        hook = _ATTR_REP_HOOKS.get(type(ty).__name__)
        if hook is not None:
            return hook(self, prefix, ty, gather)
        raise MoaCompileError(f"no physical rep for attribute type {ty.render()}")

    def _param_collection(self, node: ast.VarRef) -> CompiledCollection:
        ty = node.ty
        if not is_collection(ty) or not isinstance(ty.element, AtomicType):  # type: ignore[union-attr]
            raise MoaCompileError(
                f"parameter {node.name!r} of type {ty.render()} cannot be "
                "used as a collection"
            )
        spine = self.emit(f"{node.name}.mark(oid(0))", "spine")
        return CompiledCollection(
            spine=spine,
            elem=AtomCol(node.name, ty.element.atom),  # type: ignore[union-attr]
            ty=ty,
        )

    # -- map -----------------------------------------------------------------
    def _map(self, node: ast.Map) -> CompiledCollection:
        cc = self.compile_collection(node.over)
        self._context.append(cc)
        try:
            rep = self.compile_elem(node.body, cc)
        finally:
            self._context.pop()
        return CompiledCollection(spine=cc.spine, elem=rep, ty=node.ty)

    # -- select ----------------------------------------------------------------
    def _select(self, node: ast.Select) -> CompiledCollection:
        cc = self.compile_collection(node.over)
        self._context.append(cc)
        try:
            pred = self.force_atom(self.compile_elem(node.pred, cc), cc)
        finally:
            self._context.pop()
        keep = self._keep_from_predicate(pred.var)
        return self._filter_collection(cc, keep, node.ty)

    def _keep_from_predicate(self, pred_var: str) -> str:
        sel = self.emit(f"{pred_var}.uselect(true)", "sel")
        return self.emit(f"{sel}.mirror.mark(oid(0)).reverse", "keep")

    def _filter_collection(
        self, cc: CompiledCollection, keep: str, ty: MoaType
    ) -> CompiledCollection:
        spine = self.emit(f"{keep}.join({cc.spine})", "spine")
        memo: Dict[str, str] = {cc.spine: spine}
        elem = self._refilter(cc.elem, keep, memo)
        return CompiledCollection(spine=spine, elem=elem, ty=ty)

    def _refilter(self, rep: Rep, keep: str, memo: Dict[str, str]) -> Rep:
        if isinstance(rep, AtomCol):
            return AtomCol(self.emit(f"{keep}.join({rep.var})"), rep.atom)
        if isinstance(rep, ConstCol):
            return rep
        if isinstance(rep, LazyCol):
            return LazyCol(rep.bat_name, rep.atom, self._regather(rep.gather, keep, memo))
        if isinstance(rep, LazyNestedSet):
            return LazyNestedSet(
                rep.prefix,
                rep.elem_ty,
                self._regather(rep.gather, keep, memo),
                ordered=rep.ordered,
            )
        if isinstance(rep, ContrepLazy):
            return ContrepLazy(rep.prefix, self._regather(rep.gather, keep, memo))
        if isinstance(rep, TupleCols):
            return TupleCols(
                {name: self._refilter(r, keep, memo) for name, r in rep.fields.items()}
            )
        if isinstance(rep, NestedSet):
            keep_inv = self.emit(f"{keep}.reverse", "kinv")
            pairs2 = self.emit(f"{rep.parent}.join({keep_inv})", "pairs")
            parent = self.emit(f"{pairs2}.number(oid(0))", "par")
            gather = self.emit(f"{pairs2}.mirror.mark(oid(0)).reverse", "pg")
            elem = self._regather_elem(rep.elem, gather)
            return NestedSet(parent=parent, elem=elem)
        if isinstance(rep, ContrepCols):
            keep_inv = self.emit(f"{keep}.reverse", "kinv")
            own2 = self.emit(f"{rep.owner}.join({keep_inv})", "own")
            owner = self.emit(f"{own2}.number(oid(0))", "own")
            gather = self.emit(f"{own2}.mirror.mark(oid(0)).reverse", "pg")
            term = self.emit(f"{gather}.join({rep.term})", "term")
            tf = self.emit(f"{gather}.join({rep.tf})", "tf")
            doclen = self.emit(f"{keep}.join({rep.doclen})", "dl")
            return ContrepCols(owner=owner, term=term, tf=tf, doclen=doclen)
        # Extension reps: any dataclass carrying a `gather` var rebinds
        # generically -- third-party structures (see
        # examples/extending_moa.py) get select/join support for free.
        if hasattr(rep, "gather"):
            import dataclasses

            return dataclasses.replace(
                rep, gather=self._regather(rep.gather, keep, memo)
            )
        raise MoaCompileError(f"cannot filter rep {type(rep).__name__}")

    def _regather(self, gather: str, keep: str, memo: Dict[str, str]) -> str:
        if gather not in memo:
            memo[gather] = self.emit(f"{keep}.join({gather})", "g")
        return memo[gather]

    def _regather_elem(self, rep: Rep, gather: str) -> Rep:
        """Gather a materialized nested element rep through [new, old]."""
        if isinstance(rep, AtomCol):
            return AtomCol(self.emit(f"{gather}.join({rep.var})"), rep.atom)
        if isinstance(rep, ConstCol):
            return rep
        if isinstance(rep, TupleCols):
            return TupleCols(
                {n: self._regather_elem(r, gather) for n, r in rep.fields.items()}
            )
        raise MoaCompileError(
            f"nested rep {type(rep).__name__} too deep to refilter"
        )

    # -- join / semijoin ----------------------------------------------------
    def _join(self, node: ast.Join) -> CompiledCollection:
        left = self.compile_collection(node.left)
        right = self.compile_collection(node.right)
        eq, residual = _split_equality(node.pred)
        lkey = self.force_atom(self._compile_join_side(eq[0], left, right), left)
        rkey = self.force_atom(self._compile_join_side(eq[1], left, right), right)
        matches = self.emit(f"{lkey.var}.join({rkey.var}.reverse)", "m")
        lidx = self.emit(f"{matches}.reverse.number(oid(0))", "li")
        ridx = self.emit(f"{matches}.number(oid(0))", "ri")
        spine = self.emit(f"{lidx}.join({left.spine})", "spine")
        memo_left: Dict[str, str] = {left.spine: spine}
        memo_right: Dict[str, str] = {}
        left_elem = self._refilter(left.elem, lidx, memo_left)
        right_elem = self._refilter(right.elem, ridx, memo_right)
        merged = TupleCols(
            {**_fields_of(left_elem), **_fields_of(right_elem)}
        )
        cc = CompiledCollection(spine=spine, elem=merged, ty=node.ty)
        if residual is not None:
            # The merged tuple carries both sides' fields, so the
            # residual conjuncts can drop their side markers.
            residual = _rewrite_this(residual)
            self._context.append(cc)
            try:
                pred = self.force_atom(self.compile_elem(residual, cc), cc)
            finally:
                self._context.pop()
            keep = self._keep_from_predicate(pred.var)
            cc = self._filter_collection(cc, keep, node.ty)
        return cc

    def _semijoin(self, node: ast.Semijoin) -> CompiledCollection:
        left = self.compile_collection(node.left)
        right = self.compile_collection(node.right)
        eq, residual = _split_equality(node.pred)
        if residual is not None:
            raise MoaCompileError(
                "semijoin supports a single equality predicate"
            )
        lkey = self.force_atom(self._compile_join_side(eq[0], left, right), left)
        rkey = self.force_atom(self._compile_join_side(eq[1], left, right), right)
        matches = self.emit(f"{lkey.var}.join({rkey.var}.reverse)", "m")
        uniq = self.emit(f"{matches}.mirror.kunique", "u")
        keep = self.emit(f"{uniq}.mark(oid(0)).reverse", "keep")
        return self._filter_collection(left, keep, node.ty)

    def _compile_join_side(
        self, expr: ast.Expr, left: CompiledCollection, right: CompiledCollection
    ) -> Rep:
        index = _this_index(expr)
        cc = left if index == 1 else right
        rewritten = _rewrite_this(expr)
        self._context.append(cc)
        try:
            return self.compile_elem(rewritten, cc)
        finally:
            self._context.pop()

    # -- unnest / nest ----------------------------------------------------------
    def _unnest(self, node: ast.Unnest) -> CompiledCollection:
        cc = self.compile_collection(node.over)
        elem = cc.elem
        if not isinstance(elem, TupleCols):
            raise MoaCompileError("unnest needs tuple elements")
        nested = self.force_nested(elem.fields[node.attr], cc)
        parent = nested.parent
        spine = self.emit(f"{parent}.join({cc.spine})", "spine")
        fields: Dict[str, Rep] = {}
        for name, rep in elem.fields.items():
            if name == node.attr:
                continue
            fields[name] = self._gather_through(rep, parent)
        child = nested.elem
        if isinstance(child, TupleCols):
            fields.update(child.fields)
        else:
            fields[node.attr] = child
        return CompiledCollection(spine=spine, elem=TupleCols(fields), ty=node.ty)

    def _gather_through(self, rep: Rep, parent: str) -> Rep:
        """Carry a parent-aligned rep down to pair positions via
        ``parent`` = [void pair, parent-pos]."""
        if isinstance(rep, AtomCol):
            return AtomCol(self.emit(f"{parent}.join({rep.var})"), rep.atom)
        if isinstance(rep, ConstCol):
            return rep
        if isinstance(rep, LazyCol):
            return LazyCol(
                rep.bat_name, rep.atom, self.emit(f"{parent}.join({rep.gather})", "g")
            )
        if isinstance(rep, LazyNestedSet):
            return LazyNestedSet(
                rep.prefix,
                rep.elem_ty,
                self.emit(f"{parent}.join({rep.gather})", "g"),
                ordered=rep.ordered,
            )
        if isinstance(rep, ContrepLazy):
            return ContrepLazy(
                rep.prefix, self.emit(f"{parent}.join({rep.gather})", "g")
            )
        if isinstance(rep, TupleCols):
            return TupleCols(
                {n: self._gather_through(r, parent) for n, r in rep.fields.items()}
            )
        if hasattr(rep, "gather"):
            import dataclasses

            return dataclasses.replace(
                rep, gather=self.emit(f"{parent}.join({rep.gather})", "g")
            )
        raise MoaCompileError(
            f"cannot carry {type(rep).__name__} through unnest"
        )

    def _nest(self, node: ast.Nest) -> CompiledCollection:
        cc = self.compile_collection(node.over)
        elem = cc.elem
        if not isinstance(elem, TupleCols):
            raise MoaCompileError("nest needs tuple elements")
        key = self.force_atom(elem.fields[node.key], cc)
        grouping = self.emit(f"group({key.var})", "grp")
        reps = self.emit(f"group_representatives({grouping}, {key.var})", "rep")
        spine = self.emit(f"{reps}.mark(oid(0))", "spine")
        rest = TupleCols(
            {
                name: self._force_deep(rep, cc.spine)
                for name, rep in elem.fields.items()
                if name != node.key
            }
        )
        group_rep = NestedSet(parent=grouping, elem=rest)
        fields: Dict[str, Rep] = {node.key: AtomCol(reps, key.atom), "group": group_rep}
        return CompiledCollection(spine=spine, elem=TupleCols(fields), ty=node.ty)

    # -- element-level compilation ----------------------------------------------
    def compile_elem(self, node: ast.Expr, cc: CompiledCollection) -> Rep:
        if isinstance(node, ast.This):
            if node.index != 0:
                raise MoaCompileError("THIS1/THIS2 outside a join predicate")
            return cc.elem
        if isinstance(node, ast.AttrAccess):
            base = self.compile_elem(node.base, cc)
            if not isinstance(base, TupleCols):
                raise MoaCompileError(
                    f".{node.attr} applied to non-tuple rep"
                )
            return base.fields[node.attr]
        if isinstance(node, ast.Literal):
            return ConstCol(node.value, node.atom)
        if isinstance(node, ast.BinOp):
            return self._binop(node, cc)
        if isinstance(node, ast.FuncCall):
            return self._funccall(node, cc)
        if isinstance(node, ast.TupleCons):
            return TupleCols(
                {name: self.compile_elem(e, cc) for name, e in node.fields}
            )
        if isinstance(node, ast.Map):
            return self._nested_map(node, cc)
        if isinstance(node, ast.VarRef):
            raise MoaCompileError(
                f"parameter {node.name!r} used as a scalar inside a map body"
            )
        raise MoaCompileError(
            f"cannot compile {type(node).__name__} in element context"
        )

    def _nested_map(self, node: ast.Map, cc: CompiledCollection) -> Rep:
        """``map[f](THIS.items)`` inside a map body: apply *f* to the
        nested elements (pair positions become the inner context)."""
        over = self.compile_elem(node.over, cc)
        nested = self.force_nested(over, cc)
        inner_spine = self.emit(f"{nested.parent}.mark(oid(0))", "isp")
        inner_cc = CompiledCollection(
            spine=inner_spine, elem=nested.elem, ty=node.over.ty
        )
        self._context.append(inner_cc)
        try:
            body = self.compile_elem(node.body, inner_cc)
        finally:
            self._context.pop()
        return NestedSet(parent=nested.parent, elem=body)

    _BINOP_MIL = {
        "+": "+", "-": "-", "*": "*", "/": "/",
        "=": "=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
        "and": "and", "or": "or",
    }

    def _binop(self, node: ast.BinOp, cc: CompiledCollection) -> Rep:
        left = self.compile_elem(node.left, cc)
        right = self.compile_elem(node.right, cc)
        if isinstance(left, ConstCol) and isinstance(right, ConstCol):
            value = scalar_op(node.op, left.value, right.value)
            return ConstCol(value, node.ty.atom if node.ty else left.atom)  # type: ignore[union-attr]
        lop = self._operand(left, cc)
        rop = self._operand(right, cc)
        op = self._BINOP_MIL[node.op]
        var = self.emit(f"[{op}]({lop}, {rop})")
        atom = node.ty.atom if isinstance(node.ty, AtomicType) else "dbl"
        return AtomCol(var, atom)

    def _operand(self, rep: Rep, cc: CompiledCollection) -> str:
        if isinstance(rep, ConstCol):
            return _literal_mil(rep.value, rep.atom)
        return self.force_atom(rep, cc).var

    def _funccall(self, node: ast.FuncCall, cc: CompiledCollection) -> Rep:
        spec = function_spec(node.name)
        if spec.compile is not None:
            return spec.compile(self, cc, node)
        if node.name in ("sum", "count", "avg", "min", "max"):
            return self._aggregate(node, cc)
        if node.name in ("log", "exp", "sqrt", "abs", "neg", "not"):
            arg = self.compile_elem(node.args[0], cc)
            if isinstance(arg, ConstCol):
                from repro.moa.functions import function_spec as fs

                value = fs(node.name).interpret([arg.value], None)
                return ConstCol(value, node.ty.atom if node.ty else "dbl")  # type: ignore[union-attr]
            col = self.force_atom(arg, cc)
            var = self.emit(f"[{node.name}]({col.var})")
            atom = node.ty.atom if isinstance(node.ty, AtomicType) else "dbl"
            return AtomCol(var, atom)
        raise MoaCompileError(f"no compile rule for function {node.name!r}")

    _PUMP = {"sum": "sum", "count": "count", "avg": "avg", "min": "min", "max": "max"}

    def _aggregate(self, node: ast.FuncCall, cc: CompiledCollection) -> Rep:
        arg = self.compile_elem(node.args[0], cc)
        nested = self.force_nested(arg, cc)
        cnt = self.emit(f"count({cc.spine})", "n")
        if node.name == "count":
            values = nested.parent
        else:
            inner = nested.elem
            if isinstance(inner, TupleCols):
                raise MoaCompileError(
                    f"{node.name} over tuples needs an attribute selection"
                )
            values = self.force_atom(inner, cc).var
        pump = self._PUMP[node.name]
        var = self.emit(f"{{{pump}}}({values}, {nested.parent}, {cnt})", "agg")
        atom = node.ty.atom if isinstance(node.ty, AtomicType) else "dbl"
        return AtomCol(var, atom)

    # -- forcing -----------------------------------------------------------------
    def force_atom(self, rep: Rep, cc: CompiledCollection) -> AtomCol:
        """Materialize *rep* as a position-aligned [void pos, value] BAT."""
        if isinstance(rep, AtomCol):
            return rep
        if isinstance(rep, LazyCol):
            var = self.emit(f'{rep.gather}.join(bat("{rep.bat_name}"))', "c")
            return AtomCol(var, rep.atom)
        if isinstance(rep, ConstCol):
            var = self.emit(
                f'const({cc.spine}, "{rep.atom}", {_literal_mil(rep.value, rep.atom)})',
                "c",
            )
            return AtomCol(var, rep.atom)
        raise MoaCompileError(
            f"cannot force {type(rep).__name__} to an atomic column"
        )

    def force_nested(self, rep: Rep, cc: CompiledCollection) -> NestedSet:
        """Materialize a nested-set rep as pairs + aligned element."""
        if isinstance(rep, NestedSet):
            return rep
        if isinstance(rep, LazyNestedSet):
            nest0 = self.emit(f'bat("{rep.prefix}.{NEST_SUFFIX}")', "nest")
            inv = self.emit(f"{rep.gather}.reverse", "inv")
            pairs0 = self.emit(f"{nest0}.join({inv})", "pr")
            parent = self.emit(f"{pairs0}.number(oid(0))", "par")
            gather = self.emit(f"{pairs0}.mirror.mark(oid(0)).reverse", "pg")
            elem_ty = rep.elem_ty
            if isinstance(elem_ty, AtomicType):
                value = self.emit(
                    f'{gather}.join(bat("{rep.prefix}.{VALUE_SUFFIX}"))', "val"
                )
                elem: Rep = AtomCol(value, elem_ty.atom)
            elif isinstance(elem_ty, TupleType):
                elem = TupleCols(
                    {
                        fname: self._force_nested_field(
                            f"{rep.prefix}.{fname}", fty, gather
                        )
                        for fname, fty in elem_ty.fields
                    }
                )
            else:
                raise MoaCompileError(
                    f"nested element type {elem_ty.render()} unsupported"
                )
            return NestedSet(parent=parent, elem=elem)
        raise MoaCompileError(
            f"cannot force {type(rep).__name__} to a nested set"
        )

    def _force_nested_field(self, bat_name: str, ty: MoaType, gather: str) -> Rep:
        if isinstance(ty, AtomicType):
            return AtomCol(
                self.emit(f'{gather}.join(bat("{bat_name}"))', "c"), ty.atom
            )
        raise MoaCompileError(
            f"doubly nested attribute {bat_name} of type {ty.render()} is "
            "not supported by the compiler (flatten with unnest first)"
        )

    def force_contrep(self, rep: Rep, cc: CompiledCollection) -> ContrepCols:
        """Materialize a CONTREP attribute restricted to current positions."""
        if isinstance(rep, ContrepCols):
            return rep
        if not isinstance(rep, ContrepLazy):
            raise MoaCompileError("getBL applied to a non-CONTREP attribute")
        inv = self.emit(f"{rep.gather}.reverse", "inv")
        own0 = self.emit(f'bat("{rep.prefix}.owner")', "ow")
        own1 = self.emit(f"{own0}.join({inv})", "ow")
        owner = self.emit(f"{own1}.number(oid(0))", "own")
        gather = self.emit(f"{own1}.mirror.mark(oid(0)).reverse", "pg")
        term = self.emit(f'{gather}.join(bat("{rep.prefix}.term"))', "term")
        tf = self.emit(f'{gather}.join(bat("{rep.prefix}.tf"))', "tf")
        doclen = self.emit(f'{rep.gather}.join(bat("{rep.prefix}.doclen"))', "dl")
        return ContrepCols(owner=owner, term=term, tf=tf, doclen=doclen)

    def _force_deep(self, rep: Rep, spine: str) -> Rep:
        """Eagerly materialize every lazy column (unoptimized mode)."""
        if isinstance(rep, LazyCol):
            var = self.emit(f'{rep.gather}.join(bat("{rep.bat_name}"))', "c")
            return AtomCol(var, rep.atom)
        if isinstance(rep, TupleCols):
            return TupleCols(
                {n: self._force_deep(r, spine) for n, r in rep.fields.items()}
            )
        if isinstance(rep, LazyNestedSet):
            dummy = CompiledCollection(spine=spine, elem=rep, ty=None)  # type: ignore[arg-type]
            return self.force_nested(rep, dummy)
        if isinstance(rep, ContrepLazy):
            dummy = CompiledCollection(spine=spine, elem=rep, ty=None)  # type: ignore[arg-type]
            return self.force_contrep(rep, dummy)
        return rep

    # -- top-level scalars ---------------------------------------------------
    def _compile_scalar_top(self, node: ast.Expr) -> CompiledScalar:
        if isinstance(node, ast.FuncCall) and node.name in (
            "sum", "count", "avg", "min", "max",
        ):
            cc = self.compile_collection(node.args[0])
            if node.name == "count":
                var = self.emit(f"count({cc.spine})", "res")
                return CompiledScalar(var, "int")
            col = self.force_atom(cc.elem, cc)
            var = self.emit(f"{node.name}({col.var})", "res")
            atom = node.ty.atom if isinstance(node.ty, AtomicType) else "dbl"
            return CompiledScalar(var, atom)
        raise MoaCompileError(
            "top-level expression of type "
            f"{node.ty.render() if node.ty else '?'} is not compilable; "
            "expected a collection or an aggregate over one"
        )


# ----------------------------------------------------------------------
# Extension attribute reps (CONTREP registers itself here)
# ----------------------------------------------------------------------

_ATTR_REP_HOOKS: Dict[str, Any] = {}


def register_attr_rep(type_cls_name: str, hook) -> None:
    """Register an attribute-representation hook for an extension
    structure type (keyed by class name to avoid import cycles)."""
    _ATTR_REP_HOOKS[type_cls_name] = hook


# ----------------------------------------------------------------------
# Small AST utilities
# ----------------------------------------------------------------------


def _split_equality(pred: ast.Expr) -> Tuple[Tuple[ast.Expr, ast.Expr], Optional[ast.Expr]]:
    """Split a join predicate into (left-key, right-key) of its first
    THIS1=THIS2 equality plus the residual conjunction (or None)."""
    conjuncts = _flatten_and(pred)
    for position, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, ast.BinOp) and conjunct.op == "=":
            li = _this_index(conjunct.left)
            ri = _this_index(conjunct.right)
            if {li, ri} == {1, 2}:
                if li == 1:
                    keys = (conjunct.left, conjunct.right)
                else:
                    keys = (conjunct.right, conjunct.left)
                rest = conjuncts[:position] + conjuncts[position + 1:]
                residual = _conjoin(rest)
                return keys, residual
    raise MoaCompileError(
        "join predicate needs at least one THIS1.<a> = THIS2.<b> equality"
    )


def _flatten_and(pred: ast.Expr) -> List[ast.Expr]:
    if isinstance(pred, ast.BinOp) and pred.op == "and":
        return _flatten_and(pred.left) + _flatten_and(pred.right)
    return [pred]


def _conjoin(conjuncts: List[ast.Expr]) -> Optional[ast.Expr]:
    if not conjuncts:
        return None
    out = conjuncts[0]
    for nxt in conjuncts[1:]:
        merged = ast.BinOp(op="and", left=out, right=nxt)
        merged.ty = out.ty
        out = merged
    return out


def _this_index(expr: ast.Expr) -> int:
    """Which join side (1/2) an expression references; 0 if neither."""
    found = {n.index for n in ast.walk(expr) if isinstance(n, ast.This)}
    found.discard(0)
    if len(found) > 1:
        raise MoaCompileError("join key references both THIS1 and THIS2")
    return found.pop() if found else 0


def _rewrite_this(expr: ast.Expr) -> ast.Expr:
    """Replace THIS1/THIS2 by plain THIS (after picking the side)."""
    import copy

    clone = copy.deepcopy(expr)
    for node in ast.walk(clone):
        if isinstance(node, ast.This):
            node.index = 0
    return clone


def _fields_of(rep: Rep) -> Dict[str, Rep]:
    if isinstance(rep, TupleCols):
        return dict(rep.fields)
    raise MoaCompileError("join sides must have tuple elements")


def _literal_mil(value: Any, atom: str) -> str:
    if atom == "str":
        escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if atom == "bit":
        return "true" if value else "false"
    if atom == "dbl":
        text = repr(float(value))
        return text if ("." in text or "e" in text or "inf" in text) else text + ".0"
    return repr(int(value))


def compile_query(
    node: ast.Expr,
    schema: Dict[str, MoaType],
    params: Optional[Dict[str, MoaType]] = None,
    *,
    eager_columns: bool = False,
    cse: bool = True,
) -> CompiledQuery:
    """Compile a typed AST into a MIL plan."""
    compiler = Compiler(
        schema, params, eager_columns=eager_columns, cse=cse
    )
    return compiler.compile_query(node)
