"""Shared tokenizer for Moa DDL and query surface syntax.

The token set covers both the paper's DDL::

    define TraditionalImgLib as
    SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation >>;

and its queries::

    map[sum(THIS)](
        map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));

Angle brackets do double duty as type brackets and comparison operators;
the parsers disambiguate by context (the lexer just emits ``<`` / ``>``
as ``LT``/``GT`` tokens).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.moa.errors import MoaParseError


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.value!r})"


_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "<": "LT",
    ">": "GT",
    ",": "COMMA",
    ":": "COLON",
    ";": "SEMI",
    ".": "DOT",
    "=": "EQ",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
}

_MULTI = {
    "<=": "LE",
    ">=": "GE",
    "!=": "NE",
    ">>": "GTGT",  # re-split by the DDL parser when closing nested types
}


def tokenize(text: str) -> List[Token]:
    """Tokenize Moa surface text."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        two = text[i : i + 2]
        if two in ("<=", ">=", "!="):
            tokens.append(Token(_MULTI[two], two, line, column))
            i += 2
            column += 2
            continue
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            out = []
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    raise MoaParseError("newline in string literal", line, column)
                if text[j] == "\\" and j + 1 < n:
                    escape = {"n": "\n", "t": "\t", quote: quote, "\\": "\\"}.get(
                        text[j + 1]
                    )
                    if escape is None:
                        raise MoaParseError(
                            f"bad escape \\{text[j + 1]}", line, column
                        )
                    out.append(escape)
                    j += 2
                    continue
                out.append(text[j])
                j += 1
            if j >= n:
                raise MoaParseError("unterminated string literal", line, column)
            tokens.append(Token("STR", "".join(out), line, column))
            consumed = j - i + 1
            i = j + 1
            column += consumed
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (
                text[j].isdigit()
                or (text[j] == "." and not seen_dot and j + 1 < n and text[j + 1].isdigit())
            ):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            raw = text[i:j]
            tokens.append(Token("FLT" if seen_dot else "INT", raw, line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("IDENT", text[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, line, column))
            i += 1
            column += 1
            continue
        raise MoaParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens
