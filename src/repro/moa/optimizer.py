"""Algebraic query optimization on the logical AST.

"... provides an excellent basis for algebraic query optimization"
(Mirror paper, section 2).  The rewriter applies a small, classical
rule set until fixpoint:

* **map fusion**: ``map[f](map[g](X))`` -> ``map[f[THIS:=g]](X)`` --
  removes an intermediate collection materialization;
* **select fusion**: ``select[p](select[q](X))`` ->
  ``select[p and q](X)``;
* **select pushdown through map**: ``select[p](map[f](X))`` ->
  ``map[f](select[p'](X))`` when ``f`` is a tuple constructor and ``p``
  only touches fields that ``f`` copies unchanged from ``THIS`` --
  filtering before computing shrinks every downstream column;
* **constant folding** of scalar operators on literals.

Rewrites run *before* type checking is redone; callers re-typecheck the
result (the executor does).  The MIL-level common-subexpression
elimination lives in the compiler (``cse=True``); together these two
layers are the "optimized" configuration of benchmark E5.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Tuple

from repro.moa import ast
from repro.monet.errors import KernelError
from repro.monet.multiplex import scalar_op

_FOLDABLE_OPS = {"+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "and", "or"}


def optimize(node: ast.Expr, *, max_passes: int = 10) -> ast.Expr:
    """Rewrite *node* until no rule fires (bounded by *max_passes*)."""
    current = node
    for _ in range(max_passes):
        rewritten, changed = _rewrite(current)
        current = rewritten
        if not changed:
            break
    return current


def _rewrite(node: ast.Expr) -> Tuple[ast.Expr, bool]:
    changed = False

    # Bottom-up: rewrite children first.
    for name in _child_slots(node):
        child = getattr(node, name)
        if isinstance(child, ast.Expr):
            new_child, child_changed = _rewrite(child)
            if child_changed:
                setattr(node, name, new_child)
                changed = True
    if isinstance(node, ast.TupleCons):
        new_fields = []
        for fname, expr in node.fields:
            new_expr, c = _rewrite(expr)
            new_fields.append((fname, new_expr))
            changed = changed or c
        node.fields = new_fields
    if isinstance(node, ast.FuncCall):
        new_args = []
        for arg in node.args:
            new_arg, c = _rewrite(arg)
            new_args.append(new_arg)
            changed = changed or c
        node.args = new_args

    # Rule: map fusion.
    if isinstance(node, ast.Map) and isinstance(node.over, ast.Map):
        inner = node.over
        fused_body = substitute_this(node.body, inner.body)
        fused = ast.Map(body=fused_body, over=inner.over, line=node.line)
        return fused, True

    # Rule: select fusion.
    if isinstance(node, ast.Select) and isinstance(node.over, ast.Select):
        inner = node.over
        merged = ast.BinOp(op="and", left=inner.pred, right=node.pred)
        fused = ast.Select(pred=merged, over=inner.over, line=node.line)
        return fused, True

    # Rule: select pushdown through a tuple-constructing map.
    if isinstance(node, ast.Select) and isinstance(node.over, ast.Map):
        pushed = _try_push_select(node)
        if pushed is not None:
            return pushed, True

    # Rule: constant folding.
    if (
        isinstance(node, ast.BinOp)
        and node.op in _FOLDABLE_OPS
        and isinstance(node.left, ast.Literal)
        and isinstance(node.right, ast.Literal)
    ):
        folded = _fold(node)
        if folded is not None:
            return folded, True

    return node, changed


def _child_slots(node: ast.Expr):
    if isinstance(node, ast.AttrAccess):
        return ("base",)
    if isinstance(node, ast.Map):
        return ("body", "over")
    if isinstance(node, ast.Select):
        return ("pred", "over")
    if isinstance(node, (ast.Join, ast.Semijoin)):
        return ("pred", "left", "right")
    if isinstance(node, (ast.Unnest, ast.Nest)):
        return ("over",)
    if isinstance(node, ast.BinOp):
        return ("left", "right")
    return ()


def substitute_this(body: ast.Expr, replacement: ast.Expr) -> ast.Expr:
    """Replace every top-context ``THIS`` in *body* by *replacement*
    (the map-fusion substitution).  THIS1/THIS2 are left alone."""
    clone = copy.deepcopy(body)

    def visit(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.This) and node.index == 0:
            return copy.deepcopy(replacement)
        for name in _child_slots(node):
            child = getattr(node, name)
            if isinstance(child, ast.Expr):
                setattr(node, name, visit(child))
        if isinstance(node, ast.TupleCons):
            node.fields = [(n, visit(e)) for n, e in node.fields]
        if isinstance(node, ast.FuncCall):
            node.args = [visit(a) for a in node.args]
        return node

    return visit(clone)


def _try_push_select(node: ast.Select) -> Optional[ast.Expr]:
    """``select[p](map[tuple(...)](X))`` -> ``map[...](select[p'](X))``
    when every field *p* mentions is a pass-through (``name = THIS.a``
    or ``name = THIS``)."""
    inner = node.over
    body = inner.body
    if not isinstance(body, ast.TupleCons):
        return None
    passthrough: Dict[str, ast.Expr] = {}
    for fname, expr in body.fields:
        if isinstance(expr, ast.AttrAccess) and isinstance(expr.base, ast.This):
            passthrough[fname] = expr
        elif isinstance(expr, ast.This) and expr.index == 0:
            passthrough[fname] = expr

    used = [
        n.attr
        for n in ast.walk(node.pred)
        if isinstance(n, ast.AttrAccess) and isinstance(n.base, ast.This)
    ]
    if not used or any(attr not in passthrough for attr in used):
        return None

    def rewrite_pred(pred: ast.Expr) -> ast.Expr:
        clone = copy.deepcopy(pred)

        def visit(n: ast.Expr) -> ast.Expr:
            if (
                isinstance(n, ast.AttrAccess)
                and isinstance(n.base, ast.This)
                and n.attr in passthrough
            ):
                return copy.deepcopy(passthrough[n.attr])
            for name in _child_slots(n):
                child = getattr(n, name)
                if isinstance(child, ast.Expr):
                    setattr(n, name, visit(child))
            if isinstance(n, ast.FuncCall):
                n.args = [visit(a) for a in n.args]
            return n

        return visit(clone)

    new_select = ast.Select(pred=rewrite_pred(node.pred), over=inner.over)
    return ast.Map(body=inner.body, over=new_select, line=node.line)


def _fold(node: ast.BinOp) -> Optional[ast.Literal]:
    if node.op == "/" and node.right.value == 0:
        return None  # leave the runtime error to execution time
    try:
        value = scalar_op(node.op, node.left.value, node.right.value)
    except (KernelError, ZeroDivisionError, TypeError, ValueError):
        return None
    if isinstance(value, bool):
        return ast.Literal(value=value, atom="bit", line=node.line)
    if isinstance(value, int):
        return ast.Literal(value=value, atom="int", line=node.line)
    if isinstance(value, float):
        return ast.Literal(value=value, atom="dbl", line=node.line)
    if isinstance(value, str):
        return ast.Literal(value=value, atom="str", line=node.line)
    return None
