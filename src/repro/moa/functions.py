"""Registry of Moa functions: aggregates, scalar functions, and
structure-extension operations.

Each function carries up to three hooks, registered independently so
that layers stay decoupled:

* ``typecheck(arg_types) -> MoaType`` -- used by :mod:`repro.moa.typecheck`;
* ``interpret(args, context) -> value`` -- used by the reference
  tuple-at-a-time interpreter;
* a *compile hook* (registered via :func:`register_compile_hook`) --
  used by the flattening compiler.

The kernel registers the NF2 repertoire here (``sum``, ``count``, ...).
Extension structures add their operations the same way: the CONTREP
module registers ``getBL`` ("new structures in Moa, supported by new
probabilistic operators at the physical level", section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.moa.errors import MoaTypeError
from repro.moa.types import AtomicType, MoaType, is_collection, element_type, is_numeric_atomic

TypecheckHook = Callable[[Sequence[MoaType]], MoaType]
InterpretHook = Callable[[List[Any], Any], Any]
CompileHook = Callable[..., Any]


@dataclass
class FunctionSpec:
    name: str
    typecheck: TypecheckHook
    interpret: InterpretHook
    compile: Optional[CompileHook] = None


_FUNCTIONS: Dict[str, FunctionSpec] = {}


def register_function(
    name: str, typecheck: TypecheckHook, interpret: InterpretHook
) -> FunctionSpec:
    """Register a Moa function; re-registration is rejected."""
    if name in _FUNCTIONS:
        raise MoaTypeError(f"function {name!r} already registered")
    spec = FunctionSpec(name, typecheck, interpret)
    _FUNCTIONS[name] = spec
    return spec


def register_compile_hook(name: str, hook: CompileHook) -> None:
    """Attach the flattening-compiler hook to a registered function."""
    spec = function_spec(name)
    spec.compile = hook


def function_spec(name: str) -> FunctionSpec:
    try:
        return _FUNCTIONS[name]
    except KeyError:
        raise MoaTypeError(
            f"unknown function {name!r}; known: {sorted(_FUNCTIONS)}"
        ) from None


def has_function(name: str) -> bool:
    return name in _FUNCTIONS


def function_names() -> List[str]:
    return sorted(_FUNCTIONS)


# ----------------------------------------------------------------------
# Kernel repertoire
# ----------------------------------------------------------------------


def _numeric_collection_arg(name: str, arg_types: Sequence[MoaType]) -> AtomicType:
    if len(arg_types) != 1:
        raise MoaTypeError(f"{name} takes one argument")
    ty = arg_types[0]
    if not is_collection(ty):
        raise MoaTypeError(f"{name} needs a SET/LIST, got {ty.render()}")
    elem = element_type(ty)
    if not is_numeric_atomic(elem):
        raise MoaTypeError(
            f"{name} needs numeric elements, got {elem.render()}"
        )
    return elem  # type: ignore[return-value]


def _tc_sum(arg_types):
    elem = _numeric_collection_arg("sum", arg_types)
    return AtomicType("float") if elem.atom == "dbl" else AtomicType("int")


def _tc_avg(arg_types):
    _numeric_collection_arg("avg", arg_types)
    return AtomicType("float")


def _tc_minmax(name):
    def check(arg_types):
        elem = _numeric_collection_arg(name, arg_types)
        return AtomicType("float") if elem.atom == "dbl" else AtomicType("int")

    return check


def _tc_count(arg_types):
    if len(arg_types) != 1 or not is_collection(arg_types[0]):
        raise MoaTypeError("count takes one SET/LIST argument")
    return AtomicType("int")


def _tc_unary_dbl(name):
    def check(arg_types):
        if len(arg_types) != 1 or not is_numeric_atomic(arg_types[0]):
            raise MoaTypeError(f"{name} takes one numeric argument")
        return AtomicType("float")

    return check


def _tc_neg(arg_types):
    if len(arg_types) != 1 or not is_numeric_atomic(arg_types[0]):
        raise MoaTypeError("neg takes one numeric argument")
    return arg_types[0]


def _tc_not(arg_types):
    if len(arg_types) != 1 or not (
        isinstance(arg_types[0], AtomicType) and arg_types[0].atom == "bit"
    ):
        raise MoaTypeError("not takes one boolean argument")
    return AtomicType("bit")


def _interp_sum(args, _context):
    return sum(args[0])


def _interp_avg(args, _context):
    values = list(args[0])
    if not values:
        return None
    return sum(values) / len(values)


def _interp_min(args, _context):
    values = list(args[0])
    return min(values) if values else None


def _interp_max(args, _context):
    values = list(args[0])
    return max(values) if values else None


def _interp_count(args, _context):
    return len(list(args[0]))


def _interp_log(args, _context):
    import math

    return math.log(args[0])


def _interp_exp(args, _context):
    import math

    return math.exp(args[0])


def _interp_sqrt(args, _context):
    import math

    return math.sqrt(args[0])


def _interp_abs(args, _context):
    return abs(args[0])


def _interp_neg(args, _context):
    return -args[0]


def _interp_not(args, _context):
    return not args[0]


register_function("sum", _tc_sum, _interp_sum)
register_function("avg", _tc_avg, _interp_avg)
register_function("min", _tc_minmax("min"), _interp_min)
register_function("max", _tc_minmax("max"), _interp_max)
register_function("count", _tc_count, _interp_count)
register_function("log", _tc_unary_dbl("log"), _interp_log)
register_function("exp", _tc_unary_dbl("exp"), _interp_exp)
register_function("sqrt", _tc_unary_dbl("sqrt"), _interp_sqrt)
register_function("abs", _tc_neg, _interp_abs)
register_function("neg", _tc_neg, _interp_neg)
register_function("not", _tc_not, _interp_not)
