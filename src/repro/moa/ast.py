"""Logical query AST for Moa expressions.

The surface syntax follows the paper::

    map[sum(THIS)]( map[getBL(THIS.annotation, query, stats)]( Lib ));

``map``/``select``/``semijoin``/``join``/``unnest`` are *structure
operations* written ``op[body](operands)``; plain ``name(args)`` calls
are scalar/aggregate/extension functions; ``THIS`` denotes the element
bound by the closest enclosing structure operation (``THIS1``/``THIS2``
for the two sides of a join).

Every node gets a ``ty`` slot filled in by the type checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.moa.types import MoaType


@dataclass
class Expr:
    """Base class; ``ty`` is assigned by :mod:`repro.moa.typecheck`."""

    ty: Optional[MoaType] = field(default=None, init=False, compare=False)
    line: int = field(default=0, kw_only=True, compare=False)


@dataclass
class CollectionRef(Expr):
    """A named top-level collection from the schema."""

    name: str = ""


@dataclass
class VarRef(Expr):
    """A query parameter bound at execution time (``query``, ``stats``)."""

    name: str = ""


@dataclass
class This(Expr):
    """The element bound by the nearest enclosing map/select; ``index``
    0 means plain THIS, 1/2 are THIS1/THIS2 inside join bodies."""

    index: int = 0


@dataclass
class AttrAccess(Expr):
    """``base.attr`` -- tuple field access."""

    base: Expr = None
    attr: str = ""


@dataclass
class Literal(Expr):
    """Atomic literal (int, dbl, str, bit)."""

    value: Any = None
    atom: str = "int"


@dataclass
class Map(Expr):
    """``map[body](over)``: apply *body* to each element of *over*."""

    body: Expr = None
    over: Expr = None


@dataclass
class Select(Expr):
    """``select[pred](over)``: keep elements satisfying *pred*."""

    pred: Expr = None
    over: Expr = None


@dataclass
class Join(Expr):
    """``join[pred](left, right)``: pairs (THIS1 from left, THIS2 from
    right) satisfying *pred*; result elements are concatenated tuples."""

    pred: Expr = None
    left: Expr = None
    right: Expr = None


@dataclass
class Semijoin(Expr):
    """``semijoin[pred](left, right)``: elements of left for which some
    right element satisfies *pred*."""

    pred: Expr = None
    left: Expr = None
    right: Expr = None


@dataclass
class Unnest(Expr):
    """``unnest[attr](over)``: flatten one set-valued tuple attribute;
    each (parent, child) pair becomes a tuple merging parent fields with
    the child element (child fields win name clashes)."""

    attr: str = ""
    over: Expr = None


@dataclass
class Nest(Expr):
    """``nest[key](over)``: inverse of unnest -- group tuples by the
    *key* attribute, collecting the remaining fields into a set-valued
    attribute named ``group``."""

    key: str = ""
    over: Expr = None


@dataclass
class TupleCons(Expr):
    """``tuple(a = e1, b = e2, ...)`` -- build a tuple value in a map
    body (used by the integration queries that carry source + score)."""

    fields: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class FuncCall(Expr):
    """Scalar function, aggregate, or structure-extension operation.

    The name is looked up in the function registry at type-check time;
    extension structures (CONTREP) register their operations (getBL)
    there, which is how "new structures in Moa, supported by new
    probabilistic operators at the physical level" (section 3) plug in.
    """

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class BinOp(Expr):
    """Scalar infix operator in predicates and arithmetic bodies."""

    op: str = ""
    left: Expr = None
    right: Expr = None


def walk(node: Expr):
    """Yield *node* and all descendants (pre-order)."""
    yield node
    for child in children(node):
        yield from walk(child)


def children(node: Expr) -> List[Expr]:
    """Direct child expressions of *node*."""
    if isinstance(node, (CollectionRef, VarRef, This, Literal)):
        return []
    if isinstance(node, AttrAccess):
        return [node.base]
    if isinstance(node, Map):
        return [node.body, node.over]
    if isinstance(node, Select):
        return [node.pred, node.over]
    if isinstance(node, (Join, Semijoin)):
        return [node.pred, node.left, node.right]
    if isinstance(node, (Unnest, Nest)):
        return [node.over]
    if isinstance(node, TupleCons):
        return [expr for _, expr in node.fields]
    if isinstance(node, FuncCall):
        return list(node.args)
    if isinstance(node, BinOp):
        return [node.left, node.right]
    raise TypeError(f"unknown AST node {type(node).__name__}")


def render(node: Expr) -> str:
    """Render an AST back to Moa surface syntax."""
    if isinstance(node, CollectionRef):
        return node.name
    if isinstance(node, VarRef):
        return node.name
    if isinstance(node, This):
        return "THIS" if node.index == 0 else f"THIS{node.index}"
    if isinstance(node, AttrAccess):
        return f"{render(node.base)}.{node.attr}"
    if isinstance(node, Literal):
        if node.atom == "str":
            return repr(node.value)
        if node.atom == "bit":
            return "true" if node.value else "false"
        return repr(node.value)
    if isinstance(node, Map):
        return f"map[{render(node.body)}]({render(node.over)})"
    if isinstance(node, Select):
        return f"select[{render(node.pred)}]({render(node.over)})"
    if isinstance(node, Join):
        return f"join[{render(node.pred)}]({render(node.left)}, {render(node.right)})"
    if isinstance(node, Semijoin):
        return (
            f"semijoin[{render(node.pred)}]"
            f"({render(node.left)}, {render(node.right)})"
        )
    if isinstance(node, Unnest):
        return f"unnest[{node.attr}]({render(node.over)})"
    if isinstance(node, Nest):
        return f"nest[{node.key}]({render(node.over)})"
    if isinstance(node, TupleCons):
        inner = ", ".join(f"{n} = {render(e)}" for n, e in node.fields)
        return f"tuple({inner})"
    if isinstance(node, FuncCall):
        return f"{node.name}({', '.join(render(a) for a in node.args)})"
    if isinstance(node, BinOp):
        return f"({render(node.left)} {node.op} {render(node.right)})"
    raise TypeError(f"cannot render {type(node).__name__}")
