"""Parser for Moa query expressions.

Grammar::

    query      := expr ";"?
    expr       := or_expr
    or_expr    := and_expr ("or" and_expr)*
    and_expr   := not_expr ("and" not_expr)*
    not_expr   := "not" not_expr | comparison
    comparison := additive (("="|"!="|"<"|"<="|">"|">=") additive)?
    additive   := term (("+"|"-") term)*
    term       := unary (("*"|"/") unary)*
    unary      := "-" unary | postfix
    postfix    := primary ("." IDENT)*
    primary    := structure_op | tuple_cons | call | THIS | literal
                | IDENT | "(" expr ")"
    structure_op := ("map"|"select") "[" expr "]" "(" expr ")"
                 | ("join"|"semijoin") "[" expr "]" "(" expr "," expr ")"
                 | ("unnest"|"nest") "[" IDENT "]" "(" expr ")"
    tuple_cons := "tuple" "(" IDENT "=" expr ("," IDENT "=" expr)* ")"
    call       := IDENT "(" args ")"

``THIS``, ``THIS1`` and ``THIS2`` are recognized case-sensitively, like
the paper writes them.
"""

from __future__ import annotations

from typing import List

from repro.moa import ast
from repro.moa.errors import MoaParseError
from repro.moa.lexer import Token, tokenize

_STRUCTURE_OPS = {"map", "select", "join", "semijoin", "unnest", "nest"}
_COMPARISON = {"EQ": "=", "NE": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}


class _QueryParser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[self.position + offset]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise MoaParseError(
                f"expected {kind}, found {token.kind} {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def _is_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "IDENT" and token.value == word

    # ------------------------------------------------------------------
    def parse(self) -> ast.Expr:
        expr = self.expr()
        if self.peek().kind == "SEMI":
            self.advance()
        token = self.peek()
        if token.kind != "EOF":
            raise MoaParseError(
                f"trailing input after query: {token.value!r}",
                token.line,
                token.column,
            )
        return expr

    def expr(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self._is_keyword("or"):
            self.advance()
            right = self.and_expr()
            left = ast.BinOp(op="or", left=left, right=right, line=left.line)
        return left

    def and_expr(self) -> ast.Expr:
        left = self.not_expr()
        while self._is_keyword("and"):
            self.advance()
            right = self.not_expr()
            left = ast.BinOp(op="and", left=left, right=right, line=left.line)
        return left

    def not_expr(self) -> ast.Expr:
        if self._is_keyword("not"):
            token = self.advance()
            operand = self.not_expr()
            return ast.FuncCall(name="not", args=[operand], line=token.line)
        return self.comparison()

    def comparison(self) -> ast.Expr:
        left = self.additive()
        kind = self.peek().kind
        if kind in _COMPARISON:
            self.advance()
            right = self.additive()
            return ast.BinOp(
                op=_COMPARISON[kind], left=left, right=right, line=left.line
            )
        return left

    def additive(self) -> ast.Expr:
        left = self.term()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = "+" if self.advance().kind == "PLUS" else "-"
            right = self.term()
            left = ast.BinOp(op=op, left=left, right=right, line=left.line)
        return left

    def term(self) -> ast.Expr:
        left = self.unary()
        while self.peek().kind in ("STAR", "SLASH"):
            op = "*" if self.advance().kind == "STAR" else "/"
            right = self.unary()
            left = ast.BinOp(op=op, left=left, right=right, line=left.line)
        return left

    def unary(self) -> ast.Expr:
        if self.peek().kind == "MINUS":
            token = self.advance()
            operand = self.unary()
            return ast.FuncCall(name="neg", args=[operand], line=token.line)
        return self.postfix()

    def postfix(self) -> ast.Expr:
        node = self.primary()
        while self.peek().kind == "DOT":
            self.advance()
            attr = self.expect("IDENT")
            node = ast.AttrAccess(base=node, attr=attr.value, line=attr.line)
        return node

    def primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return ast.Literal(value=int(token.value), atom="int", line=token.line)
        if token.kind == "FLT":
            self.advance()
            return ast.Literal(value=float(token.value), atom="dbl", line=token.line)
        if token.kind == "STR":
            self.advance()
            return ast.Literal(value=token.value, atom="str", line=token.line)
        if token.kind == "LPAREN":
            self.advance()
            inner = self.expr()
            self.expect("RPAREN")
            return inner
        if token.kind != "IDENT":
            raise MoaParseError(
                f"unexpected token {token.value!r}", token.line, token.column
            )
        word = token.value
        if word in ("true", "false"):
            self.advance()
            return ast.Literal(value=(word == "true"), atom="bit", line=token.line)
        if word == "THIS":
            self.advance()
            return ast.This(index=0, line=token.line)
        if word in ("THIS1", "THIS2"):
            self.advance()
            return ast.This(index=int(word[-1]), line=token.line)
        if word in _STRUCTURE_OPS and self.peek(1).kind == "LBRACKET":
            return self.structure_op()
        if word == "tuple" and self.peek(1).kind == "LPAREN":
            return self.tuple_cons()
        if self.peek(1).kind == "LPAREN":
            self.advance()
            args = self.call_args()
            return ast.FuncCall(name=word, args=args, line=token.line)
        self.advance()
        # Bare identifier: collection name or query parameter; the type
        # checker resolves which (parameters are declared by the caller).
        return ast.CollectionRef(name=word, line=token.line)

    def structure_op(self) -> ast.Expr:
        op = self.advance()
        self.expect("LBRACKET")
        if op.value in ("unnest", "nest"):
            attr = self.expect("IDENT").value
            self.expect("RBRACKET")
            self.expect("LPAREN")
            over = self.expr()
            self.expect("RPAREN")
            if op.value == "unnest":
                return ast.Unnest(attr=attr, over=over, line=op.line)
            return ast.Nest(key=attr, over=over, line=op.line)
        body = self.expr()
        self.expect("RBRACKET")
        self.expect("LPAREN")
        first = self.expr()
        if op.value in ("join", "semijoin"):
            self.expect("COMMA")
            second = self.expr()
            self.expect("RPAREN")
            cls = ast.Join if op.value == "join" else ast.Semijoin
            return cls(pred=body, left=first, right=second, line=op.line)
        self.expect("RPAREN")
        if op.value == "map":
            return ast.Map(body=body, over=first, line=op.line)
        return ast.Select(pred=body, over=first, line=op.line)

    def tuple_cons(self) -> ast.Expr:
        token = self.advance()  # 'tuple'
        self.expect("LPAREN")
        fields = []
        while True:
            name = self.expect("IDENT").value
            self.expect("EQ")
            value = self.expr()
            fields.append((name, value))
            if self.peek().kind == "COMMA":
                self.advance()
                continue
            break
        self.expect("RPAREN")
        return ast.TupleCons(fields=fields, line=token.line)

    def call_args(self) -> List[ast.Expr]:
        self.expect("LPAREN")
        args: List[ast.Expr] = []
        if self.peek().kind != "RPAREN":
            args.append(self.expr())
            while self.peek().kind == "COMMA":
                self.advance()
                args.append(self.expr())
        self.expect("RPAREN")
        return args


def parse_query(text: str) -> ast.Expr:
    """Parse a Moa query expression into a logical AST."""
    return _QueryParser(tokenize(text)).parse()
