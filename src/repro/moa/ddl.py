"""Parser for Moa DDL: ``define <Name> as <Type>;``.

Grammar (paper syntax, section 3/5 examples)::

    define     := "define" IDENT "as" type ";"
    type       := IDENT "<" typearg ("," typearg)* ">"   -- structure
                | IDENT                                   -- base type name
    typearg    := type ":" IDENT                          -- named field (TUPLE)
                | type                                    -- positional arg

The field-name-after-type convention (``Atomic<URL>: source``) follows
the paper exactly.  Structures are resolved through the registry in
:mod:`repro.moa.types`, so DDL text can mention extension structures
(``LIST``, ``CONTREP``) as soon as their module registered them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.moa.errors import MoaParseError, MoaTypeError
from repro.moa.lexer import Token, tokenize
from repro.moa.types import (
    MoaType,
    make_tuple_type,
    structure_factory,
)


class _DDLParser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value or kind
            raise MoaParseError(
                f"expected {expected}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if token.kind != "IDENT" or token.value != word:
            raise MoaParseError(
                f"expected keyword {word!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    # ------------------------------------------------------------------
    def parse_define(self) -> Tuple[str, MoaType]:
        self.expect_keyword("define")
        name = self.expect("IDENT").value
        self.expect_keyword("as")
        ty = self.parse_type()
        self.expect("SEMI")
        return name, ty

    def parse_defines(self) -> Dict[str, MoaType]:
        schema: Dict[str, MoaType] = {}
        while self.peek().kind != "EOF":
            name, ty = self.parse_define()
            if name in schema:
                raise MoaTypeError(f"collection {name!r} defined twice")
            schema[name] = ty
        return schema

    # ------------------------------------------------------------------
    def parse_type(self) -> MoaType:
        head = self.expect("IDENT")
        if self.peek().kind != "LT":
            # Bare identifier in type position: a base-type shorthand is
            # not allowed at top level -- structures only.
            raise MoaParseError(
                f"expected '<' after structure name {head.value!r}",
                head.line,
                head.column,
            )
        self.advance()  # LT
        if head.value == "TUPLE":
            ty = self._parse_tuple_body()
        else:
            args = self._parse_positional_args()
            factory = structure_factory(head.value)
            ty = factory(args)
        self._expect_close_angle(head)
        return ty

    def _parse_tuple_body(self) -> MoaType:
        fields: List[Tuple[str, MoaType]] = []
        while True:
            field_type = self._parse_type_arg()
            if isinstance(field_type, str):
                raise MoaParseError(
                    f"tuple field needs a structure type, got bare {field_type!r}",
                    self.peek().line,
                    self.peek().column,
                )
            self.expect("COLON")
            field_name = self.expect("IDENT").value
            fields.append((field_name, field_type))
            if self.peek().kind == "COMMA":
                self.advance()
                continue
            break
        return make_tuple_type(fields)

    def _parse_positional_args(self) -> List[Union[MoaType, str]]:
        args: List[Union[MoaType, str]] = [self._parse_type_arg()]
        while self.peek().kind == "COMMA":
            self.advance()
            args.append(self._parse_type_arg())
        return args

    def _parse_type_arg(self) -> Union[MoaType, str]:
        token = self.peek()
        if token.kind != "IDENT":
            raise MoaParseError(
                f"expected type, found {token.value!r}", token.line, token.column
            )
        # Lookahead: IDENT '<' means a nested structure, bare IDENT is a
        # base-type name argument (e.g. Atomic<URL>).
        if self.tokens[self.position + 1].kind == "LT":
            return self.parse_type()
        self.advance()
        return token.value

    def _expect_close_angle(self, head: Token) -> None:
        token = self.peek()
        if token.kind == "GT":
            self.advance()
            return
        raise MoaParseError(
            f"unclosed type bracket for {head.value!r}: found {token.value!r}",
            token.line,
            token.column,
        )


def parse_define(text: str) -> Tuple[str, MoaType]:
    """Parse a single ``define Name as Type;`` statement."""
    return _DDLParser(tokenize(text)).parse_define()


def parse_schema(text: str) -> Dict[str, MoaType]:
    """Parse any number of define statements into a name->type schema."""
    return _DDLParser(tokenize(text)).parse_defines()


def render_define(name: str, ty: MoaType) -> str:
    """Inverse of :func:`parse_define` (used by the data dictionary)."""
    return f"define {name} as {ty.render()};"
