"""Parser for Moa DDL/DML: ``define`` and ``insert`` statements.

Grammar (paper syntax, section 3/5 examples; delete/update added by
the unified-mutation PR)::

    statement  := define | insert | delete | update
    define     := "define" IDENT "as" type ";"
    type       := IDENT "<" typearg ("," typearg)* ">"   -- structure
                | IDENT                                   -- base type name
    typearg    := type ":" IDENT                          -- named field (TUPLE)
                | type                                    -- positional arg
    insert     := "insert" "into" IDENT "values" row ("," row)* ";"
    delete     := "delete" "from" IDENT ["where" predicate] ";"
    update     := "update" IDENT "set" assignment
                  ("," assignment)* ["where" predicate] ";"
    assignment := IDENT "=" literal
    predicate  := IDENT "=" literal                       -- field equality
                | "value" "=" literal                     -- SET<Atomic> element
    row        := "(" literal ("," literal)* ")"
    literal    := STR | ["-"] INT | ["-"] FLT | "nil" | "true" | "false"

The field-name-after-type convention (``Atomic<URL>: source``) follows
the paper exactly.  Structures are resolved through the registry in
:mod:`repro.moa.types`, so DDL text can mention extension structures
(``LIST``, ``CONTREP``) as soon as their module registered them.

``insert`` covers the flat subset -- one row per new tuple, literals
bound positionally to the TUPLE fields (or a single literal per row for
``SET<Atomic<...>>`` collections).  Nested SET/LIST attribute values
have no literal syntax; load those through the Python API.

``delete``/``update`` cover the matching flat subset: the ``where``
predicate is a single field-equality test (omitting it addresses every
tuple), ``set`` assigns literals to named TUPLE fields -- or, for
``SET<Atomic<...>>`` collections, the pseudo-field ``value``.  The
executor evaluates the predicate against the commit-time state inside
a :class:`~repro.core.mirror.Transaction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.moa.errors import MoaParseError, MoaTypeError
from repro.moa.lexer import Token, tokenize
from repro.moa.types import (
    MoaType,
    make_tuple_type,
    structure_factory,
)


@dataclass
class DefineStatement:
    """A parsed ``define Name as Type;``."""

    name: str
    ty: MoaType


@dataclass
class InsertStatement:
    """A parsed ``insert into Name values (...), ...;``.

    ``rows`` holds one positional literal list per inserted tuple; the
    executor binds them to the collection's element type (by field
    order for TUPLEs).
    """

    name: str
    rows: List[List[Any]]


@dataclass
class DeleteStatement:
    """A parsed ``delete from Name [where field = literal];``.

    ``where`` is ``None`` for an unqualified delete (every tuple), else
    a ``(field, literal)`` equality pair.  For ``SET<Atomic>``
    collections the field is the pseudo-name ``value`` (the element
    itself).
    """

    name: str
    where: Optional[Tuple[str, Any]] = None


@dataclass
class UpdateStatement:
    """A parsed ``update Name set f = lit, ... [where field = literal];``.

    ``assignments`` maps field names to their new literals (``value``
    for ``SET<Atomic>``); ``where`` as in :class:`DeleteStatement`.
    """

    name: str
    assignments: Dict[str, Any] = None  # type: ignore[assignment]
    where: Optional[Tuple[str, Any]] = None


Statement = Union[DefineStatement, InsertStatement, DeleteStatement, UpdateStatement]


class _DDLParser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value or kind
            raise MoaParseError(
                f"expected {expected}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if token.kind != "IDENT" or token.value != word:
            raise MoaParseError(
                f"expected keyword {word!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    # ------------------------------------------------------------------
    def parse_define(self) -> Tuple[str, MoaType]:
        self.expect_keyword("define")
        name = self.expect("IDENT").value
        self.expect_keyword("as")
        ty = self.parse_type()
        self.expect("SEMI")
        return name, ty

    def parse_defines(self) -> Dict[str, MoaType]:
        schema: Dict[str, MoaType] = {}
        while self.peek().kind != "EOF":
            name, ty = self.parse_define()
            if name in schema:
                raise MoaTypeError(f"collection {name!r} defined twice")
            schema[name] = ty
        return schema

    def parse_insert(self) -> Tuple[str, List[List[Any]]]:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        name = self.expect("IDENT").value
        self.expect_keyword("values")
        rows = [self._parse_row()]
        while self.peek().kind == "COMMA":
            self.advance()
            rows.append(self._parse_row())
        self.expect("SEMI")
        return name, rows

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        name = self.expect("IDENT").value
        where = self._parse_optional_where()
        self.expect("SEMI")
        return DeleteStatement(name, where)

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        name = self.expect("IDENT").value
        self.expect_keyword("set")
        assignments: Dict[str, Any] = {}
        while True:
            field_token = self.expect("IDENT")
            if field_token.value in assignments:
                raise MoaParseError(
                    f"field {field_token.value!r} assigned twice",
                    field_token.line,
                    field_token.column,
                )
            self.expect("EQ")
            assignments[field_token.value] = self._parse_literal()
            if self.peek().kind == "COMMA":
                self.advance()
                continue
            break
        where = self._parse_optional_where()
        self.expect("SEMI")
        return UpdateStatement(name, assignments, where)

    def _parse_optional_where(self) -> Optional[Tuple[str, Any]]:
        token = self.peek()
        if token.kind != "IDENT" or token.value != "where":
            return None
        self.advance()
        field = self.expect("IDENT").value
        self.expect("EQ")
        return (field, self._parse_literal())

    def parse_statements(self) -> List[Statement]:
        statements: List[Statement] = []
        while self.peek().kind != "EOF":
            token = self.peek()
            if token.kind == "IDENT" and token.value == "define":
                statements.append(DefineStatement(*self.parse_define()))
            elif token.kind == "IDENT" and token.value == "insert":
                statements.append(InsertStatement(*self.parse_insert()))
            elif token.kind == "IDENT" and token.value == "delete":
                statements.append(self.parse_delete())
            elif token.kind == "IDENT" and token.value == "update":
                statements.append(self.parse_update())
            else:
                raise MoaParseError(
                    "expected 'define', 'insert', 'delete' or 'update', "
                    f"found {token.value!r}",
                    token.line,
                    token.column,
                )
        return statements

    def _parse_row(self) -> List[Any]:
        self.expect("LPAREN")
        row = [self._parse_literal()]
        while self.peek().kind == "COMMA":
            self.advance()
            row.append(self._parse_literal())
        self.expect("RPAREN")
        return row

    def _parse_literal(self) -> Any:
        token = self.peek()
        if token.kind == "STR":
            self.advance()
            return token.value
        if token.kind == "INT":
            self.advance()
            return int(token.value)
        if token.kind == "FLT":
            self.advance()
            return float(token.value)
        if token.kind == "MINUS":
            self.advance()
            number = self.peek()
            if number.kind == "INT":
                self.advance()
                return -int(number.value)
            if number.kind == "FLT":
                self.advance()
                return -float(number.value)
            raise MoaParseError(
                f"expected number after '-', found {number.value!r}",
                number.line,
                number.column,
            )
        if token.kind == "IDENT" and token.value in ("nil", "true", "false"):
            self.advance()
            if token.value == "nil":
                return None
            return token.value == "true"
        raise MoaParseError(
            f"expected literal, found {token.value!r}", token.line, token.column
        )

    # ------------------------------------------------------------------
    def parse_type(self) -> MoaType:
        head = self.expect("IDENT")
        if self.peek().kind != "LT":
            # Bare identifier in type position: a base-type shorthand is
            # not allowed at top level -- structures only.
            raise MoaParseError(
                f"expected '<' after structure name {head.value!r}",
                head.line,
                head.column,
            )
        self.advance()  # LT
        if head.value == "TUPLE":
            ty = self._parse_tuple_body()
        else:
            args = self._parse_positional_args()
            factory = structure_factory(head.value)
            ty = factory(args)
        self._expect_close_angle(head)
        return ty

    def _parse_tuple_body(self) -> MoaType:
        fields: List[Tuple[str, MoaType]] = []
        while True:
            field_type = self._parse_type_arg()
            if isinstance(field_type, str):
                raise MoaParseError(
                    f"tuple field needs a structure type, got bare {field_type!r}",
                    self.peek().line,
                    self.peek().column,
                )
            self.expect("COLON")
            field_name = self.expect("IDENT").value
            fields.append((field_name, field_type))
            if self.peek().kind == "COMMA":
                self.advance()
                continue
            break
        return make_tuple_type(fields)

    def _parse_positional_args(self) -> List[Union[MoaType, str]]:
        args: List[Union[MoaType, str]] = [self._parse_type_arg()]
        while self.peek().kind == "COMMA":
            self.advance()
            args.append(self._parse_type_arg())
        return args

    def _parse_type_arg(self) -> Union[MoaType, str]:
        token = self.peek()
        if token.kind != "IDENT":
            raise MoaParseError(
                f"expected type, found {token.value!r}", token.line, token.column
            )
        # Lookahead: IDENT '<' means a nested structure, bare IDENT is a
        # base-type name argument (e.g. Atomic<URL>).
        if self.tokens[self.position + 1].kind == "LT":
            return self.parse_type()
        self.advance()
        return token.value

    def _expect_close_angle(self, head: Token) -> None:
        token = self.peek()
        if token.kind == "GT":
            self.advance()
            return
        raise MoaParseError(
            f"unclosed type bracket for {head.value!r}: found {token.value!r}",
            token.line,
            token.column,
        )


def parse_define(text: str) -> Tuple[str, MoaType]:
    """Parse a single ``define Name as Type;`` statement."""
    return _DDLParser(tokenize(text)).parse_define()


def parse_schema(text: str) -> Dict[str, MoaType]:
    """Parse any number of define statements into a name->type schema."""
    return _DDLParser(tokenize(text)).parse_defines()


def parse_insert(text: str) -> InsertStatement:
    """Parse a single ``insert into Name values (...), ...;`` statement."""
    return InsertStatement(*_DDLParser(tokenize(text)).parse_insert())


def parse_delete(text: str) -> DeleteStatement:
    """Parse a single ``delete from Name [where f = lit];`` statement."""
    return _DDLParser(tokenize(text)).parse_delete()


def parse_update(text: str) -> UpdateStatement:
    """Parse a single ``update Name set ... [where f = lit];`` statement."""
    return _DDLParser(tokenize(text)).parse_update()


def parse_script(text: str) -> List[Statement]:
    """Parse a mixed script of define and insert statements, in order."""
    return _DDLParser(tokenize(text)).parse_statements()


def render_define(name: str, ty: MoaType) -> str:
    """Inverse of :func:`parse_define` (used by the data dictionary)."""
    return f"define {name} as {ty.render()};"
