"""Moa structure implementations.

The kernel structures (``Atomic``, ``TUPLE``, ``SET``) live in
:mod:`repro.moa.types` and :mod:`repro.moa.mapping`; this package holds
the *extension* structures the Mirror paper showcases:

* :mod:`repro.moa.structures.contrep` -- the CONTREP content
  representation for multimedia information retrieval (section 3);
* ``LIST`` is registered by the kernel (types/mapping) but documented
  here as the canonical generic extension example (Acknowledgments).

Importing this package registers the extensions; :mod:`repro.moa` does
so automatically.
"""

from repro.moa.structures.contrep import ContentRepresentation, ContrepType

__all__ = ["ContrepType", "ContentRepresentation"]
