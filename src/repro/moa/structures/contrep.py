"""CONTREP: the content-representation structure for multimedia IR.

"The CONTREP Moa structure supports the ranking scheme known as the
inference network retrieval model." (Mirror paper, section 3.)

This module demonstrates the full extension recipe of the paper:

1. a new **structure type** ``CONTREP<media>`` registered with the DDL
   parser/type system;
2. a **physical mapper** laying the structure out as inverted-file BATs
   (``owner``/``term``/``tf``/``doclen``, see :mod:`repro.ir.index`);
3. a **logical operation** ``getBL(contrep, query, stats)`` registered
   in the function registry with typecheck + interpret hooks;
4. a **compile hook** emitting the probabilistic operators at the
   physical level: the belief formula becomes a pipeline of multiplexed
   BAT arithmetic inside the generated MIL plan.

Nothing in the Moa kernel mentions CONTREP -- it is wired in entirely
through the registries, exactly the open-system claim of section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.ir.beliefs import DEFAULT_PARAMETERS, belief_list
from repro.ir.stats import CollectionStats
from repro.ir.tokenize import analyze
from repro.moa.compiler import (
    AtomCol,
    Compiler,
    ContrepLazy,
    NestedSet,
    register_attr_rep,
)
from repro.moa.errors import MoaCompileError, MoaTypeError
from repro.moa.functions import register_compile_hook, register_function
from repro.moa.mapping import StructureMapper, register_attribute, register_mapper
from repro.moa.types import (
    AtomicType,
    MoaType,
    SetType,
    StatsType,
    register_structure,
)
from repro.monet.bat import dense_bat


# ----------------------------------------------------------------------
# 1. The structure type
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class ContrepType(MoaType):
    """``CONTREP<media>``: an indexed content representation."""

    media: str

    structure = "CONTREP"

    def render(self) -> str:
        return f"CONTREP<{self.media}>"


def _contrep_factory(args):
    if len(args) != 1 or not isinstance(args[0], str):
        raise MoaTypeError("CONTREP takes exactly one media-type name")
    return ContrepType(args[0])


register_structure("CONTREP", _contrep_factory)


# ----------------------------------------------------------------------
# Runtime value
# ----------------------------------------------------------------------


class ContentRepresentation:
    """Python-level CONTREP value: term frequencies plus length.

    Constructible from raw text (tokenized/stopped/stemmed for ``Text``
    media), a token list (counted as-is, used for cluster labels), or a
    prepared term->tf mapping.
    """

    __slots__ = ("terms", "length")

    def __init__(self, terms: Mapping[str, int], length: Optional[int] = None):
        self.terms: Dict[str, int] = {
            t: int(f) for t, f in terms.items() if int(f) > 0
        }
        self.length = int(length) if length is not None else sum(self.terms.values())

    @classmethod
    def from_value(cls, value: Any, media: str) -> "ContentRepresentation":
        if isinstance(value, ContentRepresentation):
            return value
        if value is None:
            return cls({})
        if isinstance(value, str):
            tokens = analyze(value) if media == "Text" else value.split()
            return cls.from_tokens(tokens)
        if isinstance(value, Mapping):
            return cls(value)
        if isinstance(value, (list, tuple)):
            return cls.from_tokens(list(value))
        raise MoaTypeError(
            f"cannot build a CONTREP value from {type(value).__name__}"
        )

    @classmethod
    def from_tokens(cls, tokens: Sequence[str]) -> "ContentRepresentation":
        counts: Dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        return cls(counts)

    def get(self, term: str, default: int = 0) -> int:
        return self.terms.get(term, default)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ContentRepresentation)
            and self.terms == other.terms
            and self.length == other.length
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContentRepresentation({self.terms!r}, length={self.length})"


# ----------------------------------------------------------------------
# 2. The physical mapper (inverted-file BATs)
# ----------------------------------------------------------------------


class ContrepMapper(StructureMapper):
    """CONTREP attribute -> owner/term/tf/doclen BATs under the prefix."""

    def load(self, pool, prefix, ty: ContrepType, values):
        reps = [ContentRepresentation.from_value(v, ty.media) for v in values]
        owners: List[int] = []
        terms: List[str] = []
        tfs: List[int] = []
        lengths: List[int] = []
        for owner_oid, rep in enumerate(reps):
            for term in sorted(rep.terms):
                owners.append(owner_oid)
                terms.append(term)
                tfs.append(rep.terms[term])
            lengths.append(rep.length)
        register_attribute(pool, f"{prefix}.owner", dense_bat("oid", owners))
        register_attribute(pool, f"{prefix}.term", dense_bat("str", terms))
        register_attribute(pool, f"{prefix}.tf", dense_bat("int", tfs))
        register_attribute(pool, f"{prefix}.doclen", dense_bat("int", lengths))

    def reconstruct(self, pool, prefix, ty: ContrepType, count):
        owner = pool.lookup(f"{prefix}.owner").tail_values()
        term = pool.lookup(f"{prefix}.term").tail_values()
        tf = pool.lookup(f"{prefix}.tf").tail_values()
        doclen = pool.lookup(f"{prefix}.doclen").tail_values()
        if len(doclen) != count:
            raise MoaTypeError(
                f"{prefix}: doclen covers {len(doclen)} docs, expected {count}"
            )
        terms_per_doc: List[Dict[str, int]] = [dict() for _ in range(count)]
        for i in range(len(owner)):
            terms_per_doc[int(owner[i])][term[i]] = int(tf[i])
        return [
            ContentRepresentation(terms_per_doc[i], int(doclen[i]))
            for i in range(count)
        ]

    def bat_names(self, prefix: str) -> List[str]:
        return [f"{prefix}.{s}" for s in ("owner", "term", "tf", "doclen")]


register_mapper(ContrepType, ContrepMapper())


# ----------------------------------------------------------------------
# 3. The logical operation: getBL
# ----------------------------------------------------------------------


def _tc_getbl(arg_types):
    if len(arg_types) != 3:
        raise MoaTypeError("getBL takes (contrep, query, stats)")
    contrep, query, stats = arg_types
    if not isinstance(contrep, ContrepType):
        raise MoaTypeError(
            "getBL's first argument must be a CONTREP attribute, "
            f"got {contrep.render()}"
        )
    query_ok = (
        isinstance(query, SetType)
        and isinstance(query.element, AtomicType)
        and query.element.atom == "str"
    )
    if not query_ok:
        raise MoaTypeError(
            f"getBL's query must be SET<Atomic<str>>, got {query.render()}"
        )
    if not isinstance(stats, StatsType):
        raise MoaTypeError(
            f"getBL's third argument must be collection stats, got {stats.render()}"
        )
    return SetType(AtomicType("float"))


def _interp_getbl(args, _context):
    contrep, query_terms, stats = args
    rep = (
        contrep
        if isinstance(contrep, ContentRepresentation)
        else ContentRepresentation.from_value(contrep, "Text")
    )
    if not isinstance(stats, CollectionStats):
        raise MoaTypeError("getBL stats parameter must be CollectionStats")
    return belief_list(rep.terms, rep.length, list(query_terms), stats)


register_function("getBL", _tc_getbl, _interp_getbl)


# ----------------------------------------------------------------------
# 4. The compile hook: probabilistic operators at the physical level
# ----------------------------------------------------------------------


def _contrep_attr_rep(compiler: Compiler, prefix: str, ty: ContrepType, gather: str):
    return ContrepLazy(prefix=prefix, gather=gather)


register_attr_rep("ContrepType", _contrep_attr_rep)


def _compile_getbl(compiler: Compiler, cc, node):
    """Emit the getBL belief pipeline into the MIL plan.

    Produces a NestedSet of beliefs per document: postings matching the
    query are selected with a term join, and the InQuery belief formula
    runs as multiplexed BAT arithmetic -- identical numerics to
    :func:`repro.ir.beliefs.beliefs_array`.
    """
    from repro.moa import ast as moa_ast

    contrep_rep = compiler.compile_elem(node.args[0], cc)
    cols = compiler.force_contrep(contrep_rep, cc)
    query_node = node.args[1]
    stats_node = node.args[2]
    if not isinstance(query_node, moa_ast.VarRef):
        raise MoaCompileError("getBL query must be a bound parameter")
    if not isinstance(stats_node, moa_ast.VarRef):
        raise MoaCompileError("getBL stats must be a bound parameter")
    qvar = query_node.name
    stats_name = stats_node.name

    params = DEFAULT_PARAMETERS
    alpha = params.default_belief
    # Match postings against the query terms (duplicates keep weighted
    # queries working: each occurrence contributes once).
    matches = compiler.emit(f"{cols.term}.join({qvar}.reverse)", "m")
    sel = compiler.emit(f"{matches}.mirror.mark(oid(0)).reverse", "sel")
    btf = compiler.emit(f"{sel}.join({cols.tf})", "btf")
    bown = compiler.emit(f"{sel}.join({cols.owner})", "bown")
    bterm = compiler.emit(f"{sel}.join({cols.term})", "bterm")
    bdf = compiler.emit(f"{bterm}.join({stats_name}_df)", "bdf")
    bdl = compiler.emit(f"{bown}.join({cols.doclen})", "bdl")
    # Scalar precomputations from the stats bindings.
    n_plus_half = compiler.emit(f"dbl({stats_name}_N) + 0.5", "s")
    log_n = compiler.emit(f"log(dbl({stats_name}_N) + 1.0)", "s")
    # ntf = tf / (tf + k + w * dl / avgdl)
    tf_dbl = compiler.emit(f"[dbl]({btf})", "v")
    dl_term = compiler.emit(
        f"[/]([*]({params.tf_doclen_weight}, [dbl]({bdl})), {stats_name}_avgdl)",
        "v",
    )
    denominator = compiler.emit(
        f"[+]([+]({tf_dbl}, {params.tf_k}), {dl_term})", "v"
    )
    ntf = compiler.emit(f"[/]({tf_dbl}, {denominator})", "ntf")
    # nidf = log((N + 0.5)/df) / log(N + 1)
    nidf = compiler.emit(
        f"[/]([log]([/]({n_plus_half}, [dbl]({bdf}))), {log_n})", "nidf"
    )
    bel = compiler.emit(
        f"[+]({alpha}, [*]([*]({1.0 - alpha}, {ntf}), {nidf}))", "bel"
    )
    return NestedSet(parent=bown, elem=AtomCol(bel, "dbl"))


register_compile_hook("getBL", _compile_getbl)
