"""repro: a reproduction of "The Mirror MMDBMS Architecture" (VLDB 1999).

Layered exactly like the paper's system:

* :mod:`repro.monet` -- binary-relational (BAT) kernel + MIL plan
  language (the Monet substitute);
* :mod:`repro.moa` -- the Moa object algebra: structural OO types, DDL
  and query parsers, flattening compiler, optimizer, executor;
* :mod:`repro.ir` -- inference-network retrieval (the CONTREP engine);
* :mod:`repro.multimedia` -- images, segmentation, feature extraction;
* :mod:`repro.clustering` -- AutoClass substitute + baselines;
* :mod:`repro.thesaurus` -- the dual-coding association thesaurus;
* :mod:`repro.daemons` -- the Figure-1 distributed architecture;
* :mod:`repro.core` -- the Mirror DBMS facade and the digital library.

Quickstart::

    from repro.core import MirrorDBMS

    db = MirrorDBMS()
    db.define('define Lib as SET<TUPLE<Atomic<URL>: source, '
              'CONTREP<Text>: annotation>>;')
    db.insert('Lib', [{'source': 'u1', 'annotation': 'red sunset sea'}])
    stats = db.stats('Lib', 'annotation')
    scores = db.query(
        'map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib));',
        {'query': ['sunset'], 'stats': stats},
    ).value
"""

__version__ = "1.0.0"

from repro.core.mirror import MirrorDBMS

__all__ = ["MirrorDBMS", "__version__"]
