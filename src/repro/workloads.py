"""Workload generators for the benchmark harness (deliverable d).

Every experiment in EXPERIMENTS.md draws its data from these
generators so numbers across benches are comparable.  All generation is
seeded and deterministic:

* :func:`synth_annotations` -- annotated-image rows with Zipf-ish term
  frequencies (the text side of the library);
* :func:`build_text_db` -- a loaded ``TraditionalImgLib`` MirrorDBMS;
* :func:`interpreter_data` -- the same rows as Python values for the
  tuple-at-a-time baseline;
* :func:`visual_word_rows` -- ``ImageLibraryInternal`` rows with
  synthetic visual words (the content side).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.mirror import MirrorDBMS
from repro.ir.stats import CollectionStats
from repro.moa.structures.contrep import ContentRepresentation

#: Vocabulary for synthetic annotations, sampled with 1/rank weights.
VOCABULARY = [
    "sunset", "beach", "sea", "wave", "sand", "forest", "green", "tree",
    "leaf", "mountain", "snow", "rock", "peak", "city", "night", "light",
    "building", "ocean", "blue", "water", "desert", "dune", "dry", "sky",
    "red", "orange", "cloud", "storm", "river", "valley", "bridge", "road",
]

_WEIGHTS = [1.0 / (rank + 1) for rank in range(len(VOCABULARY))]

TRADITIONAL_DDL = """
define TraditionalImgLib as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation
  >>;
"""

INTERNAL_DDL = """
define ImageLibraryInternal as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation,
    CONTREP<Image>: image
  >>;
"""

#: The paper's section 3 ranking query.
SECTION3_QUERY = (
    "map[sum(THIS)]("
    "map[getBL(THIS.annotation, query, stats)](TraditionalImgLib));"
)

#: The section 5.2 content ranking query.
SECTION5_QUERY = (
    "map[sum(THIS)]("
    "map[getBL(THIS.image, query, stats)](ImageLibraryInternal));"
)


def synth_annotations(
    count: int, *, seed: int = 0, words_per_doc: int = 8
) -> List[dict]:
    """Synthetic annotated-image rows with Zipf-ish term frequencies."""
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        words = rng.choices(VOCABULARY, weights=_WEIGHTS, k=words_per_doc)
        rows.append(
            {
                "source": f"http://synthetic/{index:06d}",
                "annotation": " ".join(words),
            }
        )
    return rows


def build_text_db(
    count: int, *, seed: int = 0
) -> Tuple[MirrorDBMS, CollectionStats, List[dict]]:
    """(db, stats, rows) for a TraditionalImgLib of *count* documents."""
    db = MirrorDBMS()
    db.define(TRADITIONAL_DDL)
    rows = synth_annotations(count, seed=seed)
    db.replace("TraditionalImgLib", rows)
    stats = db.stats("TraditionalImgLib", "annotation")
    return db, stats, rows


def interpreter_data(rows: List[dict]) -> Dict[str, List[dict]]:
    """The same rows as Python values for the reference interpreter."""
    return {
        "TraditionalImgLib": [
            {
                "source": r["source"],
                "annotation": ContentRepresentation.from_value(
                    r["annotation"], "Text"
                ),
            }
            for r in rows
        ]
    }


def visual_word_rows(
    count: int,
    *,
    seed: int = 0,
    clusters: int = 40,
    words_per_image: int = 24,
) -> List[dict]:
    """ImageLibraryInternal rows with synthetic visual words."""
    rng = random.Random(seed)
    spaces = ["rgb", "hsv", "gabor", "glcm", "autocorr", "laws"]
    rows = []
    for index in range(count):
        tokens = [
            f"{rng.choice(spaces)}_{rng.randrange(clusters)}"
            for _ in range(words_per_image)
        ]
        rows.append(
            {
                "source": f"http://synthetic/{index:06d}",
                "annotation": " ".join(
                    rng.choices(VOCABULARY, weights=_WEIGHTS, k=5)
                ),
                "image": tokens,
            }
        )
    return rows


def build_internal_db(
    count: int, *, seed: int = 0, clusters: int = 40
) -> Tuple[MirrorDBMS, CollectionStats, List[dict]]:
    """(db, image-stats, rows) for an ImageLibraryInternal collection."""
    db = MirrorDBMS()
    db.define(INTERNAL_DDL)
    rows = visual_word_rows(count, seed=seed, clusters=clusters)
    db.replace("ImageLibraryInternal", rows)
    stats = db.stats("ImageLibraryInternal", "image")
    return db, stats, rows


def best_of(fn, repetitions: int = 3) -> float:
    """Best-of-N wall-clock timing with one warmup call (the measuring
    convention of every standalone bench report)."""
    import time

    fn()  # warmup: JIT-less but populates caches and allocators
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
