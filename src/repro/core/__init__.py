"""The Mirror DBMS itself: facade, library orchestration, feedback.

* :mod:`repro.core.mirror` -- :class:`MirrorDBMS`, the database facade:
  DDL, bulk loads, Moa queries, statistics, persistence;
* :mod:`repro.core.library` -- :class:`DigitalLibrary`, the Figure-1
  federation: web robot output in, queryable multimedia library out;
* :mod:`repro.core.feedback` -- relevance feedback: query reweighting
  and cross-session thesaurus adaptation (section 5.2's closing
  paragraphs);
* :mod:`repro.core.session` -- the interactive retrieval loop of the
  demo ("the user enters an initial (usually textual) query ...").
"""

from repro.core.feedback import FeedbackUpdate, RelevanceFeedback
from repro.core.library import DigitalLibrary, RetrievalResult
from repro.core.mirror import MirrorDBMS
from repro.core.session import RetrievalSession

__all__ = [
    "MirrorDBMS",
    "DigitalLibrary",
    "RetrievalResult",
    "RelevanceFeedback",
    "FeedbackUpdate",
    "RetrievalSession",
]
