"""Relevance feedback and thesaurus adaptation.

"The user may provide relevance feedback for these images; this
relevance feedback is used to improve the current query. ...  we are
investigating machine learning techniques to adapt the thesaurus and
the content representation, using the relevance feedback across query
sessions."  (Mirror paper, section 5.2.)

Two mechanisms are implemented:

* **query reweighting** (within a session): a Rocchio-style update on
  the visual-word query -- words frequent in relevant images are added
  (weighted by repetition, which the ranking treats as term weights),
  words frequent in non-relevant images are dropped;
* **thesaurus adaptation** (across sessions): (annotation word, visual
  word) associations observed in relevant images are reinforced, those
  in non-relevant images weakened -- the paper's future-work learning
  hook, applied through
  :meth:`repro.thesaurus.assoc.AssociationThesaurus.reinforce`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.library import DigitalLibrary
from repro.ir.tokenize import analyze


@dataclass
class FeedbackUpdate:
    """Result of one feedback round."""

    query: List[str]
    added: List[str]
    removed: List[str]
    reinforced: List[tuple]
    weakened: List[tuple]


class RelevanceFeedback:
    """Feedback engine bound to a library.

    Parameters
    ----------
    expansion_terms:
        How many new visual words to adopt from the relevant set.
    positive_factor / negative_factor:
        Multiplicative thesaurus reinforcement for associations seen in
        relevant / non-relevant images.
    """

    def __init__(
        self,
        library: DigitalLibrary,
        *,
        expansion_terms: int = 5,
        positive_factor: float = 1.5,
        negative_factor: float = 0.6,
    ):
        self.library = library
        self.expansion_terms = expansion_terms
        self.positive_factor = positive_factor
        self.negative_factor = negative_factor

    # ------------------------------------------------------------------
    def update_query(
        self,
        query: Sequence[str],
        relevant: Sequence[str],
        nonrelevant: Sequence[str] = (),
    ) -> FeedbackUpdate:
        """Rocchio-style update of a visual-word *query* given judged
        relevant / non-relevant image URLs."""
        positive = Counter()
        for url in relevant:
            positive.update(self.library.tokens_for(url))
        negative = Counter()
        for url in nonrelevant:
            negative.update(self.library.tokens_for(url))

        current = list(query)
        # Drop query words that dominate the non-relevant set.
        removed = [
            token
            for token in set(current)
            if negative.get(token, 0) > positive.get(token, 0)
        ]
        kept = [t for t in current if t not in removed]
        # Add the strongest discriminating words of the relevant set.
        candidates = [
            (count - negative.get(token, 0), token)
            for token, count in positive.items()
        ]
        candidates.sort(key=lambda item: (-item[0], item[1]))
        added: List[str] = []
        for advantage, token in candidates:
            if advantage <= 0 or len(added) >= self.expansion_terms:
                break
            added.append(token)
        new_query = kept + added
        return FeedbackUpdate(
            query=new_query,
            added=added,
            removed=removed,
            reinforced=[],
            weakened=[],
        )

    # ------------------------------------------------------------------
    def adapt_thesaurus(
        self,
        text_query: str,
        relevant: Sequence[str],
        nonrelevant: Sequence[str] = (),
    ) -> FeedbackUpdate:
        """Cross-session learning: reinforce (query word, visual word)
        associations from relevant images, weaken those from
        non-relevant images."""
        words = analyze(text_query)
        reinforced: List[tuple] = []
        weakened: List[tuple] = []
        for url in relevant:
            for token in set(self.library.tokens_for(url)):
                for word in words:
                    self.library.thesaurus.reinforce(
                        word, token, self.positive_factor
                    )
                    reinforced.append((word, token))
        for url in nonrelevant:
            for token in set(self.library.tokens_for(url)):
                for word in words:
                    self.library.thesaurus.reinforce(
                        word, token, self.negative_factor
                    )
                    weakened.append((word, token))
        return FeedbackUpdate(
            query=[], added=[], removed=[],
            reinforced=reinforced, weakened=weakened,
        )
