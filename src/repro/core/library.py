"""DigitalLibrary: the Figure-1 federation, end to end.

Wires together everything the paper's section 5 demo uses:

1. the web robot's crawl lands in the **media server**;
2. the ``ImageLibrary`` schema (section 5.2, verbatim) is defined in
   the **Mirror DBMS** and loaded with (url, annotation, image-ref)
   tuples;
3. the **segmentation daemon** and the six **feature daemons** run over
   the media (through ORB proxies), producing the intermediate schema's
   per-segment feature vectors;
4. the **clustering daemon** (AutoClass) fits each feature space; the
   clusters become visual words;
5. the ``ImageLibraryInternal`` schema (CONTREP annotation + CONTREP
   image) is loaded -- the internal schema of section 5.2;
6. the **thesaurus daemon** associates annotation words with visual
   words (dual coding);
7. queries: text-only ranking (section 3 query), content ranking via
   thesaurus formulation (section 5.2 query), or both combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.assignments import ClusterVocabulary
from repro.core.mirror import MirrorDBMS
from repro.daemons.daemon import (
    ClusteringDaemon,
    FeatureDaemon,
    SegmentationDaemon,
    ThesaurusDaemon,
)
from repro.daemons.dictionary import DataDictionary
from repro.daemons.mediaserver import MediaServer
from repro.daemons.orb import Orb
from repro.ir.tokenize import analyze
from repro.multimedia.webrobot import CrawledImage

#: The paper's section 5.2 external schema, verbatim.
IMAGE_LIBRARY_DDL = """
define ImageLibrary as
SET<
  TUPLE<
    Atomic<URL>: source,
    Atomic<Text>: annotation,
    Atomic<Image>: image
  >>;
"""

#: The paper's internal schema after daemons have run, verbatim.
IMAGE_LIBRARY_INTERNAL_DDL = """
define ImageLibraryInternal as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation,
    CONTREP<Image>: image
  >>;
"""

#: The *intermediate* schema of section 5.2: per-segment feature
#: vectors, before clustering turns them into visual words.  The paper
#: lists RGB and Gabor columns; we carry one Vector column per
#: configured feature space (same shape, generalized to the six
#: daemons of section 5.1).
def intermediate_ddl(feature_spaces) -> str:
    columns = ",\n        ".join(
        f"Atomic<Vector>: {space}" for space in feature_spaces
    )
    return f"""
    define ImageLibraryIntermediate as
    SET<
      TUPLE<
        Atomic<URL>: source,
        CONTREP<Text>: annotation,
        SET<
          TUPLE<
            Atomic<Image>: segment,
            {columns}
          >
        >: image_segments
      >>;
    """

#: The section 5.2 ranking query over image content.
CONTENT_QUERY = (
    "map[tuple(source = THIS.source, "
    "score = sum(getBL(THIS.image, query, stats)))]"
    "(ImageLibraryInternal);"
)

#: The section 3 ranking query over annotations.
TEXT_QUERY = (
    "map[tuple(source = THIS.source, "
    "score = sum(getBL(THIS.annotation, query, stats)))]"
    "(ImageLibraryInternal);"
)


@dataclass
class RetrievalResult:
    """One ranked answer."""

    url: str
    score: float
    true_class: Optional[str] = None


class DigitalLibrary:
    """The full multimedia digital library federation."""

    FEATURE_SPACES = ("rgb", "hsv", "gabor", "glcm", "autocorr", "laws")

    def __init__(
        self,
        *,
        feature_spaces: Sequence[str] = FEATURE_SPACES,
        clustering_algorithm: str = "autoclass",
        max_classes: int = 8,
        segmentation: str = "grid",
        grid: Tuple[int, int] = (2, 2),
        seed: int = 0,
    ):
        self.orb = Orb()
        self.dictionary = DataDictionary()
        self.media = MediaServer()
        self.mirror = MirrorDBMS()
        self.seed = seed
        # Daemons + their ORB proxies (all calls below go through the
        # proxies: marshalled, accounted, location-transparent).
        segmenter = SegmentationDaemon(
            media=self.media, method=segmentation, rows=grid[0], cols=grid[1]
        )
        self.segmenter = segmenter.attach(self.orb, self.dictionary)
        self.feature_daemons = {}
        for space in feature_spaces:
            daemon = FeatureDaemon(space, media=self.media)
            self.feature_daemons[space] = daemon.attach(self.orb, self.dictionary)
        clusterer = ClusteringDaemon(
            algorithm=clustering_algorithm, max_classes=max_classes, seed=seed
        )
        self.clusterer = clusterer.attach(self.orb, self.dictionary)
        thesaurus = ThesaurusDaemon()
        self.thesaurus = thesaurus.attach(self.orb, self.dictionary)
        # Library state built by ingest()/run_daemons().
        self.items: List[CrawledImage] = []
        self.vocabularies: List[ClusterVocabulary] = []
        self.image_tokens: List[List[str]] = []
        self._annotation_stats = None
        self._image_stats = None

    # ------------------------------------------------------------------
    # Stage 1: crawl -> media server + external schema
    # ------------------------------------------------------------------
    def ingest(self, items: Sequence[CrawledImage]) -> int:
        """Load the robot's crawl: media bytes to the media server, the
        ``ImageLibrary`` tuples into the Mirror DBMS."""
        self.items = list(items)
        for item in self.items:
            self.media.put_image(item.url, item.image)
        self.dictionary.define(_one_line(IMAGE_LIBRARY_DDL))
        self.mirror.define(IMAGE_LIBRARY_DDL)
        rows = [
            {
                "source": item.url,
                "annotation": item.annotation or "",
                "image": item.url,
            }
            for item in self.items
        ]
        return self.mirror.replace("ImageLibrary", rows)

    # ------------------------------------------------------------------
    # Stage 2: daemons -> internal schema
    # ------------------------------------------------------------------
    def run_daemons(self, *, store_intermediate: bool = False) -> Dict[str, int]:
        """Run the full metadata-extraction pipeline; returns a summary
        (segment counts, vocabulary sizes, thesaurus entries).

        With ``store_intermediate=True`` the section 5.2 *intermediate*
        schema (``image_segments`` with per-segment feature vectors) is
        additionally materialized in the Mirror DBMS before clustering.
        """
        if not self.items:
            raise RuntimeError("ingest() a crawl first")
        bboxes_per_image: List[List[Tuple[int, int, int, int]]] = []
        for item in self.items:
            bboxes = self.segmenter.segment_url(item.url)
            bboxes_per_image.append([tuple(b) for b in bboxes])

        features: Dict[str, List[np.ndarray]] = {}
        for space, proxy in self.feature_daemons.items():
            per_image = []
            for item, bboxes in zip(self.items, bboxes_per_image):
                per_image.append(proxy.extract_url(item.url, bboxes))
            features[space] = per_image

        if store_intermediate:
            self._store_intermediate(bboxes_per_image, features)

        self.vocabularies = []
        for space, per_image in features.items():
            stacked = np.vstack([m for m in per_image if len(m)])
            model = self.clusterer.cluster(stacked)
            self.vocabularies.append(ClusterVocabulary(prefix=space, model=model))

        self.image_tokens = []
        for index in range(len(self.items)):
            tokens: List[str] = []
            for vocabulary in self.vocabularies:
                matrix = features[vocabulary.prefix][index]
                if len(matrix):
                    tokens.extend(vocabulary.tokens(matrix))
            self.image_tokens.append(tokens)

        self.dictionary.define(_one_line(IMAGE_LIBRARY_INTERNAL_DDL))
        self.mirror.define(IMAGE_LIBRARY_INTERNAL_DDL)
        rows = [
            {
                "source": item.url,
                "annotation": item.annotation or "",
                "image": tokens,
            }
            for item, tokens in zip(self.items, self.image_tokens)
        ]
        self.mirror.replace("ImageLibraryInternal", rows)
        self._annotation_stats = self.mirror.stats(
            "ImageLibraryInternal", "annotation"
        )
        self._image_stats = self.mirror.stats("ImageLibraryInternal", "image")

        pairs = []
        for item, tokens in zip(self.items, self.image_tokens):
            if item.annotation:
                pairs.append((analyze(item.annotation), tokens))
        associations = self.thesaurus.build(pairs)
        return {
            "images": len(self.items),
            "segments": sum(len(b) for b in bboxes_per_image),
            "feature_spaces": len(self.vocabularies),
            "visual_words": sum(
                getattr(v.model, "n_classes", 0) for v in self.vocabularies
            ),
            "thesaurus_associations": associations,
            "orb_calls": self.orb.call_count(),
        }

    def _store_intermediate(
        self,
        bboxes_per_image: List[List[Tuple[int, int, int, int]]],
        features: Dict[str, List[np.ndarray]],
    ) -> None:
        """Materialize the section 5.2 intermediate schema."""
        from repro.multimedia.vectors import encode_vector

        spaces = list(self.feature_daemons)
        ddl = intermediate_ddl(spaces)
        self.dictionary.define(_one_line(ddl))
        self.mirror.define(ddl)
        rows = []
        for index, (item, bboxes) in enumerate(
            zip(self.items, bboxes_per_image)
        ):
            segments = []
            for seg_index, bbox in enumerate(bboxes):
                segment = {"segment": f"{item.url}#seg{seg_index}"}
                for space in spaces:
                    segment[space] = encode_vector(
                        features[space][index][seg_index]
                    )
                segments.append(segment)
            rows.append(
                {
                    "source": item.url,
                    "annotation": item.annotation or "",
                    "image_segments": segments,
                }
            )
        self.mirror.replace("ImageLibraryIntermediate", rows)

    # ------------------------------------------------------------------
    # Stage 3: querying
    # ------------------------------------------------------------------
    def formulate(self, text: str, per_word: int = 3) -> List[str]:
        """Query formulation: text -> visual-cluster terms via the
        thesaurus daemon (the section 5.2 first step)."""
        return list(self.thesaurus.formulate(analyze(text), per_word))

    def query_text(self, text: str, k: int = 10) -> List[RetrievalResult]:
        """Rank by textual annotations (the section 3 query)."""
        terms = analyze(text)
        result = self.mirror.query(
            TEXT_QUERY, {"query": terms, "stats": self._annotation_stats}
        )
        return self._ranked(result.value, k)

    def query_content(
        self, text: str, k: int = 10, per_word: int = 3
    ) -> List[RetrievalResult]:
        """Rank by image content via thesaurus formulation (the
        section 5.2 query); returns [] when no clusters associate."""
        clusters = self.formulate(text, per_word)
        return self.query_clusters(clusters, k)

    def query_clusters(
        self, clusters: Sequence[str], k: int = 10
    ) -> List[RetrievalResult]:
        """Rank by an explicit visual-word query (the paper's ``query``
        Moa expression after formulation)."""
        if not clusters:
            return []
        result = self.mirror.query(
            CONTENT_QUERY, {"query": list(clusters), "stats": self._image_stats}
        )
        return self._ranked(result.value, k)

    def query_combined(
        self,
        text: str,
        k: int = 10,
        *,
        text_weight: float = 0.5,
        per_word: int = 3,
    ) -> List[RetrievalResult]:
        """Dual-coding retrieval: weighted sum of annotation and content
        scores (evidence combination across the two codes)."""
        terms = analyze(text)
        clusters = self.formulate(text, per_word)
        text_result = self.mirror.query(
            TEXT_QUERY, {"query": terms, "stats": self._annotation_stats}
        )
        scores: Dict[str, float] = {
            row["source"]: text_weight * row["score"]
            for row in text_result.value
        }
        if clusters:
            content_result = self.mirror.query(
                CONTENT_QUERY, {"query": clusters, "stats": self._image_stats}
            )
            for row in content_result.value:
                scores[row["source"]] = scores.get(row["source"], 0.0) + (
                    1.0 - text_weight
                ) * row["score"]
        ranked = [{"source": url, "score": s} for url, s in scores.items()]
        return self._ranked(ranked, k)

    # ------------------------------------------------------------------
    def _ranked(self, rows: List[dict], k: int) -> List[RetrievalResult]:
        classes = {item.url: item.true_class for item in self.items}
        results = [
            RetrievalResult(
                url=row["source"],
                score=float(row["score"]),
                true_class=classes.get(row["source"]),
            )
            for row in rows
        ]
        results.sort(key=lambda r: (-r.score, r.url))
        return results[:k]

    def tokens_for(self, url: str) -> List[str]:
        """Visual words of one image (feedback uses this)."""
        for item, tokens in zip(self.items, self.image_tokens):
            if item.url == url:
                return list(tokens)
        raise KeyError(f"unknown url {url!r}")

    def annotation_for(self, url: str) -> Optional[str]:
        for item in self.items:
            if item.url == url:
                return item.annotation
        raise KeyError(f"unknown url {url!r}")


def _one_line(ddl: str) -> str:
    return " ".join(ddl.split())
