"""MirrorDBMS: the database facade.

"The Mirror DBMS provides the basic functionality for probabilistic
inference, multimedia data types, and feature extraction techniques,
just like traditional database systems provide the basic functionality
to build administrative applications."  (Mirror paper, section 5.)

One object bundles the physical pool, the logical schema and the
executor::

    db = MirrorDBMS()
    db.define("define Lib as SET<TUPLE<Atomic<URL>: source, "
              "CONTREP<Text>: annotation>>;")
    db.insert("Lib", [{"source": ..., "annotation": "..."}, ...])
    stats = db.stats("Lib", "annotation")
    result = db.query("map[sum(THIS)](map[getBL(THIS.annotation, query, "
                      "stats)](Lib));", {"query": terms, "stats": stats})
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.stats import CollectionStats
from repro.moa import ast as moa_ast
from repro.moa.ddl import (
    DefineStatement,
    DeleteStatement,
    InsertStatement,
    UpdateStatement,
    parse_schema,
    parse_script,
    render_define,
)
from repro.moa.errors import MoaTypeError
from repro.moa.executor import MoaExecutor, QueryResult
from repro.moa.mapping import (
    VALUE_SUFFIX,
    attribute_bat_names,
    collection_count,
    reconstruct_collection,
)
from repro.moa.types import AtomicType, MoaType, TupleType
from repro.monet.bbp import BATBufferPool, replace_text
from repro.monet.errors import (
    InvalidMutationBatch,
    TransactionError,
    UnknownMutationTarget,
)
from repro.monet.fragments import FragmentationPolicy


@dataclass(frozen=True)
class MutationResult:
    """The one result type every mutation reports.

    ``count`` is rows affected (inserted / deleted / patched; for a
    ``commit`` the sum over its ``applied`` ops).  ``epoch`` is the
    catalog epoch the result is valid at: the transaction's pinned
    epoch for a staged op, the post-publish epoch for a committed one.
    """

    collection: str
    kind: str  # "insert" | "delete" | "update" | "commit" | "abort"
    count: int
    epoch: Optional[int] = None
    #: Per-op results, in staging order; non-empty only on ``commit``.
    applied: Tuple["MutationResult", ...] = ()


#: A ``where`` clause: ``None`` (every tuple), a ``{field: literal}``
#: equality conjunction (pseudo-field ``value`` for ``SET<Atomic>``),
#: a bare literal (matches ``SET<Atomic>`` elements), or a Python
#: predicate over reconstructed values.
Where = Union[None, Dict[str, Any], Callable[[Any], bool], Any]


class Transaction:
    """A multi-statement unit of work over one pinned catalog epoch.

    ``db.begin()`` pins a pool snapshot: every :meth:`query` of this
    transaction reads that one epoch, however many statements run and
    whatever concurrent writers commit in between.  Mutations --
    :meth:`insert` / :meth:`update` / :meth:`delete`, one signature
    shape, one :class:`MutationResult` type -- are *staged*:
    :meth:`commit` applies them all under the database's write lock
    (``where`` predicates re-evaluated against the live state at commit
    time, so a batch never deletes rows it can no longer see), and
    :meth:`abort` drops them leaving no visible state.  Usable as a
    context manager: clean exit commits, an exception aborts.
    """

    def __init__(self, db: "MirrorDBMS"):
        self.db = db
        self.snapshot = db.pool.read_snapshot()
        #: The pinned catalog epoch every read of this transaction sees.
        self.epoch: Optional[int] = getattr(self.snapshot, "epoch", None)
        self.state = "open"  # "open" | "committed" | "aborted"
        self._staged: List[Tuple[str, str, Any, Where]] = []

    # -- reads ---------------------------------------------------------
    def query(
        self,
        text: Union[str, moa_ast.Expr],
        params: Optional[Dict[str, Any]] = None,
        **modes,
    ) -> QueryResult:
        """Run a Moa query against the pinned snapshot (same epoch for
        every statement of the transaction).  Staged mutations are NOT
        visible -- reads see the begin-time state until commit."""
        self._require_open("query")
        return self.db.executor.execute(
            text, params, reader=self.snapshot, **modes
        )

    def count(self, name: str) -> int:
        """Cardinality of *name* at the pinned epoch."""
        self._require_open("count")
        self.db.collection_type(name)
        return collection_count(self.snapshot, name)

    def _target_type(self, name: str) -> MoaType:
        """The element type of a mutation target -- an unknown name is
        an :class:`UnknownMutationTarget` (the shared mutation-error
        vocabulary), not a bare type error."""
        try:
            return self.db.collection_type(name)
        except MoaTypeError as exc:
            raise UnknownMutationTarget(str(exc)) from None

    # -- staged mutations ---------------------------------------------
    def insert(self, name: str, values: Sequence[Any], *,
               where: Where = None) -> MutationResult:
        """Stage an insert of *values* into collection *name*."""
        self._require_open("insert")
        if where is not None:
            raise InvalidMutationBatch("insert takes no where clause")
        self._target_type(name)
        values = list(values)
        self._staged.append(("insert", name, values, None))
        return MutationResult(name, "insert", len(values), self.epoch)

    def delete(self, name: str, *, where: Where = None) -> MutationResult:
        """Stage a delete of the tuples of *name* matching *where*.
        The reported ``count`` previews the match against the pinned
        snapshot; commit re-evaluates against the live state."""
        self._require_open("delete")
        ty = self._target_type(name)
        preview = len(_where_positions(self.snapshot, name, ty, where))
        self._staged.append(("delete", name, None, where))
        return MutationResult(name, "delete", preview, self.epoch)

    def update(self, name: str, assignments: Any, *,
               where: Where = None) -> MutationResult:
        """Stage a patch: set *assignments* (a ``{field: value}`` dict
        for TUPLE elements, a bare value for ``SET<Atomic>``) on the
        tuples matching *where*.  ``count`` previews as in
        :meth:`delete`."""
        self._require_open("update")
        ty = self._target_type(name)
        _check_assignments(name, ty, assignments)
        preview = len(_where_positions(self.snapshot, name, ty, where))
        self._staged.append(("update", name, assignments, where))
        return MutationResult(name, "update", preview, self.epoch)

    # -- outcome -------------------------------------------------------
    def commit(self) -> MutationResult:
        """Apply every staged mutation under the database's write lock,
        in staging order, and publish.  Returns the summary result with
        per-op results in ``applied``."""
        self._require_open("commit")
        applied: List[MutationResult] = []
        with self.db.write_lock:
            for kind, name, payload, where in self._staged:
                ty = self.db.collection_type(name)
                if kind == "insert":
                    count = self.db._insert_locked(name, ty, payload)
                elif kind == "delete":
                    count = self.db._delete_locked(name, ty, where)
                else:
                    count = self.db._update_locked(name, ty, payload, where)
                applied.append(
                    MutationResult(name, kind, count, self.db.pool.epoch)
                )
            epoch = self.db.pool.epoch
        self.state = "committed"
        self._staged = []
        return MutationResult(
            "", "commit", sum(r.count for r in applied), epoch, tuple(applied)
        )

    def abort(self) -> MutationResult:
        """Drop every staged mutation; nothing becomes visible."""
        self._require_open("abort")
        dropped = len(self._staged)
        self._staged = []
        self.state = "aborted"
        return MutationResult("", "abort", dropped, self.epoch)

    def _require_open(self, verb: str) -> None:
        if self.state != "open":
            raise TransactionError(
                f"cannot {verb} on a {self.state} transaction"
            )

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state == "open":
            if exc_type is None:
                self.commit()
            else:
                self.abort()


class MirrorDBMS:
    """Schema + buffer pool + executor, with persistence.

    ``fragment_threshold`` turns on transparent horizontal
    fragmentation: attribute BATs loaded with at least that many BUNs
    are stored as fragments (see :mod:`repro.monet.fragments`), and
    compiled query plans execute them fragment-parallel end-to-end (the
    MIL interpreter dispatches to the fragment kernel; the optional
    ``fragment_policy`` governs intermediate re-fragmentation and may
    pin the executor backend -- ``FragmentationPolicy
    (backend="process")`` routes GIL-bound object-dtype (str)
    predicates to the process pool; the default follows
    ``REPRO_EXECUTOR_BACKEND`` and the calibrated tuning persisted in
    the BBP catalog).

    One MirrorDBMS is safe to share across threads (the query service
    runs every session against a single instance): the read path --
    :meth:`query` and friends -- takes no lock (compilation snapshots
    the schema, the pool's own lock guards catalog access), while the
    write path (:meth:`define`, :meth:`insert`, :meth:`replace`,
    :meth:`delete`, :meth:`save`) serializes on :attr:`write_lock` so
    concurrent read-modify-write loads cannot interleave.
    """

    def __init__(
        self,
        pool: Optional[BATBufferPool] = None,
        *,
        fragment_threshold: Optional[int] = None,
        fragment_policy: Optional[FragmentationPolicy] = None,
    ):
        self.pool = pool if pool is not None else BATBufferPool()
        self.schema: Dict[str, MoaType] = {}
        #: Serializes DDL and bulk loads; reads never take it.
        self.write_lock = threading.RLock()
        self._executor = MoaExecutor(
            self.pool,
            self.schema,
            fragment_threshold=fragment_threshold,
            fragment_policy=fragment_policy,
        )

    @property
    def fragment_threshold(self) -> Optional[int]:
        return self._executor.fragment_threshold

    @fragment_threshold.setter
    def fragment_threshold(self, value: Optional[int]) -> None:
        self._executor.fragment_threshold = value

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def define(self, ddl: str) -> List[str]:
        """Execute one or more ``define`` statements; returns the names."""
        parsed = parse_schema(ddl)
        with self.write_lock:
            for name, ty in parsed.items():
                self.schema[name] = ty
        return list(parsed)

    def collection_type(self, name: str) -> MoaType:
        try:
            return self.schema[name]
        except KeyError:
            raise MoaTypeError(f"no collection named {name!r}") from None

    def collections(self) -> List[str]:
        return sorted(self.schema)

    def ddl(self) -> str:
        """The whole schema as DDL text."""
        return "\n".join(
            render_define(name, ty) for name, ty in sorted(self.schema.items())
        )

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """Open a :class:`Transaction`: one pinned catalog epoch for
        every read, staged insert/update/delete applied atomically (all
        under the write lock) at commit, dropped wholesale at abort."""
        return Transaction(self)

    def insert(self, name: str, values: Sequence[Any]) -> int:
        """Insert *values* into collection *name*; returns the new
        cardinality.

        Thin auto-commit delegate over the :class:`Transaction` path
        (``begin(); insert(...); commit()``) -- prefer :meth:`begin`
        when several mutations or epoch-stable reads belong together.

        When the collection is already loaded and every mapper in its
        type tree supports incremental append, the commit takes the
        O(batch) delta path: new tuples get the next dense oids and
        every attribute BAT grows an append tail through the pool's
        copy-on-write/WAL machinery, so in-flight snapshot readers keep
        seeing the pre-insert state.  Otherwise (first load, or an
        extension structure without an append hook, e.g. CONTREP) it
        falls back to the bulk reconstruct+reload path."""
        txn = self.begin()
        txn.insert(name, values)
        txn.commit()
        return self.count(name)

    def execute(self, script: str) -> List[str]:
        """Run a mixed DDL/DML script (``define``, ``insert``,
        ``delete`` and ``update`` statements, in order); returns one
        summary line per statement.  Insert rows bind positionally to
        the element type's TUPLE fields (or a single literal for
        ``SET<Atomic<...>>``); delete/update predicates are single
        field-equality tests (see :mod:`repro.moa.ddl`)."""
        outcomes: List[str] = []
        with self.write_lock:
            for statement in parse_script(script):
                if isinstance(statement, DefineStatement):
                    self.schema[statement.name] = statement.ty
                    outcomes.append(f"defined {statement.name}")
                elif isinstance(statement, InsertStatement):
                    ty = self.collection_type(statement.name)
                    rows = _bind_rows(statement.name, ty, statement.rows)
                    count = self.insert(statement.name, rows)
                    outcomes.append(
                        f"inserted {len(rows)} into {statement.name} "
                        f"(count {count})"
                    )
                elif isinstance(statement, DeleteStatement):
                    where = dict([statement.where]) if statement.where else None
                    removed = self.delete(statement.name, where=where)
                    outcomes.append(
                        f"deleted {removed} from {statement.name}"
                    )
                elif isinstance(statement, UpdateStatement):
                    where = dict([statement.where]) if statement.where else None
                    ty = self.collection_type(statement.name)
                    assignments: Any = statement.assignments
                    if isinstance(getattr(ty, "element", None), AtomicType):
                        assignments = _atomic_assignment(
                            statement.name, assignments
                        )
                    touched = self.update(
                        statement.name, assignments, where=where
                    )
                    outcomes.append(
                        f"updated {touched} in {statement.name}"
                    )
        return outcomes

    def replace(self, name: str, values: Sequence[Any]) -> int:
        """Replace the contents of collection *name* entirely."""
        ty = self.collection_type(name)
        with self.write_lock:
            self._executor.load(name, ty, list(values))
        return len(values)

    def delete(self, name: str, predicate: Optional[str] = None, *,
               where: Where = None) -> int:
        """Delete tuples of *name*; returns how many were removed.

        The primary form is ``where=`` -- ``None`` (all), a
        ``{field: literal}`` equality dict, a bare literal for
        ``SET<Atomic>`` elements, or a Python predicate -- which is an
        auto-commit delegate over the :class:`Transaction` path and
        takes the O(changed) tombstone-delta route when the type tree
        supports it.

        The positional *predicate* form (a Moa boolean expression
        against ``THIS``) is the legacy surface, kept for callers that
        predate the unified mutation API; it recomputes the survivors
        with a compiled ``select[not(...)]`` and reloads.  Prefer
        ``where=``.
        """
        if predicate is not None:
            if where is not None:
                raise InvalidMutationBatch(
                    "delete takes a Moa predicate or where=, not both"
                )
            if not isinstance(predicate, str):
                where = predicate
            else:
                with self.write_lock:
                    before = self.count(name)
                    survivors = self.query(
                        f"select[not ({predicate})]({name});"
                    ).value
                    self.replace(name, survivors)
                return before - len(survivors)
        txn = self.begin()
        txn.delete(name, where=where)
        result = txn.commit()
        return result.applied[0].count

    def update(self, name: str, assignments: Any, *,
               where: Where = None) -> int:
        """Patch tuples of *name*: set *assignments* (``{field: value}``
        for TUPLE elements, a bare value for ``SET<Atomic>``) on the
        tuples matching *where*; returns how many were patched.
        Auto-commit delegate over the :class:`Transaction` path; the
        patch-delta route copies only the touched fragments' tails."""
        txn = self.begin()
        txn.update(name, assignments, where=where)
        result = txn.commit()
        return result.applied[0].count

    # -- commit-time internals (hold write_lock when calling) ----------
    def _insert_locked(self, name: str, ty: MoaType,
                       values: List[Any]) -> int:
        inserted = len(values)
        if self.pool.exists(f"{name}.__extent__"):
            appended = self._executor.append(name, ty, values)
            if appended is not None:
                return inserted
            values = reconstruct_collection(self.pool, name, ty) + values
        self._executor.load(name, ty, values)
        return inserted

    def _delete_locked(self, name: str, ty: MoaType, where: Where) -> int:
        positions = _where_positions(self.pool, name, ty, where)
        if not positions:
            return 0
        if self._executor.delete(name, ty, positions) is None:
            doomed = set(positions)
            survivors = [
                v
                for i, v in enumerate(
                    reconstruct_collection(self.pool, name, ty)
                )
                if i not in doomed
            ]
            self._executor.load(name, ty, survivors)
        return len(positions)

    def _update_locked(self, name: str, ty: MoaType, assignments: Any,
                       where: Where) -> int:
        positions = _where_positions(self.pool, name, ty, where)
        if not positions:
            return 0
        values = [assignments] * len(positions)
        if self._executor.update(name, ty, positions, values) is None:
            existing = reconstruct_collection(self.pool, name, ty)
            for position in positions:
                if isinstance(assignments, dict):
                    existing[position] = {
                        **existing[position], **assignments
                    }
                else:
                    existing[position] = assignments
            self._executor.load(name, ty, existing)
        return len(positions)

    def count(self, name: str) -> int:
        self.collection_type(name)
        return collection_count(self.pool, name)

    def contents(self, name: str) -> List[Any]:
        """Reconstruct the collection as Python values."""
        return reconstruct_collection(self.pool, name, self.collection_type(name))

    def bat_names(self, name: str) -> List[str]:
        """Physical BATs the collection occupies."""
        return attribute_bat_names(name, self.collection_type(name))

    # ------------------------------------------------------------------
    # Statistics (the `stats` query parameter)
    # ------------------------------------------------------------------
    def stats(self, collection: str, attribute: str) -> CollectionStats:
        """Collection statistics for a CONTREP attribute."""
        self.collection_type(collection)
        return CollectionStats.from_pool(self.pool, f"{collection}.{attribute}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def executor(self) -> MoaExecutor:
        return self._executor

    def query(
        self,
        text: Union[str, moa_ast.Expr],
        params: Optional[Dict[str, Any]] = None,
        **modes,
    ) -> QueryResult:
        """Run a Moa query through the full compiled pipeline."""
        return self._executor.execute(text, params, **modes)

    def query_interpreted(
        self,
        text: Union[str, moa_ast.Expr],
        params: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Run a query with the tuple-at-a-time reference interpreter
        over reconstructed data (slow; benchmarking/testing)."""
        data = {name: self.contents(name) for name in self.schema
                if self.pool.exists(f"{name}.__extent__")}
        return self._executor.execute_interpreted(text, data, params)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist pool + schema to *directory*."""
        directory = Path(directory)
        with self.write_lock:
            self.pool.save(directory)
            replace_text(directory / "schema.ddl", self.ddl() + "\n")

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "MirrorDBMS":
        """Restore a database saved with :meth:`save`."""
        directory = Path(directory)
        db = cls(BATBufferPool.load(directory))
        ddl_path = directory / "schema.ddl"
        if ddl_path.exists():
            db.define(ddl_path.read_text())
        return db


def _bind_rows(name: str, ty: MoaType, rows: List[List[Any]]) -> List[Any]:
    """Bind positional insert-statement literal rows to the element
    type of collection *name*: dicts by field order for TUPLE elements,
    bare values for Atomic elements."""
    element_ty = getattr(ty, "element", None)
    if isinstance(element_ty, TupleType):
        fields = [field_name for field_name, _ in element_ty.fields]
        values: List[Any] = []
        for row in rows:
            if len(row) != len(fields):
                raise MoaTypeError(
                    f"insert into {name}: expected {len(fields)} literals "
                    f"per row, got {len(row)}"
                )
            values.append(dict(zip(fields, row)))
        return values
    if isinstance(element_ty, AtomicType):
        for row in rows:
            if len(row) != 1:
                raise MoaTypeError(
                    f"insert into {name}: expected one literal per row "
                    f"for {element_ty.render()} elements, got {len(row)}"
                )
        return [row[0] for row in rows]
    rendered = element_ty.render() if element_ty is not None else ty.render()
    raise MoaTypeError(
        f"insert into {name}: no literal row form for {rendered} elements"
    )


def _atomic_assignment(name: str, assignments: Dict[str, Any]) -> Any:
    """Unwrap a DDL ``set value = lit`` assignment dict for a
    ``SET<Atomic>`` collection into the bare element value."""
    if set(assignments) != {"value"}:
        raise InvalidMutationBatch(
            f"update {name}: atomic-element collections take exactly "
            "'set value = ...'"
        )
    return assignments["value"]


def _check_assignments(name: str, ty: MoaType, assignments: Any) -> None:
    """Validate an update's assignments against the element type at
    stage time, so commit cannot fail on a malformed field name."""
    element_ty = getattr(ty, "element", None)
    if isinstance(element_ty, TupleType):
        if not isinstance(assignments, dict) or not assignments:
            raise InvalidMutationBatch(
                f"update {name}: TUPLE elements take a non-empty "
                "{field: value} dict"
            )
        fields = {field_name for field_name, _ in element_ty.fields}
        unknown = set(assignments) - fields
        if unknown:
            raise InvalidMutationBatch(
                f"update {name}: unknown field(s) {sorted(unknown)}"
            )
    elif isinstance(element_ty, AtomicType):
        if isinstance(assignments, dict):
            raise InvalidMutationBatch(
                f"update {name}: {element_ty.render()} elements take a "
                "bare value, not a dict"
            )


def _attribute_tails(reader: Any, bat_name: str) -> List[Any]:
    """Tail values of an attribute BAT through any pool-like reader
    (live pool, PoolSnapshot, namespace), coalescing fragments."""
    if reader.is_fragmented(bat_name):
        return reader.lookup_fragments(bat_name).to_bat().tail_list()
    return reader.lookup(bat_name).tail_list()


def _where_positions(
    reader: Any, name: str, ty: MoaType, where: Where
) -> List[int]:
    """Extent positions (== dense oids) of collection *name* matching
    *where*, evaluated against *reader* (a live pool at commit time, a
    pinned snapshot for previews).  Equality follows the kernel's
    comparison rule: a NIL literal matches nothing."""
    count = collection_count(reader, name)
    if where is None:
        return list(range(count))
    if callable(where):
        values = reconstruct_collection(reader, name, ty)
        return [i for i, v in enumerate(values) if where(v)]
    element_ty = getattr(ty, "element", None)
    if not isinstance(where, dict):
        if isinstance(element_ty, AtomicType):
            where = {"value": where}
        else:
            raise InvalidMutationBatch(
                f"{name}: where must be None, a {{field: literal}} dict "
                "or a predicate for TUPLE elements"
            )
    if not where:
        return list(range(count))
    positions: Optional[set] = None
    tuple_fields = (
        {field_name for field_name, _ in element_ty.fields}
        if isinstance(element_ty, TupleType)
        else None
    )
    for field_name, literal in where.items():
        if isinstance(element_ty, AtomicType) or field_name == "value":
            if not isinstance(element_ty, AtomicType):
                raise InvalidMutationBatch(
                    f"{name}: pseudo-field 'value' only addresses "
                    "SET<Atomic> elements"
                )
            bat_name = f"{name}.{VALUE_SUFFIX}"
        else:
            if tuple_fields is not None and field_name not in tuple_fields:
                raise InvalidMutationBatch(
                    f"{name}: unknown where field {field_name!r}"
                )
            bat_name = f"{name}.{field_name}"
        if literal is None:
            hits: set = set()  # NIL equals nothing (comparison rule)
        else:
            tails = _attribute_tails(reader, bat_name)
            hits = {
                i for i, v in enumerate(tails)
                if v is not None and v == literal
            }
        positions = hits if positions is None else positions & hits
        if not positions:
            return []
    return sorted(positions) if positions is not None else []
