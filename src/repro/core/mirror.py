"""MirrorDBMS: the database facade.

"The Mirror DBMS provides the basic functionality for probabilistic
inference, multimedia data types, and feature extraction techniques,
just like traditional database systems provide the basic functionality
to build administrative applications."  (Mirror paper, section 5.)

One object bundles the physical pool, the logical schema and the
executor::

    db = MirrorDBMS()
    db.define("define Lib as SET<TUPLE<Atomic<URL>: source, "
              "CONTREP<Text>: annotation>>;")
    db.insert("Lib", [{"source": ..., "annotation": "..."}, ...])
    stats = db.stats("Lib", "annotation")
    result = db.query("map[sum(THIS)](map[getBL(THIS.annotation, query, "
                      "stats)](Lib));", {"query": terms, "stats": stats})
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.ir.stats import CollectionStats
from repro.moa import ast as moa_ast
from repro.moa.ddl import (
    DefineStatement,
    InsertStatement,
    parse_schema,
    parse_script,
    render_define,
)
from repro.moa.errors import MoaTypeError
from repro.moa.executor import MoaExecutor, QueryResult
from repro.moa.mapping import (
    attribute_bat_names,
    collection_count,
    reconstruct_collection,
)
from repro.moa.types import AtomicType, MoaType, TupleType
from repro.monet.bbp import BATBufferPool, replace_text
from repro.monet.fragments import FragmentationPolicy


class MirrorDBMS:
    """Schema + buffer pool + executor, with persistence.

    ``fragment_threshold`` turns on transparent horizontal
    fragmentation: attribute BATs loaded with at least that many BUNs
    are stored as fragments (see :mod:`repro.monet.fragments`), and
    compiled query plans execute them fragment-parallel end-to-end (the
    MIL interpreter dispatches to the fragment kernel; the optional
    ``fragment_policy`` governs intermediate re-fragmentation and may
    pin the executor backend -- ``FragmentationPolicy
    (backend="process")`` routes GIL-bound object-dtype (str)
    predicates to the process pool; the default follows
    ``REPRO_EXECUTOR_BACKEND`` and the calibrated tuning persisted in
    the BBP catalog).

    One MirrorDBMS is safe to share across threads (the query service
    runs every session against a single instance): the read path --
    :meth:`query` and friends -- takes no lock (compilation snapshots
    the schema, the pool's own lock guards catalog access), while the
    write path (:meth:`define`, :meth:`insert`, :meth:`replace`,
    :meth:`delete`, :meth:`save`) serializes on :attr:`write_lock` so
    concurrent read-modify-write loads cannot interleave.
    """

    def __init__(
        self,
        pool: Optional[BATBufferPool] = None,
        *,
        fragment_threshold: Optional[int] = None,
        fragment_policy: Optional[FragmentationPolicy] = None,
    ):
        self.pool = pool if pool is not None else BATBufferPool()
        self.schema: Dict[str, MoaType] = {}
        #: Serializes DDL and bulk loads; reads never take it.
        self.write_lock = threading.RLock()
        self._executor = MoaExecutor(
            self.pool,
            self.schema,
            fragment_threshold=fragment_threshold,
            fragment_policy=fragment_policy,
        )

    @property
    def fragment_threshold(self) -> Optional[int]:
        return self._executor.fragment_threshold

    @fragment_threshold.setter
    def fragment_threshold(self, value: Optional[int]) -> None:
        self._executor.fragment_threshold = value

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def define(self, ddl: str) -> List[str]:
        """Execute one or more ``define`` statements; returns the names."""
        parsed = parse_schema(ddl)
        with self.write_lock:
            for name, ty in parsed.items():
                self.schema[name] = ty
        return list(parsed)

    def collection_type(self, name: str) -> MoaType:
        try:
            return self.schema[name]
        except KeyError:
            raise MoaTypeError(f"no collection named {name!r}") from None

    def collections(self) -> List[str]:
        return sorted(self.schema)

    def ddl(self) -> str:
        """The whole schema as DDL text."""
        return "\n".join(
            render_define(name, ty) for name, ty in sorted(self.schema.items())
        )

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def insert(self, name: str, values: Sequence[Any]) -> int:
        """Insert *values* into collection *name*; returns the new
        cardinality.

        When the collection is already loaded and every mapper in its
        type tree supports incremental append, this takes the O(batch)
        delta path: new tuples get the next dense oids and every
        attribute BAT grows an append tail through the pool's
        copy-on-write/WAL machinery, so in-flight snapshot readers keep
        seeing the pre-insert state.  Otherwise (first load, or an
        extension structure without an append hook, e.g. CONTREP) it
        falls back to the bulk reconstruct+reload path."""
        ty = self.collection_type(name)
        values = list(values)
        with self.write_lock:
            if self.pool.exists(f"{name}.__extent__"):
                appended = self._executor.append(name, ty, values)
                if appended is not None:
                    return appended
                existing = reconstruct_collection(self.pool, name, ty)
                values = existing + values
            self._executor.load(name, ty, values)
        return len(values)

    def execute(self, script: str) -> List[str]:
        """Run a mixed DDL/DML script (``define`` and ``insert``
        statements, in order); returns one summary line per statement.
        Insert rows bind positionally to the element type's TUPLE
        fields (or a single literal for ``SET<Atomic<...>>``)."""
        outcomes: List[str] = []
        with self.write_lock:
            for statement in parse_script(script):
                if isinstance(statement, DefineStatement):
                    self.schema[statement.name] = statement.ty
                    outcomes.append(f"defined {statement.name}")
                elif isinstance(statement, InsertStatement):
                    ty = self.collection_type(statement.name)
                    rows = _bind_rows(statement.name, ty, statement.rows)
                    count = self.insert(statement.name, rows)
                    outcomes.append(
                        f"inserted {len(rows)} into {statement.name} "
                        f"(count {count})"
                    )
        return outcomes

    def replace(self, name: str, values: Sequence[Any]) -> int:
        """Replace the contents of collection *name* entirely."""
        ty = self.collection_type(name)
        with self.write_lock:
            self._executor.load(name, ty, list(values))
        return len(values)

    def delete(self, name: str, predicate: str) -> int:
        """Delete the elements of *name* satisfying a Moa *predicate*
        (written against ``THIS``); returns how many were removed.

        Implemented the Moa way: the survivors are computed with a
        compiled ``select[not(...)]`` and the collection reloaded --
        bulk-oriented like every update path in this system.
        """
        with self.write_lock:
            before = self.count(name)
            survivors = self.query(f"select[not ({predicate})]({name});").value
            self.replace(name, survivors)
        return before - len(survivors)

    def count(self, name: str) -> int:
        self.collection_type(name)
        return collection_count(self.pool, name)

    def contents(self, name: str) -> List[Any]:
        """Reconstruct the collection as Python values."""
        return reconstruct_collection(self.pool, name, self.collection_type(name))

    def bat_names(self, name: str) -> List[str]:
        """Physical BATs the collection occupies."""
        return attribute_bat_names(name, self.collection_type(name))

    # ------------------------------------------------------------------
    # Statistics (the `stats` query parameter)
    # ------------------------------------------------------------------
    def stats(self, collection: str, attribute: str) -> CollectionStats:
        """Collection statistics for a CONTREP attribute."""
        self.collection_type(collection)
        return CollectionStats.from_pool(self.pool, f"{collection}.{attribute}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def executor(self) -> MoaExecutor:
        return self._executor

    def query(
        self,
        text: Union[str, moa_ast.Expr],
        params: Optional[Dict[str, Any]] = None,
        **modes,
    ) -> QueryResult:
        """Run a Moa query through the full compiled pipeline."""
        return self._executor.execute(text, params, **modes)

    def query_interpreted(
        self,
        text: Union[str, moa_ast.Expr],
        params: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Run a query with the tuple-at-a-time reference interpreter
        over reconstructed data (slow; benchmarking/testing)."""
        data = {name: self.contents(name) for name in self.schema
                if self.pool.exists(f"{name}.__extent__")}
        return self._executor.execute_interpreted(text, data, params)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist pool + schema to *directory*."""
        directory = Path(directory)
        with self.write_lock:
            self.pool.save(directory)
            replace_text(directory / "schema.ddl", self.ddl() + "\n")

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "MirrorDBMS":
        """Restore a database saved with :meth:`save`."""
        directory = Path(directory)
        db = cls(BATBufferPool.load(directory))
        ddl_path = directory / "schema.ddl"
        if ddl_path.exists():
            db.define(ddl_path.read_text())
        return db


def _bind_rows(name: str, ty: MoaType, rows: List[List[Any]]) -> List[Any]:
    """Bind positional insert-statement literal rows to the element
    type of collection *name*: dicts by field order for TUPLE elements,
    bare values for Atomic elements."""
    element_ty = getattr(ty, "element", None)
    if isinstance(element_ty, TupleType):
        fields = [field_name for field_name, _ in element_ty.fields]
        values: List[Any] = []
        for row in rows:
            if len(row) != len(fields):
                raise MoaTypeError(
                    f"insert into {name}: expected {len(fields)} literals "
                    f"per row, got {len(row)}"
                )
            values.append(dict(zip(fields, row)))
        return values
    if isinstance(element_ty, AtomicType):
        for row in rows:
            if len(row) != 1:
                raise MoaTypeError(
                    f"insert into {name}: expected one literal per row "
                    f"for {element_ty.render()} elements, got {len(row)}"
                )
        return [row[0] for row in rows]
    rendered = element_ty.render() if element_ty is not None else ty.render()
    raise MoaTypeError(
        f"insert into {name}: no literal row form for {rendered} elements"
    )
