"""The interactive retrieval loop of the demo (section 5.2).

"Querying the digital image library now takes place as follows.  First,
the user enters an initial (usually textual) query.  Next, we use the
thesaurus to select clusters from the image content representations
that are relevant to this initial query. ...  The results of this query
are shown to the user.  The user may provide relevance feedback for
these images; this relevance feedback is used to improve the current
query."

:class:`RetrievalSession` drives exactly that loop programmatically and
records per-round history (the E9 benchmark replays sessions against
ground truth to measure precision improvements)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.feedback import RelevanceFeedback
from repro.core.library import DigitalLibrary, RetrievalResult


@dataclass
class SessionRound:
    """One query/feedback iteration."""

    query: List[str]
    results: List[RetrievalResult]
    relevant: List[str] = field(default_factory=list)
    nonrelevant: List[str] = field(default_factory=list)


class RetrievalSession:
    """Stateful query -> results -> feedback -> requery loop."""

    def __init__(
        self,
        library: DigitalLibrary,
        *,
        k: int = 10,
        per_word: int = 3,
        adapt_thesaurus: bool = True,
    ):
        self.library = library
        self.k = k
        self.per_word = per_word
        self.adapt_thesaurus = adapt_thesaurus
        self.feedback = RelevanceFeedback(library)
        self.text_query: Optional[str] = None
        self.current_query: List[str] = []
        self.rounds: List[SessionRound] = []

    # ------------------------------------------------------------------
    def start(self, text: str) -> List[RetrievalResult]:
        """Initial textual query: formulate clusters and rank."""
        self.text_query = text
        self.current_query = self.library.formulate(text, self.per_word)
        results = self.library.query_clusters(self.current_query, self.k)
        self.rounds = [SessionRound(query=list(self.current_query), results=results)]
        return results

    def give_feedback(
        self,
        relevant: Sequence[str],
        nonrelevant: Sequence[str] = (),
    ) -> List[RetrievalResult]:
        """Apply relevance judgments, improve the query, re-rank."""
        if not self.rounds:
            raise RuntimeError("start() a session first")
        current = self.rounds[-1]
        current.relevant = list(relevant)
        current.nonrelevant = list(nonrelevant)
        update = self.feedback.update_query(
            self.current_query, relevant, nonrelevant
        )
        self.current_query = update.query
        if self.adapt_thesaurus and self.text_query:
            self.feedback.adapt_thesaurus(self.text_query, relevant, nonrelevant)
        results = self.library.query_clusters(self.current_query, self.k)
        self.rounds.append(
            SessionRound(query=list(self.current_query), results=results)
        )
        return results

    # ------------------------------------------------------------------
    def precision_at(self, k: int, target_class: str, round_index: int = -1) -> float:
        """Fraction of the top-*k* of a round that belongs to
        *target_class* (ground-truth evaluation on synthetic scenes)."""
        results = self.rounds[round_index].results[:k]
        if not results:
            return 0.0
        hits = sum(1 for r in results if r.true_class == target_class)
        return hits / len(results)
