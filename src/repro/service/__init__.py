"""repro.service: the concurrent multi-session query service.

An asyncio TCP front door (:class:`MirrorService`) over one shared,
thread-safe :class:`~repro.core.mirror.MirrorDBMS`: per-connection
:class:`~repro.service.session.Session` temp namespaces, token-bucket
rate limiting, a global admission controller bounding in-flight
queries, a pre-execution :class:`~repro.service.guard.QueryGuard`, and
deadline/cancellation checkpoints threaded into the MIL interpreter
loop.  ``ServiceThread`` embeds the event loop for synchronous
callers; ``ServiceClient`` / ``AsyncServiceClient`` are the client
library.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionReject,
    TokenBucket,
)
from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    session_ref,
)
from repro.service.guard import GuardLimits, GuardRejection, QueryGuard
from repro.service.protocol import BATResult, ProtocolError
from repro.service.server import MirrorService, ServiceConfig, ServiceThread
from repro.service.session import Session, SessionNamespace

__all__ = [
    "AdmissionController",
    "AdmissionReject",
    "AsyncServiceClient",
    "BATResult",
    "GuardLimits",
    "GuardRejection",
    "MirrorService",
    "ProtocolError",
    "QueryGuard",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "Session",
    "SessionNamespace",
    "TokenBucket",
    "session_ref",
]
