"""The wire protocol of the Mirror query service.

A connection carries a sequence of *messages* in both directions.  One
message is one JSON **header frame** optionally followed by binary
**column frames**:

    [4-byte big-endian length][UTF-8 JSON header]
    [4-byte big-endian length][raw column bytes]      * header["frames"]

Requests are JSON objects ``{"op": ..., ...}``; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": {"code",
"message"}}``.  A client correlation ``id`` is echoed verbatim when
present.  Columnar results (BATs) are shipped column-wise: in JSON mode
every column is a ``values`` list (NIL as ``null``), in binary mode
numeric columns (``int``/``oid``/``dbl``) ride as raw little-endian
arrays in the trailing frames -- zero JSON overhead for the bulk of a
result -- while ``str``/``bit`` columns stay JSON.  Void columns ship
as their ``seqbase`` alone.

Operation table (protocol version 2; versioned by extension -- a v1
peer simply never sends the v2 ops):

===============  ====  =================================================
op               ver   request fields -> result
===============  ====  =================================================
``ping``         1     -- -> ``{kind: pong, session}``
``status``       1     -- -> ``{kind: status, status}``
``mil``          1     ``q`` [``binary`` ``deadline_ms``] -> value
                       (+ ``epoch`` the plan's snapshot pinned)
``moa``          1     ``q`` [``params`` ``binary`` ``deadline_ms``]
                       -> value (+ ``epoch``)
``define``       1     ``ddl`` -> ``{kind: defined, names}``
``insert``       1     ``collection`` ``values`` -> ``{kind: count,
                       count, epoch}``; inside a transaction: staged
                       mutation result
``count``        1     ``collection`` -> ``{kind: count, count}``
``stats``        1     ``collection`` ``attribute`` ``bind`` ->
                       ``{kind: bound, name}``
``collections``  1     -- -> ``{kind: collections, names}``
``commit``       1     ``name`` [``as`` ``replace``] -> ``{kind:
                       committed, name}`` (legacy temp promotion)
``begin``        2     -- -> ``{kind: begun, epoch}`` (pins one
                       catalog epoch for the session's statements)
``commit``       2     *no* ``name`` -> ``{kind: committed, count,
                       epoch, applied: [{collection, op, count,
                       epoch}]}`` (publishes the staged mutations)
``abort``        2     -- -> ``{kind: aborted, count, epoch}``
``update``       2     ``collection`` ``set`` [``where``] ->
                       mutation result
``delete``       2     ``collection`` [``where``] -> mutation result
``close``        1     -- -> ``{kind: bye}``
===============  ====  =================================================

A *mutation result* is ``{kind: mutation, op, collection, count,
epoch, staged}`` -- the wire form of the one epoch-reporting
``MutationResult`` type every mutation path shares; ``staged: true``
means the op is queued in the session's open transaction and applies
at ``commit``.  ``where`` is an object of field equalities (pseudo-
field ``value`` for ``SET<Atomic>`` elements) or a bare literal; a
``nil`` literal matches nothing (the kernel's comparison rule).

Error codes (the service's whole failure vocabulary):

=============  ========================================================
``protocol``   unreadable frame, bad JSON, unknown ``op``
``malformed``  query failed to parse (guard, pre-execution)
``guard``      plan rejected by the op-count/BUN budget guard
``rate``       per-session token bucket empty
``busy``       admission queue full
``deadline``   queued past the admission timeout
``timeout``    per-query deadline expired mid-plan (checkpoint fired)
``cancelled``  session disconnected mid-plan
``mutation``   write rejected (unknown target, bad positions/batch,
               transaction protocol violation)
``runtime``    execution failed (type error, unknown name, ...)
=============  ========================================================

Both the asyncio server and the sync/async clients use the same
encode/decode helpers below, so the framing has exactly one
implementation.  Sync and async clients expose the same method names
with the same signatures (``begin``/``commit``/``abort``/``insert``/
``update``/``delete`` included), so the two surfaces cannot drift.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.monet.bat import BAT

#: Hard ceiling on one frame; a peer announcing more is a protocol
#: error, not an allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Frames per message ceiling (a BAT result has at most two columns).
MAX_FRAMES = 8

_LENGTH = struct.Struct("!I")

#: Numeric atoms that may ride binary frames, with their wire dtypes.
_BINARY_DTYPES = {"int": "<i8", "oid": "<i8", "dbl": "<f8"}


class ProtocolError(Exception):
    """Framing/encoding violation; the connection should be dropped."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def pack_message(header: Dict[str, Any], frames: Optional[List[bytes]] = None) -> bytes:
    """Serialize one message (header + binary frames) to wire bytes."""
    frames = frames or []
    if frames:
        header = dict(header, frames=len(frames))
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_LENGTH.pack(len(payload)), payload]
    for frame in frames:
        if len(frame) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {len(frame)} bytes exceeds the cap")
        parts.append(_LENGTH.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def _frame_length(raw: bytes) -> int:
    (length,) = _LENGTH.unpack(raw)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame; refusing")
    return length


def read_message(read_exactly: Callable[[int], bytes]) -> Tuple[Dict[str, Any], List[bytes]]:
    """Read one message through *read_exactly(n) -> bytes* (which must
    raise/return short only at EOF; a short read raises EOFError here).
    Returns ``(header, frames)``."""
    header_raw = read_exactly(_LENGTH.size)
    if len(header_raw) < _LENGTH.size:
        raise EOFError("connection closed between messages")
    length = _frame_length(header_raw)
    payload = read_exactly(length)
    if len(payload) < length:
        raise EOFError("connection closed mid-frame")
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"bad JSON header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    count = header.get("frames", 0)
    if not isinstance(count, int) or count < 0 or count > MAX_FRAMES:
        raise ProtocolError(f"bad frame count {count!r}")
    frames: List[bytes] = []
    for _ in range(count):
        frame_raw = read_exactly(_LENGTH.size)
        if len(frame_raw) < _LENGTH.size:
            raise EOFError("connection closed before a declared frame")
        frame_length = _frame_length(frame_raw)
        frame = read_exactly(frame_length)
        if len(frame) < frame_length:
            raise EOFError("connection closed mid-frame")
        frames.append(frame)
    return header, frames


async def read_message_async(reader) -> Tuple[Dict[str, Any], List[bytes]]:
    """Asyncio twin of :func:`read_message` over a ``StreamReader``."""
    import asyncio

    async def exactly(n: int) -> bytes:
        try:
            return await reader.readexactly(n)
        except asyncio.IncompleteReadError as exc:
            raise EOFError("connection closed mid-message") from exc

    header_raw = await exactly(_LENGTH.size)
    length = _frame_length(header_raw)
    payload = await exactly(length)
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"bad JSON header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    count = header.get("frames", 0)
    if not isinstance(count, int) or count < 0 or count > MAX_FRAMES:
        raise ProtocolError(f"bad frame count {count!r}")
    frames: List[bytes] = []
    for _ in range(count):
        frame_raw = await exactly(_LENGTH.size)
        frames.append(await exactly(_frame_length(frame_raw)))
    return header, frames


# ----------------------------------------------------------------------
# Result encoding
# ----------------------------------------------------------------------


@dataclass
class BATResult:
    """Client-side decoded columnar result: two aligned value lists
    (NIL as ``None``), plus the property flags the server reported."""

    head: List[Any]
    tail: List[Any]
    htype: str
    ttype: str
    flags: Dict[str, bool] = field(default_factory=dict)
    #: Catalog epoch the producing plan's snapshot was pinned at (MIL
    #: results only; None when the server did not report one).
    epoch: Optional[int] = None

    def __len__(self) -> int:
        return len(self.head)

    def pairs(self) -> List[Tuple[Any, Any]]:
        return list(zip(self.head, self.tail))


def _encode_column(column, atom_name: str, binary: bool, frames: List[bytes]):
    if column.is_void:
        return {"atom": "void", "seqbase": column.seqbase, "count": len(column)}
    if binary and atom_name in _BINARY_DTYPES:
        dtype = _BINARY_DTYPES[atom_name]
        frames.append(np.ascontiguousarray(column.materialize().astype(dtype)).tobytes())
        return {"atom": atom_name, "frame": len(frames) - 1, "dtype": dtype}
    from repro.monet.bat import _column_to_list

    return {"atom": atom_name, "values": _column_to_list(column)}


def encode_result(value: Any, binary: bool) -> Tuple[Dict[str, Any], List[bytes]]:
    """Encode an execution result (BAT, scalar, or nested Python value)
    as a ``result`` JSON object plus trailing binary frames."""
    frames: List[bytes] = []
    if isinstance(value, BAT):
        result = {
            "kind": "bat",
            "count": len(value),
            "htype": value.htype,
            "ttype": value.ttype,
            "flags": {
                "hsorted": value.hsorted,
                "tsorted": value.tsorted,
                "hkey": value.hkey,
                "tkey": value.tkey,
            },
            "head": _encode_column(value.head, value.htype, binary, frames),
            "tail": _encode_column(value.tail, value.ttype, binary, frames),
        }
        return result, frames
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"kind": "scalar", "value": _json_safe(value)}, frames
    return {"kind": "value", "value": _json_safe(value)}, frames


def _json_safe(value: Any) -> Any:
    """Recursively coerce an execution result into JSON-representable
    values (numpy scalars unwrap; unknown objects degrade to repr)."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__repr__": repr(value)}


def _decode_column(spec: Dict[str, Any], frames: List[bytes], count: int) -> List[Any]:
    atom_name = spec.get("atom")
    if atom_name == "void":
        seqbase = int(spec.get("seqbase", 0))
        return list(range(seqbase, seqbase + count))
    if "frame" in spec:
        index = spec["frame"]
        if not isinstance(index, int) or index >= len(frames):
            raise ProtocolError(f"column references missing frame {index!r}")
        array = np.frombuffer(frames[index], dtype=spec.get("dtype", "<i8"))
        if atom_name == "dbl":
            mask = np.isnan(array)
            values = array.tolist()
            return [None if m else v for v, m in zip(values, mask.tolist())]
        nil = np.iinfo(np.int64).min if atom_name == "int" else np.iinfo(np.int64).max
        values = array.tolist()
        return [None if v == nil else v for v in values]
    values = spec.get("values")
    if not isinstance(values, list):
        raise ProtocolError(f"column of atom {atom_name!r} has no values")
    return values


def decode_result(result: Dict[str, Any], frames: List[bytes]) -> Any:
    """Inverse of :func:`encode_result` on the client side; BATs come
    back as :class:`BATResult`, scalars and values unwrap, and control
    responses (``hello``/``pong``/``defined``/...) pass through as
    their result dict."""
    kind = result.get("kind")
    if kind == "bat":
        count = int(result.get("count", 0))
        return BATResult(
            head=_decode_column(result.get("head", {}), frames, count),
            tail=_decode_column(result.get("tail", {}), frames, count),
            htype=result.get("htype", "?"),
            ttype=result.get("ttype", "?"),
            flags=dict(result.get("flags", {})),
            epoch=result.get("epoch"),
        )
    if kind in ("scalar", "value"):
        return result.get("value")
    if isinstance(kind, str):
        return result
    raise ProtocolError(f"unknown result kind {kind!r}")


# ----------------------------------------------------------------------
# Response helpers
# ----------------------------------------------------------------------


def ok_response(result: Dict[str, Any], frames: List[bytes], request_id=None) -> bytes:
    header: Dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        header["id"] = request_id
    return pack_message(header, frames)


def error_response(code: str, message: str, request_id=None) -> bytes:
    header: Dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        header["id"] = request_id
    return pack_message(header)
