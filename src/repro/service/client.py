"""Client library for the Mirror query service (sync + asyncio).

Both clients speak the protocol of :mod:`repro.service.protocol` and
expose the same surface::

    with ServiceClient("127.0.0.1", port) as c:
        c.define("define Nums as SET<Atomic<Integer>>;")
        c.insert("Nums", [3, 1, 2])
        result = c.mil('bat("Nums.__atom__").tail_sort();')
        values = result.tail            # NILs come back as None

    async with AsyncServiceClient("127.0.0.1", port) as c:
        result = await c.moa("count(Nums);")

Query results arrive as :class:`~repro.service.protocol.BATResult`
(columnar, NIL-as-``None``), scalars, or nested Python values.  Service
rejections raise :class:`ServiceError` carrying the wire error code
(``rate``, ``busy``, ``guard``, ``timeout``, ...) so callers can
distinguish back-off conditions from real failures.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from repro.service.protocol import (
    decode_result,
    pack_message,
    read_message,
    read_message_async,
)


class ServiceError(Exception):
    """An ``{"ok": false}`` response; ``code`` is the wire error code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


def _unwrap(header: Dict[str, Any], frames: List[bytes]) -> Any:
    if not header.get("ok"):
        error = header.get("error") or {}
        raise ServiceError(
            error.get("code", "protocol"), error.get("message", "unknown error")
        )
    return decode_result(header["result"], frames)


class _RequestBuilder:
    """Request construction shared by the sync and async clients, so
    the two surfaces build byte-identical requests."""

    @staticmethod
    def mil(source: str, binary: bool, deadline_ms: Optional[int]) -> Dict[str, Any]:
        header: Dict[str, Any] = {"op": "mil", "q": source, "binary": binary}
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        return header

    @staticmethod
    def moa(
        source: str,
        params: Optional[Dict[str, Any]],
        binary: bool,
        deadline_ms: Optional[int],
    ) -> Dict[str, Any]:
        header: Dict[str, Any] = {"op": "moa", "q": source, "binary": binary}
        if params:
            header["params"] = params
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        return header

    @staticmethod
    def delete(collection: str, where: Any) -> Dict[str, Any]:
        header: Dict[str, Any] = {"op": "delete", "collection": collection}
        if where is not None:
            header["where"] = where
        return header

    @staticmethod
    def update(collection: str, assignments: Any, where: Any) -> Dict[str, Any]:
        header: Dict[str, Any] = {
            "op": "update",
            "collection": collection,
            "set": assignments,
        }
        if where is not None:
            header["where"] = where
        return header

    @staticmethod
    def commit(
        name: Optional[str], shared_name: Optional[str], replace: bool
    ) -> Dict[str, Any]:
        if name is None:
            return {"op": "commit"}
        header: Dict[str, Any] = {"op": "commit", "name": name, "replace": replace}
        if shared_name is not None:
            header["as"] = shared_name
        return header


def session_ref(name: str) -> Dict[str, str]:
    """A Moa parameter referring to a server-side session binding
    created with :meth:`ServiceClient.bind_stats`."""
    return {"$session": name}


class ServiceClient:
    """Blocking client over a plain TCP socket."""

    def __init__(self, host: str, port: int, *, timeout: Optional[float] = None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        # The server greets with a hello carrying our session id.
        hello = self._roundtrip_raw(None)
        self.session_id = hello.get("session") if isinstance(hello, dict) else None

    # -- plumbing ------------------------------------------------------
    def _read_exactly(self, n: int) -> bytes:
        data = self._file.read(n)
        return data if data is not None else b""

    def _roundtrip_raw(self, header: Optional[Dict[str, Any]]) -> Any:
        if header is not None:
            self._sock.sendall(pack_message(header))
        response, frames = read_message(self._read_exactly)
        return _unwrap(response, frames)

    def request(self, header: Dict[str, Any]) -> Any:
        """Send one request and decode its response."""
        return self._roundtrip_raw(header)

    # -- the service surface -------------------------------------------
    def ping(self) -> Any:
        return self.request({"op": "ping"})

    def mil(
        self,
        source: str,
        *,
        binary: bool = True,
        deadline_ms: Optional[int] = None,
    ) -> Any:
        return self.request(_RequestBuilder.mil(source, binary, deadline_ms))

    def moa(
        self,
        source: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        binary: bool = True,
        deadline_ms: Optional[int] = None,
    ) -> Any:
        return self.request(
            _RequestBuilder.moa(source, params, binary, deadline_ms)
        )

    def define(self, ddl: str) -> List[str]:
        return self.request({"op": "define", "ddl": ddl})["names"]

    def insert(self, collection: str, values: List[Any]) -> int:
        """Insert *values*; returns the new cardinality -- or, inside
        an open transaction (:meth:`begin`), the staged row count."""
        return self.request(
            {"op": "insert", "collection": collection, "values": values}
        )["count"]

    def count(self, collection: str) -> int:
        return self.request({"op": "count", "collection": collection})["count"]

    def delete(self, collection: str, where: Any = None) -> Dict[str, Any]:
        """Delete the tuples matching *where* (an object of field
        equalities, or a bare literal for ``SET<Atomic>`` elements;
        ``None`` deletes all).  Returns the mutation result; inside an
        open transaction (:meth:`begin`) the op is staged."""
        return self.request(_RequestBuilder.delete(collection, where))

    def update(
        self, collection: str, assignments: Any, where: Any = None
    ) -> Dict[str, Any]:
        """Patch the tuples matching *where* with *assignments* (an
        object of field values, or a bare literal for ``SET<Atomic>``).
        Returns the mutation result; staged inside a transaction."""
        return self.request(
            _RequestBuilder.update(collection, assignments, where)
        )

    def begin(self) -> Optional[int]:
        """Open a transaction: pins one catalog epoch for this
        session's statements until :meth:`commit`/:meth:`abort`.
        Returns the pinned epoch."""
        return self.request({"op": "begin"})["epoch"]

    def abort(self) -> Dict[str, Any]:
        """Abort the open transaction; staged mutations are dropped."""
        return self.request({"op": "abort"})

    def commit(
        self,
        name: Optional[str] = None,
        shared_name: Optional[str] = None,
        *,
        replace: bool = False,
    ) -> Any:
        """With no arguments: commit the open transaction (publishes
        every staged mutation; returns the commit result with its
        ``applied`` list).  With *name*: the legacy temp-promotion
        dialect -- promote the session temp *name* (created with MIL
        ``persists``) to shared data and return the shared name."""
        response = self.request(
            _RequestBuilder.commit(name, shared_name, replace)
        )
        return response["name"] if name is not None else response

    def collections(self) -> List[str]:
        return self.request({"op": "collections"})["names"]

    def bind_stats(self, collection: str, attribute: str, name: str) -> str:
        """Bind collection statistics server-side under *name*; pass
        ``session_ref(name)`` as a Moa parameter to use them."""
        return self.request(
            {
                "op": "stats",
                "collection": collection,
                "attribute": attribute,
                "bind": name,
            }
        )["name"]

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})["status"]

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.sendall(pack_message({"op": "close"}))
            read_message(self._read_exactly)  # the "bye"
        except (OSError, EOFError):
            pass
        finally:
            self._file.close()
            self._sock.close()
            self._sock = None  # type: ignore[assignment]

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio client over stream reader/writer pairs."""

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._reader = None
        self._writer = None
        self.session_id: Optional[str] = None

    async def connect(self) -> "AsyncServiceClient":
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        header, frames = await read_message_async(self._reader)
        hello = _unwrap(header, frames)
        self.session_id = hello.get("session") if isinstance(hello, dict) else None
        return self

    async def request(self, header: Dict[str, Any]) -> Any:
        if self._writer is None:
            raise RuntimeError("client not connected; call connect()")
        self._writer.write(pack_message(header))
        await self._writer.drain()
        response, frames = await read_message_async(self._reader)
        return _unwrap(response, frames)

    async def ping(self) -> Any:
        return await self.request({"op": "ping"})

    async def mil(
        self,
        source: str,
        *,
        binary: bool = True,
        deadline_ms: Optional[int] = None,
    ) -> Any:
        return await self.request(_RequestBuilder.mil(source, binary, deadline_ms))

    async def moa(
        self,
        source: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        binary: bool = True,
        deadline_ms: Optional[int] = None,
    ) -> Any:
        return await self.request(
            _RequestBuilder.moa(source, params, binary, deadline_ms)
        )

    async def define(self, ddl: str) -> List[str]:
        return (await self.request({"op": "define", "ddl": ddl}))["names"]

    async def insert(self, collection: str, values: List[Any]) -> int:
        """Same surface as :meth:`ServiceClient.insert`."""
        return (
            await self.request(
                {"op": "insert", "collection": collection, "values": values}
            )
        )["count"]

    async def count(self, collection: str) -> int:
        return (await self.request({"op": "count", "collection": collection}))[
            "count"
        ]

    async def delete(self, collection: str, where: Any = None) -> Dict[str, Any]:
        """Same surface as :meth:`ServiceClient.delete`."""
        return await self.request(_RequestBuilder.delete(collection, where))

    async def update(
        self, collection: str, assignments: Any, where: Any = None
    ) -> Dict[str, Any]:
        """Same surface as :meth:`ServiceClient.update`."""
        return await self.request(
            _RequestBuilder.update(collection, assignments, where)
        )

    async def begin(self) -> Optional[int]:
        """Same surface as :meth:`ServiceClient.begin`."""
        return (await self.request({"op": "begin"}))["epoch"]

    async def abort(self) -> Dict[str, Any]:
        """Same surface as :meth:`ServiceClient.abort`."""
        return await self.request({"op": "abort"})

    async def commit(
        self,
        name: Optional[str] = None,
        shared_name: Optional[str] = None,
        *,
        replace: bool = False,
    ) -> Any:
        """Same surface as :meth:`ServiceClient.commit`."""
        response = await self.request(
            _RequestBuilder.commit(name, shared_name, replace)
        )
        return response["name"] if name is not None else response

    async def collections(self) -> List[str]:
        return (await self.request({"op": "collections"}))["names"]

    async def bind_stats(self, collection: str, attribute: str, name: str) -> str:
        return (
            await self.request(
                {
                    "op": "stats",
                    "collection": collection,
                    "attribute": attribute,
                    "bind": name,
                }
            )
        )["name"]

    async def status(self) -> Dict[str, Any]:
        return (await self.request({"op": "status"}))["status"]

    async def close(self) -> None:
        if self._writer is None:
            return
        try:
            self._writer.write(pack_message({"op": "close"}))
            await self._writer.drain()
            await read_message_async(self._reader)  # the "bye"
        except (OSError, EOFError):
            pass
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
