"""Per-connection sessions over one shared MirrorDBMS.

A :class:`Session` is what a connected client owns: a private *temp
namespace* layered over the shared :class:`~repro.monet.bbp
.BATBufferPool`, its own MIL interpreter bound to that namespace, a
registry of server-side parameter bindings (collection statistics are
bound once and referenced by name instead of crossing the wire per
query), a per-session token bucket, and the disconnect flag the
query checkpoints poll.

The namespace discipline follows the mobile-database survey's session
model: everything a session persists is *tentative* -- visible to that
session only, mapped into the shared pool under a mangled name, and
dropped wholesale when the session ends.  A session promotes a temp to
shared data explicitly with :meth:`Session.commit`, which serializes
on the database's ``write_lock`` like every other write; in-flight
plans of other sessions keep reading their pinned snapshots and see
the commit only on their next plan.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Set

from repro.monet.bbp import BATBufferPool
from repro.monet.errors import BBPError
from repro.monet.fragments import FragmentationPolicy
from repro.monet.mil import MILInterpreter


class SessionNamespace:
    """A session-private view of the shared pool.

    Duck-types the :class:`BATBufferPool` surface the MIL interpreter
    touches.  Reads (``lookup`` / ``lookup_fragments``) try the
    session's private names first and fall back to the shared catalog;
    writes (``persists`` -> :meth:`register`) always land in the
    private namespace, so no session can clobber shared data or
    another session's temps.  Private names are mangled into the
    shared pool as ``@<session-id>:<name>`` -- one shared catalog (and
    its one lock) stays the single accounting point for memory.
    """

    def __init__(self, pool: BATBufferPool, session_id: str):
        self.pool = pool
        self.session_id = session_id
        self._names: Set[str] = set()
        self._lock = threading.Lock()

    def _mangle(self, name: str) -> str:
        return f"@{self.session_id}:{name}"

    def _is_private(self, name: str) -> bool:
        with self._lock:
            return name in self._names

    # -- the BATBufferPool surface the MIL interpreter uses ------------
    def is_fragmented(self, name: str) -> bool:
        if self._is_private(name):
            return self.pool.is_fragmented(self._mangle(name))
        return self.pool.is_fragmented(name)

    def lookup(self, name: str):
        if self._is_private(name):
            return self.pool.lookup(self._mangle(name))
        return self.pool.lookup(name)

    def lookup_fragments(self, name: str, policy: Optional[FragmentationPolicy] = None):
        if self._is_private(name):
            return self.pool.lookup_fragments(self._mangle(name), policy)
        return self.pool.lookup_fragments(name, policy)

    def exists(self, name: str) -> bool:
        return self._is_private(name) or self.pool.exists(name)

    def register(self, name: str, bat, *, replace: bool = True):
        result = self.pool.register(self._mangle(name), bat, replace=True)
        with self._lock:
            self._names.add(name)
        return result

    def register_fragmented(self, name: str, fragmented, *, replace: bool = True):
        result = self.pool.register_fragmented(
            self._mangle(name), fragmented, replace=True
        )
        with self._lock:
            self._names.add(name)
        return result

    def drop(self, name: str) -> None:
        if self._is_private(name):
            self.pool.drop(self._mangle(name))
            with self._lock:
                self._names.discard(name)
            return
        if self.pool.exists(name):
            raise BBPError(
                f"cannot drop shared BAT {name!r} from a session "
                "(sessions own only their temp namespace)"
            )
        raise BBPError(f"cannot drop unknown BAT {name!r}")

    def append(self, name: str, pairs=None, *, tails=None):
        """Append to a session-private BAT (copy-on-write, via the
        shared pool's delta path).  Shared BATs cannot be appended from
        a session -- commit a temp or go through the DBMS write API."""
        if self._is_private(name):
            return self.pool.append(self._mangle(name), pairs, tails=tails)
        if self.pool.exists(name):
            raise BBPError(
                f"cannot append to shared BAT {name!r} from a session "
                "(sessions own only their temp namespace)"
            )
        raise BBPError(f"cannot append to unknown BAT {name!r}")

    def read_snapshot(self) -> "_NamespaceSnapshot":
        """An epoch-pinned view of this namespace: shared names resolve
        against one :class:`~repro.monet.bbp.PoolSnapshot` for a whole
        plan, private names keep their mangling.  The MIL interpreter
        calls this once per plan."""
        return self.pinned_snapshot(self.pool.read_snapshot())

    def pinned_snapshot(self, pool_snapshot) -> "_NamespaceSnapshot":
        """Build the namespace view over an *already pinned* pool
        snapshot -- the transaction path uses this so every plan of an
        open transaction reads the begin-time epoch."""
        with self._lock:
            private = set(self._names)
        return _NamespaceSnapshot(self, pool_snapshot, private)

    # -- lifecycle -----------------------------------------------------
    def temp_names(self) -> List[str]:
        with self._lock:
            return sorted(self._names)

    def cleanup(self) -> int:
        """Drop every private registration; returns how many."""
        with self._lock:
            names, self._names = self._names, set()
        dropped = 0
        for name in names:
            try:
                self.pool.drop(self._mangle(name))
                dropped += 1
            except BBPError:  # already gone (concurrent cleanup)
                pass
        return dropped


class _NamespaceSnapshot:
    """A plan-pinned view of a :class:`SessionNamespace`.

    Shared-name reads resolve against one epoch-stamped
    :class:`~repro.monet.bbp.PoolSnapshot` for the plan's whole
    lifetime, so a session's pipeline never observes a concurrent
    append/drop/commit mid-plan.  Private names stay mangled; writes
    the plan issues (``persists``/``unpersists``) go through the
    snapshot's write-through path, landing in the live pool *and* the
    live namespace so they survive the plan.
    """

    def __init__(
        self, namespace: SessionNamespace, snapshot, private: Set[str]
    ):
        self._namespace = namespace
        self._snapshot = snapshot
        self._private = private
        self.epoch = getattr(snapshot, "epoch", None)

    def read_snapshot(self) -> "_NamespaceSnapshot":
        return self

    def _resolve(self, name: str) -> str:
        if name in self._private:
            return self._namespace._mangle(name)
        return name

    def is_fragmented(self, name: str) -> bool:
        return self._snapshot.is_fragmented(self._resolve(name))

    def lookup(self, name: str):
        return self._snapshot.lookup(self._resolve(name))

    def lookup_fragments(
        self, name: str, policy: Optional[FragmentationPolicy] = None
    ):
        return self._snapshot.lookup_fragments(self._resolve(name), policy)

    def exists(self, name: str) -> bool:
        return name in self._private or self._snapshot.exists(name)

    def register(self, name: str, bat, *, replace: bool = True):
        result = self._snapshot.register(
            self._namespace._mangle(name), bat, replace=True
        )
        self._private.add(name)
        with self._namespace._lock:
            self._namespace._names.add(name)
        return result

    def register_fragmented(self, name: str, fragmented, *, replace: bool = True):
        result = self._snapshot.register_fragmented(
            self._namespace._mangle(name), fragmented, replace=True
        )
        self._private.add(name)
        with self._namespace._lock:
            self._namespace._names.add(name)
        return result

    def drop(self, name: str) -> None:
        if name in self._private:
            self._snapshot.drop(self._namespace._mangle(name))
            self._private.discard(name)
            with self._namespace._lock:
                self._namespace._names.discard(name)
            return
        if self._snapshot.exists(name) or self._namespace.pool.exists(name):
            raise BBPError(
                f"cannot drop shared BAT {name!r} from a session "
                "(sessions own only their temp namespace)"
            )
        raise BBPError(f"cannot drop unknown BAT {name!r}")

    def new_oids(self, count: int) -> int:
        return self._snapshot.new_oids(count)


class Session:
    """One connected client: namespace + interpreter + control state."""

    def __init__(
        self,
        session_id: str,
        db,
        *,
        rate_limiter=None,
    ):
        from repro.service.admission import TokenBucket  # circular-safe

        self.session_id = session_id
        self.db = db
        self.namespace = SessionNamespace(db.pool, session_id)
        self.mil = MILInterpreter(
            self.namespace, fragment_policy=db.executor.fragment_policy
        )
        self.rate_limiter: Optional[TokenBucket] = rate_limiter
        #: Server-side parameter bindings (e.g. CollectionStats) that
        #: Moa queries reference as ``{"$session": name}``.
        self.bindings: Dict[str, Any] = {}
        #: Set when the connection goes away; polled by the per-query
        #: checkpoint so an in-flight plan aborts between statements.
        self.disconnected = threading.Event()
        self.queries = 0
        #: The session's open :class:`~repro.core.mirror.Transaction`,
        #: if any (one at a time; wire ops begin/commit/abort manage it).
        self.transaction = None

    # -- transactions --------------------------------------------------
    def begin(self):
        """Open a transaction on the shared database: one pinned epoch
        for every statement until commit/abort.  One open transaction
        per session."""
        from repro.monet.errors import TransactionError  # circular-safe

        if self.transaction is not None and self.transaction.state == "open":
            raise TransactionError(
                f"session {self.session_id} already has an open transaction"
            )
        self.transaction = self.db.begin()
        return self.transaction

    def open_transaction(self):
        """The session's open transaction, or ``None``."""
        txn = self.transaction
        if txn is not None and txn.state == "open":
            return txn
        return None

    def _require_transaction(self):
        from repro.monet.errors import TransactionError

        txn = self.open_transaction()
        if txn is None:
            raise TransactionError(
                f"session {self.session_id} has no open transaction"
            )
        return txn

    def commit_transaction(self):
        """Commit the open transaction; returns its
        :class:`~repro.core.mirror.MutationResult` summary."""
        txn = self._require_transaction()
        result = txn.commit()
        self.transaction = None
        return result

    def abort_transaction(self):
        """Abort the open transaction, dropping every staged mutation."""
        txn = self._require_transaction()
        result = txn.abort()
        self.transaction = None
        return result

    def mil_reader(self):
        """The catalog reader the next MIL plan should pin: the open
        transaction's begin-time snapshot (namespace-wrapped) when one
        exists, else ``None`` (a fresh per-plan snapshot)."""
        txn = self.open_transaction()
        if txn is None:
            return None
        return self.namespace.pinned_snapshot(txn.snapshot)

    def commit(
        self, name: str, shared_name: Optional[str] = None, *, replace: bool = False
    ) -> str:
        """Promote the session temp *name* to shared data.

        .. deprecated:: legacy surface.  This is the temp-promotion
           dialect that predates the unified mutation API; new code
           should mutate shared collections through the transaction
           path (:meth:`begin` / wire ops ``begin``/``commit``) instead.
           Kept as a thin wrapper because promoting a temp BAT has no
           collection-level equivalent yet.

        The temp's value (fragmented or not) is re-registered in the
        shared catalog under *shared_name* (default: the same name) and
        the private alias dropped.  Serialized on the database's
        ``write_lock`` like every write; with ``replace=False`` an
        existing shared name is an error.  Returns the shared name.
        """
        target = shared_name if shared_name is not None else name
        if target.startswith("@"):
            raise BBPError(f"cannot commit to reserved name {target!r}")
        mangled = self.namespace._mangle(name)
        with self.db.write_lock:
            if not self.namespace._is_private(name):
                raise BBPError(f"no session temp named {name!r}")
            pool = self.db.pool
            if pool.is_fragmented(mangled):
                pool.register_fragmented(
                    target, pool.lookup_fragments(mangled), replace=replace
                )
            else:
                pool.register(target, pool.lookup(mangled), replace=replace)
            pool.drop(mangled)
            with self.namespace._lock:
                self.namespace._names.discard(name)
        return target

    def close(self) -> int:
        """Mark disconnected, abort any open transaction, and reclaim
        the temp namespace."""
        self.disconnected.set()
        txn = self.open_transaction()
        if txn is not None:
            txn.abort()
        self.transaction = None
        self.bindings.clear()
        return self.namespace.cleanup()
