"""The asyncio front door: a concurrent multi-session query service.

``MirrorService`` listens on a TCP port speaking the length-prefixed
protocol of :mod:`repro.service.protocol` and drives one shared,
thread-safe :class:`~repro.core.mirror.MirrorDBMS`:

* every connection owns a :class:`~repro.service.session.Session`
  (private temp namespace, server-side parameter bindings, token
  bucket);
* query execution happens on a bounded thread pool sized to the
  admission controller's ``max_inflight``, so a heavy sort occupies
  one slot while point lookups keep flowing through the rest;
* each admitted query gets a deadline/cancellation *checkpoint*
  threaded into the MIL interpreter loop -- a disconnected client or
  an expired deadline aborts the plan between statements;
* requests are vetted by the :class:`~repro.service.guard.QueryGuard`
  before they cost an executor slot.

The connection handler reads the *next* message concurrently with the
in-flight query, which gives both request pipelining and prompt
disconnect detection (EOF mid-query trips the session's cancellation
flag).

The service registers itself with the daemon federation's ORB under
``config.daemon_name`` (the paper's architecture: every server-side
component is a daemon with a resolvable name and a ``status()``
method).

``ServiceThread`` wraps the event loop in a background thread for
synchronous embeddings -- tests, benchmarks, and the README quickstart
use it.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.mirror import MirrorDBMS
from repro.moa.errors import MoaError
from repro.monet.errors import MILCancelled, MonetError, MutationError
from repro.service.admission import AdmissionController, AdmissionReject, TokenBucket
from repro.service.guard import GuardLimits, GuardRejection, QueryGuard
from repro.service.protocol import (
    ProtocolError,
    encode_result,
    error_response,
    ok_response,
    read_message_async,
)
from repro.service.session import Session


@dataclass
class ServiceConfig:
    """Service knobs (see ROADMAP.md's tuning-knob table).

    ``rate=None`` disables per-session rate limiting; ``deadline=None``
    disables the default per-query deadline (a request may still set
    ``deadline_ms`` per call)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off the service
    max_inflight: int = 4
    max_queue: int = 32
    queue_timeout: float = 5.0
    rate: Optional[float] = None  # queries/second per session
    burst: Optional[float] = None  # bucket depth (default 2 * rate)
    deadline: Optional[float] = 30.0  # seconds per query
    guard: GuardLimits = field(default_factory=GuardLimits)
    daemon_name: str = "query-service"


class MirrorService:
    """Asyncio TCP server multiplexing sessions over one MirrorDBMS."""

    def __init__(
        self,
        db: MirrorDBMS,
        config: Optional[ServiceConfig] = None,
        orb=None,
    ):
        self.db = db
        self.config = config or ServiceConfig()
        self.orb = orb
        self.guard = QueryGuard(self.config.guard)
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.max_queue,
            self.config.queue_timeout,
        )
        self.sessions: Dict[str, Session] = {}
        self.queries_served = 0
        self._session_counter = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return (self.config.host, self.port)

    async def start(self) -> "MirrorService":
        if self._server is not None:
            raise RuntimeError("service already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="mirror-query",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.orb is not None:
            self.orb.register(self.config.daemon_name, self)
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, abort in-flight plans via
        their checkpoints, reclaim every session, drain the executor."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self.sessions.values()):
            session.disconnected.set()
        connections = list(self._connections)
        for task in connections:
            task.cancel()
        for task in connections:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for session in list(self.sessions.values()):
            session.close()
        self.sessions.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.orb is not None:
            try:
                self.orb.unregister(self.config.daemon_name)
            except Exception:
                pass
        self._server = None

    def status(self) -> Dict[str, Any]:
        """Daemon-style health report (remotely callable via the ORB)."""
        return {
            "name": self.config.daemon_name,
            "kind": "query-service",
            "sessions": len(self.sessions),
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "peak_inflight": self.admission.peak_inflight,
            "rejected_busy": self.admission.rejected_busy,
            "rejected_deadline": self.admission.rejected_deadline,
            "queries_served": self.queries_served,
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _new_session(self) -> Session:
        sid = f"s{next(self._session_counter)}"
        bucket = TokenBucket(self.config.rate, self.config.burst)
        session = Session(sid, self.db, rate_limiter=bucket)
        self.sessions[sid] = session
        return session

    async def _handle_connection(self, reader, writer) -> None:
        if self._closing:
            writer.close()
            return
        task = asyncio.current_task()
        self._connections.add(task)
        session = self._new_session()
        read_task: Optional[asyncio.Task] = None
        try:
            writer.write(
                ok_response({"kind": "hello", "session": session.session_id}, [])
            )
            await writer.drain()
            read_task = asyncio.ensure_future(read_message_async(reader))
            while True:
                try:
                    header, frames = await read_task
                except (EOFError, ConnectionError, asyncio.IncompleteReadError):
                    break
                except ProtocolError as exc:
                    writer.write(error_response("protocol", str(exc)))
                    await writer.drain()
                    break
                read_task = asyncio.ensure_future(read_message_async(reader))
                if header.get("op") == "close":
                    writer.write(
                        ok_response({"kind": "bye"}, [], header.get("id"))
                    )
                    await writer.drain()
                    break
                response = await self._dispatch(session, header, read_task)
                if response is None:
                    break  # disconnected mid-query
                writer.write(response)
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            pass  # server shutdown
        finally:
            if read_task is not None and not read_task.done():
                read_task.cancel()
                try:
                    await read_task
                except (asyncio.CancelledError, Exception):
                    pass
            session.close()
            self.sessions.pop(session.session_id, None)
            writer.close()
            try:
                # Suppressing CancelledError here is deliberate: a
                # shutdown-time cancel may land while we drain the
                # transport, and there is no work left to abandon.
                await writer.wait_closed()
            except BaseException:
                pass
            # Leave the connection set last: stop() must be able to
            # await this task until the moment it has nothing left to do.
            self._connections.discard(task)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, session: Session, header: Dict[str, Any], read_task: asyncio.Task
    ) -> Optional[bytes]:
        op = header.get("op")
        request_id = header.get("id")
        if op == "ping":
            return ok_response(
                {"kind": "pong", "session": session.session_id}, [], request_id
            )
        if op == "status":
            return ok_response(
                {"kind": "status", "status": self.status()}, [], request_id
            )
        if op not in ("mil", "moa", "define", "insert", "update", "delete",
                      "count", "stats", "collections", "begin", "commit",
                      "abort"):
            return error_response("protocol", f"unknown op {op!r}", request_id)

        # Rate limit, then guard, then admission: the cheap checks run
        # first so a rejected request never costs catalog work or a
        # queue slot.
        if session.rate_limiter is not None and not session.rate_limiter.try_acquire():
            return error_response(
                "rate",
                f"session {session.session_id} exceeded its query rate",
                request_id,
            )
        try:
            work = self._prepare_work(session, op, header)
        except GuardRejection as exc:
            return error_response(exc.code, str(exc), request_id)
        except (KeyError, TypeError, ValueError) as exc:
            return error_response("protocol", str(exc), request_id)

        try:
            await self.admission.acquire()
        except AdmissionReject as exc:
            return error_response(exc.code, str(exc), request_id)
        try:
            loop = asyncio.get_running_loop()
            work_future = loop.run_in_executor(self._pool, work)
            # Watch the connection while the query runs: EOF trips the
            # session's cancellation flag so the plan aborts at its
            # next checkpoint; a complete message is a pipelined
            # request the main loop picks up after this response.
            while not work_future.done():
                waiters = {work_future}
                if not read_task.done():
                    waiters.add(read_task)
                done, _ = await asyncio.wait(
                    waiters, return_when=asyncio.FIRST_COMPLETED
                )
                if work_future in done:
                    break
                if read_task.done() and read_task.exception() is not None:
                    session.disconnected.set()
                    try:
                        await work_future
                    except Exception:
                        pass
                    return None
            result, frames = await work_future
            session.queries += 1
            self.queries_served += 1
            return ok_response(result, frames, request_id)
        except MILCancelled as exc:
            return error_response(exc.reason, str(exc), request_id)
        except MutationError as exc:
            return error_response("mutation", str(exc), request_id)
        except (MonetError, MoaError) as exc:
            return error_response("runtime", str(exc), request_id)
        except Exception as exc:  # defensive: never drop the connection
            return error_response(
                "runtime", f"{type(exc).__name__}: {exc}", request_id
            )
        finally:
            self.admission.release()

    def _prepare_work(self, session: Session, op: str, header: Dict[str, Any]):
        """Validate the request and build the blocking closure that the
        executor thread will run.  Raises GuardRejection/KeyError/
        TypeError for malformed requests (mapped by the caller)."""
        binary = bool(header.get("binary", True))
        checkpoint = self._make_checkpoint(session, header)
        if op == "mil":
            source = _require_str(header, "q")
            self.guard.check_mil(source, session.namespace)

            def run_mil():
                outcome = session.mil.run(
                    source, checkpoint=checkpoint, reader=session.mil_reader()
                )
                result, frames = encode_result(outcome.value, binary)
                if outcome.epoch is not None:
                    # The catalog epoch the plan's snapshot was pinned
                    # at; the write-path differential harness keys
                    # serial replays on it.
                    result["epoch"] = outcome.epoch
                return result, frames

            return run_mil
        if op == "moa":
            source = _require_str(header, "q")
            self.guard.check_moa(source, self.db.pool, self.db.schema)
            params = self._resolve_params(session, header.get("params") or {})

            def run_moa():
                txn = session.open_transaction()
                outcome = self.db.query(
                    source,
                    params,
                    checkpoint=checkpoint,
                    reader=txn.snapshot if txn is not None else None,
                )
                result, frames = encode_result(outcome.value, binary)
                if outcome.epoch is not None:
                    result["epoch"] = outcome.epoch
                return result, frames

            return run_moa
        if op == "define":
            ddl = _require_str(header, "ddl")
            return lambda: (
                {"kind": "defined", "names": self.db.define(ddl)},
                [],
            )
        if op == "insert":
            name = _require_str(header, "collection")
            values = header.get("values")
            if not isinstance(values, list):
                raise TypeError("insert needs a values list")

            def run_insert():
                txn = session.open_transaction()
                if txn is not None:
                    staged = txn.insert(name, values)
                    return _mutation_result(staged, staged=True), []
                count = self.db.insert(name, values)
                return {
                    "kind": "count",
                    "count": count,
                    "epoch": self.db.pool.epoch,
                }, []

            return run_insert
        if op == "delete":
            name = _require_str(header, "collection")
            where = _check_where(header.get("where"))

            def run_delete():
                txn = session.open_transaction()
                if txn is not None:
                    staged = txn.delete(name, where=where)
                    return _mutation_result(staged, staged=True), []
                count = self.db.delete(name, where=where)
                return {
                    "kind": "mutation",
                    "op": "delete",
                    "collection": name,
                    "count": count,
                    "epoch": self.db.pool.epoch,
                    "staged": False,
                }, []

            return run_delete
        if op == "update":
            name = _require_str(header, "collection")
            assignments = header.get("set")
            if isinstance(assignments, dict):
                if not assignments or not all(
                    isinstance(k, str) for k in assignments
                ):
                    raise TypeError(
                        "update 'set' object needs string field names"
                    )
            elif not _is_wire_literal(assignments):
                raise TypeError("update needs a 'set' object or literal")
            where = _check_where(header.get("where"))

            def run_update():
                txn = session.open_transaction()
                if txn is not None:
                    staged = txn.update(name, assignments, where=where)
                    return _mutation_result(staged, staged=True), []
                count = self.db.update(name, assignments, where=where)
                return {
                    "kind": "mutation",
                    "op": "update",
                    "collection": name,
                    "count": count,
                    "epoch": self.db.pool.epoch,
                    "staged": False,
                }, []

            return run_update
        if op == "count":
            name = _require_str(header, "collection")
            return lambda: (
                {"kind": "count", "count": self.db.count(name)},
                [],
            )
        if op == "begin":
            def run_begin():
                txn = session.begin()
                return {"kind": "begun", "epoch": txn.epoch}, []

            return run_begin
        if op == "abort":
            def run_abort():
                result = session.abort_transaction()
                return {
                    "kind": "aborted",
                    "count": result.count,
                    "epoch": result.epoch,
                }, []

            return run_abort
        if op == "commit":
            name = header.get("name")
            if name is None:
                # Transaction commit: publish every staged mutation.
                def run_commit():
                    result = session.commit_transaction()
                    return {
                        "kind": "committed",
                        "count": result.count,
                        "epoch": result.epoch,
                        "applied": [
                            {
                                "collection": r.collection,
                                "op": r.kind,
                                "count": r.count,
                                "epoch": r.epoch,
                            }
                            for r in result.applied
                        ],
                    }, []

                return run_commit
            # Legacy temp-promotion commit (deprecated dialect; see
            # Session.commit).
            name = _require_str(header, "name")
            shared = header.get("as")
            if shared is not None and not isinstance(shared, str):
                raise TypeError("commit 'as' must be a string")
            replace = bool(header.get("replace", False))
            return lambda: (
                {
                    "kind": "committed",
                    "name": session.commit(name, shared, replace=replace),
                },
                [],
            )
        if op == "collections":
            return lambda: (
                {"kind": "collections", "names": self.db.collections()},
                [],
            )
        if op == "stats":
            collection = _require_str(header, "collection")
            attribute = _require_str(header, "attribute")
            bind = _require_str(header, "bind")

            def bind_stats():
                session.bindings[bind] = self.db.stats(collection, attribute)
                return {"kind": "bound", "name": bind}, []

            return bind_stats
        raise TypeError(f"unhandled op {op!r}")  # pragma: no cover

    def _resolve_params(
        self, session: Session, raw: Dict[str, Any]
    ) -> Dict[str, Any]:
        if not isinstance(raw, dict):
            raise TypeError("params must be an object")
        params: Dict[str, Any] = {}
        for name, value in raw.items():
            if isinstance(value, dict) and "$session" in value:
                bound = value["$session"]
                if bound not in session.bindings:
                    raise KeyError(
                        f"no session binding named {bound!r}; bind it "
                        "with the stats op first"
                    )
                params[name] = session.bindings[bound]
            elif isinstance(value, list):
                params[name] = value
            else:
                raise TypeError(
                    f"parameter {name!r} must be a list or a "
                    '{"$session": name} reference'
                )
        return params

    def _make_checkpoint(self, session: Session, header: Dict[str, Any]):
        deadline_ms = header.get("deadline_ms")
        seconds = (
            float(deadline_ms) / 1000.0
            if deadline_ms is not None
            else self.config.deadline
        )
        expires = time.monotonic() + seconds if seconds is not None else None

        def checkpoint() -> None:
            if session.disconnected.is_set():
                raise MILCancelled(
                    f"session {session.session_id} disconnected",
                    reason="cancelled",
                )
            if expires is not None and time.monotonic() > expires:
                raise MILCancelled(
                    f"query exceeded its {seconds:.3f}s deadline",
                    reason="timeout",
                )

        return checkpoint


def _require_str(header: Dict[str, Any], key: str) -> str:
    value = header.get(key)
    if not isinstance(value, str) or not value:
        raise TypeError(f"request needs a non-empty string {key!r}")
    return value


def _is_wire_literal(value: Any) -> bool:
    return value is None or isinstance(value, (str, int, float, bool))


def _check_where(where: Any) -> Any:
    """Validate a wire ``where`` clause: absent, a field-equality
    object, or a bare literal (matching ``SET<Atomic>`` elements)."""
    if where is None or _is_wire_literal(where):
        return where
    if isinstance(where, dict):
        for key, value in where.items():
            if not isinstance(key, str) or not _is_wire_literal(value):
                raise TypeError(
                    "where object must map string fields to literals"
                )
        return where
    raise TypeError("where must be an object of field equalities or a literal")


def _mutation_result(result, *, staged: bool) -> Dict[str, Any]:
    """Wire shape of a :class:`~repro.core.mirror.MutationResult`."""
    return {
        "kind": "mutation",
        "op": result.kind,
        "collection": result.collection,
        "count": result.count,
        "epoch": result.epoch,
        "staged": staged,
    }


# ----------------------------------------------------------------------
# Synchronous embedding
# ----------------------------------------------------------------------


class ServiceThread:
    """Run a MirrorService on a dedicated event-loop thread.

    The synchronous world's handle on the service::

        with ServiceThread(db, config) as svc:
            client = ServiceClient(*svc.address)

    ``stop()`` (or leaving the ``with`` block) performs the service's
    graceful shutdown and joins the thread.
    """

    def __init__(
        self,
        db: MirrorDBMS,
        config: Optional[ServiceConfig] = None,
        orb=None,
    ):
        self.db = db
        self.config = config or ServiceConfig()
        self.orb = orb
        self.service: Optional[MirrorService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._thread = threading.Thread(
            target=self._run, name="mirror-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.service = MirrorService(self.db, self.config, self.orb)
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop())
            loop.close()

    @property
    def address(self) -> Tuple[str, int]:
        if self.service is None:
            raise RuntimeError("service thread not started")
        return self.service.address

    @property
    def port(self) -> int:
        return self.address[1]

    def stop(self) -> None:
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
