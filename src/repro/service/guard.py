"""Pre-execution query guard: reject malformed and runaway plans.

Every query admitted by the service is vetted *before* it touches the
interpreter:

* **malformed** -- the text does not parse (MIL or Moa), or a MIL plan
  applies an operator the interpreter does not know.  Catching this
  up front means a garbage query costs a parse, never an executor
  slot.
* **guard** -- the plan parses but exceeds a static budget: more
  operator applications than ``max_ops``, source longer than
  ``max_source_bytes``, or an estimated input volume above
  ``max_input_buns`` (the sum of the cardinalities of every persistent
  BAT the plan references, counted per reference -- a cheap,
  catalog-only stand-in for a cost model; fragmented registrations
  report their length without coalescing).

The guard never *executes* anything: it parses, walks the AST, and
consults catalog cardinalities.  Names it cannot resolve (e.g. a temp
the same program persists two statements earlier) contribute zero to
the estimate and are left for the runtime to judge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.moa.errors import MoaError
from repro.moa.parser import parse_query
from repro.monet.errors import BBPError, MILError
from repro.monet.mil import ast as mil_ast
from repro.monet.mil.builtins import has_builtin
from repro.monet.mil.parser import parse_program

#: Functions the interpreter handles outside the builtin table.
_INTERPRETER_SPECIALS = {"bat", "persists", "unpersists", "newoid", "print"}


class GuardRejection(Exception):
    """A query the guard refuses; ``code`` is ``malformed`` or
    ``guard``."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class GuardLimits:
    """Static plan budgets (`None` disables a check)."""

    max_ops: Optional[int] = 128
    max_source_bytes: Optional[int] = 256 * 1024
    max_input_buns: Optional[int] = 200_000_000


class QueryGuard:
    """Vets MIL and Moa query text against :class:`GuardLimits`."""

    def __init__(self, limits: Optional[GuardLimits] = None):
        self.limits = limits or GuardLimits()

    # ------------------------------------------------------------------
    def _check_source_size(self, source: str) -> None:
        limit = self.limits.max_source_bytes
        if limit is not None and len(source.encode("utf-8")) > limit:
            raise GuardRejection(
                "guard", f"query text exceeds {limit} bytes"
            )

    def check_mil(self, source: str, namespace=None) -> None:
        """Raise :class:`GuardRejection` unless the MIL *source* is
        parseable, uses only known operators, and fits the budgets.
        *namespace* (a pool or session namespace) supplies catalog
        cardinalities for the input-BUN estimate."""
        self._check_source_size(source)
        try:
            program = parse_program(source)
        except MILError as exc:
            raise GuardRejection("malformed", str(exc)) from exc
        ops = 0
        input_buns = 0
        nodes = list(program.statements)
        while nodes:
            node = nodes.pop()
            if isinstance(node, (mil_ast.Assign, mil_ast.ExprStatement)):
                nodes.append(node.expr)
            elif isinstance(node, mil_ast.Call):
                ops += 1
                if not (
                    has_builtin(node.func) or node.func in _INTERPRETER_SPECIALS
                ):
                    raise GuardRejection(
                        "malformed", f"unknown MIL operation {node.func!r}"
                    )
                if (
                    node.func == "bat"
                    and len(node.args) == 1
                    and isinstance(node.args[0], mil_ast.Literal)
                    and isinstance(node.args[0].value, str)
                ):
                    input_buns += _cardinality(namespace, node.args[0].value)
                nodes.extend(node.args)
            elif isinstance(node, mil_ast.MethodCall):
                ops += 1
                if not (
                    has_builtin(node.method)
                    or node.method in _INTERPRETER_SPECIALS
                ):
                    raise GuardRejection(
                        "malformed", f"unknown MIL operation {node.method!r}"
                    )
                nodes.append(node.receiver)
                nodes.extend(node.args)
            elif isinstance(node, (mil_ast.Multiplex, mil_ast.Pump)):
                ops += 1
                nodes.extend(node.args)
            elif isinstance(node, mil_ast.Infix):
                ops += 1
                nodes.append(node.left)
                nodes.append(node.right)
            # Literals and Vars cost nothing.
        self._check_budgets(ops, input_buns)

    def check_moa(self, source: str, namespace=None, schema=None) -> None:
        """Raise :class:`GuardRejection` unless the Moa *source* parses
        and fits the budgets.  The op count is the AST node count; the
        input estimate sums the extents of every referenced collection
        found in *schema*."""
        self._check_source_size(source)
        try:
            node = parse_query(source)
        except MoaError as exc:
            raise GuardRejection("malformed", str(exc)) from exc
        ops = 0
        input_buns = 0
        stack = [node]
        while stack:
            current = stack.pop()
            ops += 1
            name = getattr(current, "name", None)
            if (
                schema is not None
                and isinstance(name, str)
                and name in schema
            ):
                input_buns += _cardinality(namespace, f"{name}.__extent__")
            for value in vars(current).values():
                if isinstance(value, (list, tuple)):
                    stack.extend(
                        v for v in value if hasattr(v, "__dataclass_fields__")
                    )
                elif hasattr(value, "__dataclass_fields__"):
                    stack.append(value)
        self._check_budgets(ops, input_buns)

    # ------------------------------------------------------------------
    def _check_budgets(self, ops: int, input_buns: int) -> None:
        if self.limits.max_ops is not None and ops > self.limits.max_ops:
            raise GuardRejection(
                "guard",
                f"plan applies {ops} operators; the budget is "
                f"{self.limits.max_ops}",
            )
        if (
            self.limits.max_input_buns is not None
            and input_buns > self.limits.max_input_buns
        ):
            raise GuardRejection(
                "guard",
                f"plan reads an estimated {input_buns} BUNs; the budget "
                f"is {self.limits.max_input_buns}",
            )


def _cardinality(namespace, name: str) -> int:
    """Catalog cardinality of *name* without coalescing; unknown names
    count zero (the runtime will reject them if they stay unknown)."""
    if namespace is None:
        return 0
    try:
        if namespace.is_fragmented(name):
            return len(namespace.lookup_fragments(name))
        if namespace.exists(name):
            return len(namespace.lookup(name))
    except BBPError:  # pragma: no cover - races with concurrent drops
        return 0
    return 0
