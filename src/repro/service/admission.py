"""Admission control for the query service.

Two mechanisms, composed per request:

* :class:`TokenBucket` -- the per-session rate limiter.  Purely
  synchronous and clock-injectable; a request that finds the bucket
  empty is rejected immediately with the ``rate`` error (no queueing:
  a client beyond its rate should back off, not pile up).
* :class:`AdmissionController` -- the global concurrency gate: at most
  ``max_inflight`` queries execute at once, at most ``max_queue`` more
  may wait, and no request waits beyond ``queue_timeout`` seconds.
  Beyond-capacity requests fail fast with ``busy``; queued requests
  whose wait expires fail with ``deadline``.  This is what keeps one
  100M-BUN sort from starving point lookups: the sort occupies one
  executor slot while lookups keep flowing through the rest.

The controller is asyncio-native (futures granted in FIFO order by the
event loop); the bucket is plain Python so the sync tests and any
non-async embedding can reuse it.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, Optional


class AdmissionReject(Exception):
    """A request the service refuses to run right now.

    ``code`` is the wire error code (``rate`` / ``busy`` /
    ``deadline``)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``rate=None`` disables limiting (every acquire succeeds).  The
    clock is injectable for deterministic tests."""

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0) * 2 or 1)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * (self.rate or 0))

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; False means rate-limited."""
        if self.rate is None:
            return True
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        if self.rate is None:
            return float("inf")
        self._refill()
        return self._tokens


class AdmissionController:
    """Bounded in-flight queries plus a bounded, deadline-limited queue.

    Usage (from the event loop only)::

        await controller.acquire()     # may raise AdmissionReject
        try: ...run the query...
        finally: controller.release()
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int = 0,
        queue_timeout: Optional[float] = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._inflight = 0
        self._waiters: Deque[asyncio.Future] = deque()
        # High-water marks for the service status report.
        self.peak_inflight = 0
        self.rejected_busy = 0
        self.rejected_deadline = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return len(self._waiters)

    async def acquire(self) -> None:
        if self._inflight < self.max_inflight:
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            return
        if len(self._waiters) >= self.max_queue:
            self.rejected_busy += 1
            raise AdmissionReject(
                "busy",
                f"{self._inflight} queries in flight and "
                f"{len(self._waiters)} queued; try again later",
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        try:
            await asyncio.wait_for(
                asyncio.shield(future), timeout=self.queue_timeout
            )
        except asyncio.TimeoutError:
            if future.done() and not future.cancelled():
                # Granted in the same tick the timeout fired: the slot
                # is ours after all -- hand it back instead of leaking.
                self.release()
            else:
                future.cancel()
                try:
                    self._waiters.remove(future)
                except ValueError:
                    pass
            self.rejected_deadline += 1
            raise AdmissionReject(
                "deadline",
                f"queued longer than {self.queue_timeout}s; dropped",
            ) from None
        # Granted: the releasing side already accounted the slot to us.

    def release(self) -> None:
        """Free one slot, handing it to the oldest live waiter."""
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                # Slot transfers to the waiter; _inflight stays put.
                future.set_result(None)
                return
        self._inflight -= 1
