"""Retrieval-effectiveness metrics for the reproduction's experiments.

The Mirror paper demonstrates retrieval quality interactively; our
synthetic scenes carry ground truth, so quality becomes measurable.
These are the standard TREC-era metrics the InQuery line of work
reported, used by bench E9 and the session tooling:

* :func:`precision_at`  -- P@k
* :func:`recall_at`     -- R@k
* :func:`average_precision` -- AP (area under the P/R curve)
* :func:`mean_average_precision` -- MAP over query sets
* :func:`reciprocal_rank` / :func:`mean_reciprocal_rank`

All functions take a *ranked list of item ids* (best first) and a set
of relevant ids; none of them look inside the items.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set


def _relevant_set(relevant: Iterable) -> Set:
    out = set(relevant)
    return out


def precision_at(ranked: Sequence, relevant: Iterable, k: int) -> float:
    """Fraction of the top-*k* that is relevant (0.0 for k <= 0)."""
    if k <= 0:
        return 0.0
    rel = _relevant_set(relevant)
    top = list(ranked)[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in rel) / len(top)


def recall_at(ranked: Sequence, relevant: Iterable, k: int) -> float:
    """Fraction of all relevant items found in the top-*k*."""
    rel = _relevant_set(relevant)
    if not rel:
        return 0.0
    top = list(ranked)[: max(k, 0)]
    return sum(1 for item in top if item in rel) / len(rel)


def average_precision(ranked: Sequence, relevant: Iterable) -> float:
    """AP: mean of precision values at each relevant rank; relevant
    items never retrieved contribute zero (standard TREC convention)."""
    rel = _relevant_set(relevant)
    if not rel:
        return 0.0
    hits = 0
    total = 0.0
    for position, item in enumerate(ranked, start=1):
        if item in rel:
            hits += 1
            total += hits / position
    return total / len(rel)


def mean_average_precision(
    runs: Sequence[Sequence], relevants: Sequence[Iterable]
) -> float:
    """MAP over a query set: mean AP of (ranked list, relevant set)
    pairs; raises on mismatched lengths."""
    if len(runs) != len(relevants):
        raise ValueError("one relevant set per ranked list required")
    if not runs:
        return 0.0
    return sum(
        average_precision(run, rel) for run, rel in zip(runs, relevants)
    ) / len(runs)


def reciprocal_rank(ranked: Sequence, relevant: Iterable) -> float:
    """1/rank of the first relevant item (0.0 when none retrieved)."""
    rel = _relevant_set(relevant)
    for position, item in enumerate(ranked, start=1):
        if item in rel:
            return 1.0 / position
    return 0.0


def mean_reciprocal_rank(
    runs: Sequence[Sequence], relevants: Sequence[Iterable]
) -> float:
    """MRR over a query set."""
    if len(runs) != len(relevants):
        raise ValueError("one relevant set per ranked list required")
    if not runs:
        return 0.0
    return sum(
        reciprocal_rank(run, rel) for run, rel in zip(runs, relevants)
    ) / len(runs)


def interpolated_precision_curve(
    ranked: Sequence, relevant: Iterable, points: int = 11
) -> List[float]:
    """The classic 11-point interpolated precision/recall curve
    (precision at recall 0.0, 0.1, ..., 1.0 by default)."""
    rel = _relevant_set(relevant)
    if not rel or points < 2:
        return [0.0] * max(points, 0)
    precisions: List[float] = []
    recalls: List[float] = []
    hits = 0
    for position, item in enumerate(ranked, start=1):
        if item in rel:
            hits += 1
        precisions.append(hits / position)
        recalls.append(hits / len(rel))
    curve = []
    for step in range(points):
        level = step / (points - 1)
        eligible = [
            p for p, r in zip(precisions, recalls) if r >= level - 1e-12
        ]
        curve.append(max(eligible) if eligible else 0.0)
    return curve


def session_precision_table(
    session, target_class: str, ks: Sequence[int] = (2, 4, 8)
) -> Dict[int, List[float]]:
    """P@k per feedback round of a
    :class:`repro.core.session.RetrievalSession`: {k: [round0, ...]}."""
    table: Dict[int, List[float]] = {k: [] for k in ks}
    for round_index in range(len(session.rounds)):
        results = session.rounds[round_index].results
        ranked = [r.url for r in results]
        relevant = [r.url for r in results if r.true_class == target_class]
        for k in ks:
            table[k].append(precision_at(ranked, relevant, k))
    return table
