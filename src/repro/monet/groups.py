"""Grouping operators (Monet's ``group``/``refine`` a.k.a. CTgroup).

Grouping in Monet is value-based: ``group(b)`` assigns every BUN of
``b`` a *group oid* such that two BUNs share a group oid iff their tail
values are equal.  Multi-attribute grouping is expressed by *refining*
an existing grouping with another column.

The Moa compiler uses grouping to implement nested-set reconstruction
and grouped aggregation (the ``map[sum(THIS)]`` pattern of the Mirror
paper's ranking queries).
"""

from __future__ import annotations


import numpy as np

from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import KernelError


def group(bat: BAT) -> BAT:
    """[head, group-oid]: equal tail values share a dense group oid.

    Group oids are assigned in order of first appearance, starting at 0,
    so the result is deterministic and the number of groups equals
    ``max(tail)+1`` of the result.
    """
    tails = bat.tail_values()
    group_ids = _dense_group_ids(tails, bat.tail.atom_type.dtype == np.dtype(object))
    return BAT(
        bat.head,
        Column("oid", group_ids),
        hsorted=bat.hsorted,
        hkey=bat.hkey,
    )


def refine(grouping: BAT, bat: BAT) -> BAT:
    """Refine *grouping* (a [head, group-oid] BAT) by the tail values of
    *bat*: BUNs end up in the same group iff they agreed before **and**
    agree on the new column.  Both inputs must be positionally aligned
    (same head sequence)."""
    if len(grouping) != len(bat):
        raise KernelError("refine requires positionally aligned inputs")
    old_ids = grouping.tail_values()
    tails = bat.tail_values()
    if bat.tail.atom_type.dtype == np.dtype(object):
        keys = list(zip(old_ids.tolist(), tails.tolist()))
        new_ids = _dense_group_ids_from_keys(keys)
    else:
        pair = np.stack((old_ids.astype(np.int64), _codes(tails)), axis=1)
        _, first_idx, inverse = np.unique(
            pair, axis=0, return_index=True, return_inverse=True
        )
        new_ids = _first_appearance_relabel(first_idx, inverse)
    return BAT(
        grouping.head,
        Column("oid", new_ids),
        hsorted=grouping.hsorted,
        hkey=grouping.hkey,
    )


def group_sizes(grouping: BAT) -> BAT:
    """[group-oid, count]: how many BUNs fell into each group."""
    ids = grouping.tail_values()
    if len(ids) == 0:
        return BAT(VoidColumn(0, 0), Column("int", np.empty(0, dtype=np.int64)))
    n_groups = int(ids.max()) + 1
    counts = np.bincount(ids, minlength=n_groups).astype(np.int64)
    return BAT(VoidColumn(0, n_groups), Column("int", counts))


def group_representatives(grouping: BAT, bat: BAT) -> BAT:
    """[group-oid, tail]: the tail value of the first member of each
    group -- reconstructs the grouping key column."""
    if len(grouping) != len(bat):
        raise KernelError("group_representatives requires aligned inputs")
    ids = grouping.tail_values()
    if len(ids) == 0:
        return BAT(
            VoidColumn(0, 0),
            Column(bat.tail.atom_type, bat.tail.atom_type.make_array([])),
        )
    n_groups = int(ids.max()) + 1
    uniq, first_positions = np.unique(ids, return_index=True)
    if len(uniq) != n_groups:
        raise KernelError("grouping has gaps in its group-oid sequence")
    tail = bat.tail.take(first_positions)
    return BAT(VoidColumn(0, n_groups), tail, hkey=True)


def _codes(values: np.ndarray) -> np.ndarray:
    """Integer codes for numeric arrays (identity for ints, bit-punned
    stable codes for floats via unique)."""
    if values.dtype == np.dtype(np.float64):
        _, inverse = np.unique(values, return_inverse=True)
        return inverse.astype(np.int64)
    return values.astype(np.int64)


def _dense_group_ids(values: np.ndarray, object_dtype: bool) -> np.ndarray:
    if object_dtype:
        return _dense_group_ids_from_keys(values.tolist())
    if len(values) == 0:
        return np.empty(0, dtype=np.int64)
    _, first_idx, inverse = np.unique(values, return_index=True, return_inverse=True)
    return _first_appearance_relabel(first_idx, inverse)


def _dense_group_ids_from_keys(keys) -> np.ndarray:
    mapping: dict = {}
    out = np.empty(len(keys), dtype=np.int64)
    for position, key in enumerate(keys):
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
        out[position] = gid
    return out


def _first_appearance_relabel(first_idx: np.ndarray, inverse: np.ndarray) -> np.ndarray:
    """Relabel np.unique inverse codes so group ids follow first
    appearance order (deterministic, Monet-like); fully vectorized."""
    order = np.argsort(first_idx, kind="stable")
    relabel = np.empty(len(order), dtype=np.int64)
    relabel[order] = np.arange(len(order), dtype=np.int64)
    return relabel[inverse.astype(np.int64).ravel()]
